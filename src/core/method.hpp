// The method ladder of the paper's Experiments section (§5).
//
// Fourteen filter/verify compositions plus the Jaro / Jaro–Winkler /
// Hamming / Soundex / Myers baselines, described declaratively so the join
// engine and the experiment harness share one source of truth about what
// each method does.
#pragma once

#include <optional>
#include <span>
#include <string_view>

namespace fbf::core {

/// Every string comparison method evaluated in the paper, plus extensions.
enum class Method {
  // -- unfiltered verifiers / baselines --------------------------------
  kDl,       ///< Damerau–Levenshtein, full matrix (Alg. 1)
  kPdl,      ///< Prefix-Pruned DL (Alg. 2)
  kJaro,     ///< Jaro similarity vs threshold
  kWink,     ///< Jaro–Winkler similarity vs threshold
  kHamming,  ///< Hamming distance vs k
  kSoundex,  ///< Soundex code equality (Tables 7–8)
  kMyers,    ///< bit-parallel Levenshtein vs k (extension)
  // -- FBF-filtered ------------------------------------------------------
  kFdl,      ///< FBF filter, DL verify
  kFpdl,     ///< FBF filter, PDL verify
  kFbfOnly,  ///< FBF filter alone (no verification)
  // -- length-filtered ---------------------------------------------------
  kLdl,         ///< length filter, DL verify
  kLpdl,        ///< length filter, PDL verify
  kLengthOnly,  ///< length filter alone
  // -- length then FBF ---------------------------------------------------
  kLfdl,      ///< length -> FBF -> DL
  kLfpdl,     ///< length -> FBF -> PDL
  kLfbfOnly,  ///< length -> FBF, no verification
};

/// Which edit-distance verifier (if any) runs after the filters.
enum class Verifier { kNone, kDl, kPdl };

/// Short name as used in the paper's tables ("DL", "FPDL", "LFBF", ...).
[[nodiscard]] const char* method_name(Method method) noexcept;

/// Parses a paper-style method name (case-insensitive); nullopt if unknown.
[[nodiscard]] std::optional<Method> parse_method(std::string_view name) noexcept;

/// True when the method applies the FBF signature filter.
[[nodiscard]] constexpr bool method_uses_fbf(Method method) noexcept {
  switch (method) {
    case Method::kFdl:
    case Method::kFpdl:
    case Method::kFbfOnly:
    case Method::kLfdl:
    case Method::kLfpdl:
    case Method::kLfbfOnly:
      return true;
    default:
      return false;
  }
}

/// True when the method applies the length filter first.
[[nodiscard]] constexpr bool method_uses_length(Method method) noexcept {
  switch (method) {
    case Method::kLdl:
    case Method::kLpdl:
    case Method::kLengthOnly:
    case Method::kLfdl:
    case Method::kLfpdl:
    case Method::kLfbfOnly:
      return true;
    default:
      return false;
  }
}

/// The verifier the method runs on filter survivors.
[[nodiscard]] constexpr Verifier method_verifier(Method method) noexcept {
  switch (method) {
    case Method::kDl:
    case Method::kFdl:
    case Method::kLdl:
    case Method::kLfdl:
      return Verifier::kDl;
    case Method::kPdl:
    case Method::kFpdl:
    case Method::kLpdl:
    case Method::kLfpdl:
      return Verifier::kPdl;
    default:
      return Verifier::kNone;
  }
}

/// True for similarity metrics thresholded from above (Jaro family).
[[nodiscard]] constexpr bool method_is_similarity(Method method) noexcept {
  return method == Method::kJaro || method == Method::kWink;
}

/// All methods in paper table order.
[[nodiscard]] std::span<const Method> all_methods() noexcept;

}  // namespace fbf::core
