#include "core/match_join.hpp"

#include <algorithm>
#include <functional>

#include "core/fbf_kernel.hpp"
#include "core/find_diff_bits.hpp"
#include "core/packed_signature_store.hpp"
#include "core/signature_store.hpp"
#include "metrics/damerau.hpp"
#include "metrics/hamming.hpp"
#include "metrics/jaro.hpp"
#include "metrics/length_filter.hpp"
#include "metrics/myers.hpp"
#include "metrics/pdl.hpp"
#include "metrics/soundex.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fbf::core {

namespace {

namespace m = fbf::metrics;

/// Evaluates one pair through the filter ladder, updating `stats`.
/// Marked always_inline so each instantiation site folds the constant
/// configuration branches.
template <bool kUseLength, bool kUseFbf, typename VerifyFn>
inline bool evaluate_pair(std::string_view s, std::string_view t,
                          [[maybe_unused]] const Signature* sig_s,
                          [[maybe_unused]] const Signature* sig_t, int k,
                          [[maybe_unused]] fbf::util::PopcountKind popcount,
                          Verifier verifier, const VerifyFn& verify,
                          JoinStats& stats) {
  if constexpr (kUseLength) {
    if (!m::length_filter_pass(s, t, k)) {
      return false;
    }
    ++stats.length_pass;
  }
  if constexpr (kUseFbf) {
    ++stats.fbf_evaluated;
    if (find_diff_bits(*sig_s, *sig_t, popcount) > 2 * k) {
      return false;
    }
    ++stats.fbf_pass;
  }
  if (verifier == Verifier::kNone) {
    return true;  // filter-only methods report survivors as matches
  }
  ++stats.verify_calls;
  return verify(s, t, k);
}

/// Runs `tile_fn(i0, i1, j0, j1, local)` over every 2D tile of the S x T
/// pair space.  Tiles are the thread-pool work unit (contiguous tile-id
/// ranges per chunk), so skewed shapes (|S| << |T|) still spread across
/// every thread.  Chunk stats are merged in chunk order and counters are
/// integer sums, so totals are deterministic for any thread count.
template <typename MakeTileFn>
void run_tile_space(std::size_t n_left, std::size_t n_right,
                    std::size_t threads, JoinStats& stats,
                    const MakeTileFn& make_tile_fn) {
  const std::size_t col_tiles = (n_right + kTileCols - 1) / kTileCols;
  const std::size_t n_tiles = join_tile_count(n_left, n_right);
  stats.tiles = n_tiles;
  if (n_tiles == 0) {
    return;
  }
  std::vector<JoinStats> chunk_stats(
      std::max<std::size_t>(1, std::min(threads, n_tiles)));
  fbf::util::parallel_chunks(
      n_tiles, threads,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        JoinStats& local = chunk_stats[chunk];
        auto tile_fn = make_tile_fn();
        for (std::size_t t = begin; t < end; ++t) {
          const std::size_t i0 = (t / col_tiles) * kTileRows;
          const std::size_t j0 = (t % col_tiles) * kTileCols;
          tile_fn(i0, std::min(i0 + kTileRows, n_left), j0,
                  std::min(j0 + kTileCols, n_right), local);
        }
      });
  for (const JoinStats& local : chunk_stats) {
    stats.merge_counts(local);
  }
}

/// Generic path: per-pair kernel looped over a tile.
template <typename MakeKernel>
void run_pair_tiles(std::size_t n_left, std::size_t n_right,
                    std::size_t threads, bool collect, JoinStats& stats,
                    const MakeKernel& make_kernel) {
  run_tile_space(n_left, n_right, threads, stats, [&] {
    return [kernel = make_kernel(), collect](
               std::size_t i0, std::size_t i1, std::size_t j0,
               std::size_t j1, JoinStats& local) {
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          if (kernel(i, j, local)) {
            ++local.matches;
            if (i == j) {
              ++local.diagonal_matches;
            }
            if (collect) {
              local.match_pairs.emplace_back(static_cast<std::uint32_t>(i),
                                             static_cast<std::uint32_t>(j));
            }
          }
        }
      }
    };
  });
}

/// Everything the packed/batched FBF tile path needs.
struct PackedJoinContext {
  std::span<const std::string> left;
  std::span<const std::string> right;
  const PackedSignatureStore* sig_left;
  const PackedSignatureStore* sig_right;
  KernelKind kernel;
  int k;
  bool use_length;
  Verifier verifier;
  bool (*verify)(std::string_view, std::string_view, int);
  bool collect;
};

/// Batched FBF tile: the kernel filters one query row against the whole
/// tile of packed candidates, survivors are drained from the bitmap into
/// verification.  Counter semantics match the scalar ladder exactly:
/// fbf_evaluated counts length-filter survivors (ladder order), fbf_pass
/// counts pairs passing both, verify runs on fbf_pass survivors in
/// ascending j — identical totals and match sets to the per-pair scan.
void run_packed_tile(const PackedJoinContext& ctx, std::size_t i0,
                     std::size_t i1, std::size_t j0, std::size_t j1,
                     JoinStats& local) {
  constexpr std::size_t kBitmapWords = (kTileCols + 63) / 64;
  std::uint64_t bitmap[kBitmapWords];
  const std::size_t width = j1 - j0;
  const std::size_t n_bitmap_words = (width + 63) / 64;
  const bool two_words = ctx.sig_right->words() == 2;
  const std::uint64_t* p0 = ctx.sig_right->plane(0) + j0;
  const std::uint64_t* p1 = two_words ? ctx.sig_right->plane(1) + j0 : nullptr;
  const std::uint32_t* len_right = ctx.sig_right->lengths() + j0;
  const int threshold = 2 * ctx.k;

  for (std::size_t i = i0; i < i1; ++i) {
    const std::uint64_t q0 = ctx.sig_left->word(0, i);
    const std::uint64_t q1 = two_words ? ctx.sig_left->word(1, i) : 0;
    std::size_t fbf_pass =
        filter_tile(q0, p0, q1, p1, width, threshold, bitmap, ctx.kernel);
    if (ctx.use_length) {
      // Ladder order is length -> FBF: intersect with the length bitmap
      // and charge fbf_evaluated only for length survivors, so counters
      // match the scalar ladder bit for bit.
      const std::uint32_t len_i = ctx.sig_left->lengths()[i];
      std::size_t length_pass = 0;
      fbf_pass = 0;
      for (std::size_t w = 0; w < n_bitmap_words; ++w) {
        const std::size_t base = w * 64;
        const std::size_t lanes = std::min<std::size_t>(64, width - base);
        std::uint64_t len_bits = 0;
        for (std::size_t b = 0; b < lanes; ++b) {
          len_bits |= static_cast<std::uint64_t>(m::length_filter_pass(
                          len_i, len_right[base + b], ctx.k))
                      << b;
        }
        length_pass += static_cast<std::size_t>(std::popcount(len_bits));
        bitmap[w] &= len_bits;
        fbf_pass += static_cast<std::size_t>(std::popcount(bitmap[w]));
      }
      local.length_pass += length_pass;
      local.fbf_evaluated += length_pass;
    } else {
      local.fbf_evaluated += width;
    }
    local.fbf_pass += fbf_pass;

    // Drain survivors (ascending j within the tile).
    for (std::size_t w = 0; w < n_bitmap_words; ++w) {
      std::uint64_t bits = bitmap[w];
      while (bits != 0) {
        const std::size_t j =
            j0 + w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        bool is_match = true;
        if (ctx.verifier != Verifier::kNone) {
          ++local.verify_calls;
          is_match = ctx.verify(ctx.left[i], ctx.right[j], ctx.k);
        }
        if (is_match) {
          ++local.matches;
          if (i == j) {
            ++local.diagonal_matches;
          }
          if (ctx.collect) {
            local.match_pairs.emplace_back(static_cast<std::uint32_t>(i),
                                           static_cast<std::uint32_t>(j));
          }
        }
      }
    }
  }
}

bool verify_dl(std::string_view s, std::string_view t, int k) {
  return m::dl_within(s, t, k);
}
bool verify_pdl(std::string_view s, std::string_view t, int k) {
  return m::pdl_within(s, t, k);
}

}  // namespace

void JoinStats::merge_counts(const JoinStats& other) {
  length_pass += other.length_pass;
  fbf_evaluated += other.fbf_evaluated;
  fbf_pass += other.fbf_pass;
  verify_calls += other.verify_calls;
  matches += other.matches;
  diagonal_matches += other.diagonal_matches;
  match_pairs.insert(match_pairs.end(), other.match_pairs.begin(),
                     other.match_pairs.end());
}

JoinStats match_strings(std::span<const std::string> left,
                        std::span<const std::string> right,
                        const JoinConfig& config) {
  JoinStats stats;
  stats.pairs =
      static_cast<std::uint64_t>(left.size()) * right.size();

  const bool uses_fbf = method_uses_fbf(config.method);
  const bool uses_length = method_uses_length(config.method);
  const Verifier verifier = method_verifier(config.method);
  const int k = config.k;
  const auto popcount = config.popcount;
  // The batched kernel computes the hardware popcount, so the packed path
  // is taken for the default strategy and the explicit kBatched request;
  // the Wegner / LUT ablations need the per-pair scan to mean anything.
  const bool packed_path =
      uses_fbf && config.packed &&
      (popcount == fbf::util::PopcountKind::kHardware ||
       popcount == fbf::util::PopcountKind::kBatched) &&
      PackedSignatureStore::supported(config.field_class, config.alpha_words);

  // Precomputation phase (the Gen row): FBF signatures (packed planes on
  // the batched path, classic store on the fallback) or Soundex codes.
  SignatureStore sig_left;
  SignatureStore sig_right;
  PackedSignatureStore packed_left;
  PackedSignatureStore packed_right;
  std::vector<std::string> sdx_left;
  std::vector<std::string> sdx_right;
  if (packed_path) {
    packed_left = PackedSignatureStore(left, config.field_class,
                                       config.alpha_words, config.threads);
    packed_right = PackedSignatureStore(right, config.field_class,
                                        config.alpha_words, config.threads);
    stats.signature_gen_ms = packed_left.build_ms() + packed_right.build_ms();
  } else if (uses_fbf) {
    sig_left = SignatureStore(left, config.field_class, config.alpha_words,
                              config.threads);
    sig_right = SignatureStore(right, config.field_class, config.alpha_words,
                               config.threads);
    stats.signature_gen_ms = sig_left.build_ms() + sig_right.build_ms();
  } else if (config.method == Method::kSoundex) {
    const fbf::util::Stopwatch gen_timer;
    sdx_left.reserve(left.size());
    for (const std::string& s : left) {
      sdx_left.push_back(m::soundex(s));
    }
    sdx_right.reserve(right.size());
    for (const std::string& t : right) {
      sdx_right.push_back(m::soundex(t));
    }
    stats.signature_gen_ms = gen_timer.elapsed_ms();
  }

  const fbf::util::Stopwatch join_timer;
  const auto run = [&](const auto& make_kernel) {
    run_pair_tiles(left.size(), right.size(), config.threads,
                   config.collect_matches, stats, make_kernel);
  };

  switch (config.method) {
    case Method::kJaro:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::jaro(left[i], right[j]) >= config.sim_threshold;
        };
      });
      break;
    case Method::kWink:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::jaro_winkler(left[i], right[j]) >= config.sim_threshold;
        };
      });
      break;
    case Method::kHamming:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::hamming_within(left[i], right[j], k);
        };
      });
      break;
    case Method::kSoundex:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return !sdx_left[i].empty() && sdx_left[i] == sdx_right[j];
        };
      });
      break;
    case Method::kMyers:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::myers_within(left[i], right[j], k);
        };
      });
      break;
    default: {
      if (packed_path) {
        PackedJoinContext ctx;
        ctx.left = left;
        ctx.right = right;
        ctx.sig_left = &packed_left;
        ctx.sig_right = &packed_right;
        ctx.kernel = best_kernel();
        ctx.k = k;
        ctx.use_length = uses_length;
        ctx.verifier = verifier;
        ctx.verify = verifier == Verifier::kDl ? verify_dl : verify_pdl;
        ctx.collect = config.collect_matches;
        stats.kernel = ctx.kernel == KernelKind::kAvx2 ? "tile-avx2"
                                                       : "tile-scalar64";
        run_tile_space(left.size(), right.size(), config.threads, stats,
                       [&] {
                         return [&ctx](std::size_t i0, std::size_t i1,
                                       std::size_t j0, std::size_t j1,
                                       JoinStats& local) {
                           run_packed_tile(ctx, i0, i1, j0, j1, local);
                         };
                       });
        break;
      }
      // Per-pair filter ladder (Wegner/LUT ablations, alpha l > 2, or
      // packed explicitly disabled).  The verifier callable is chosen
      // once.
      const auto dispatch = [&](auto use_length, auto use_fbf,
                                const auto& verify) {
        run([&] {
          return [&, verify](std::size_t i, std::size_t j, JoinStats& local) {
            const Signature* si = use_fbf ? &sig_left[i] : nullptr;
            const Signature* sj = use_fbf ? &sig_right[j] : nullptr;
            return evaluate_pair<decltype(use_length)::value,
                                 decltype(use_fbf)::value>(
                left[i], right[j], si, sj, k, popcount, verifier, verify,
                local);
          };
        });
      };
      using std::bool_constant;
      const auto pick_verifier = [&](auto use_length, auto use_fbf) {
        if (verifier == Verifier::kDl) {
          dispatch(use_length, use_fbf, verify_dl);
        } else {
          dispatch(use_length, use_fbf, verify_pdl);
        }
      };
      if (uses_length && uses_fbf) {
        pick_verifier(bool_constant<true>{}, bool_constant<true>{});
      } else if (uses_length) {
        pick_verifier(bool_constant<true>{}, bool_constant<false>{});
      } else if (uses_fbf) {
        pick_verifier(bool_constant<false>{}, bool_constant<true>{});
      } else {
        pick_verifier(bool_constant<false>{}, bool_constant<false>{});
      }
      break;
    }
  }
  // Tiles visit the pair space out of row-major order; restore the
  // documented ascending (i, j) ordering so collect_matches output is
  // byte-identical across thread counts and tile shapes.
  std::sort(stats.match_pairs.begin(), stats.match_pairs.end());
  stats.join_ms = join_timer.elapsed_ms();
  return stats;
}

}  // namespace fbf::core
