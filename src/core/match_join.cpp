#include "core/match_join.hpp"

#include <algorithm>
#include <functional>
#include <optional>

#include "core/block_index.hpp"
#include "core/candidate_generator.hpp"
#include "core/candidate_pipeline.hpp"
#include "metrics/damerau.hpp"
#include "metrics/hamming.hpp"
#include "metrics/jaro.hpp"
#include "metrics/length_filter.hpp"
#include "metrics/myers.hpp"
#include "metrics/pdl.hpp"
#include "metrics/soundex.hpp"
#include "telemetry/telemetry.hpp"
#include "util/affinity.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fbf::core {

namespace {

namespace m = fbf::metrics;

/// Evaluates one pair through the non-FBF ladder (length filter +
/// verifier only; FBF methods run through CandidatePipeline instead).
template <bool kUseLength, typename VerifyFn>
inline bool evaluate_pair(std::string_view s, std::string_view t, int k,
                          Verifier verifier, const VerifyFn& verify,
                          JoinStats& stats) {
  if constexpr (kUseLength) {
    if (!m::length_filter_pass(s, t, k)) {
      return false;
    }
    ++stats.length_pass;
  }
  if (verifier == Verifier::kNone) {
    return true;  // filter-only methods report survivors as matches
  }
  ++stats.verify_calls;
  return verify(s, t, k);
}

/// Runs `tile_fn(i0, i1, j0, j1, local)` over every 2D tile of the S x T
/// pair space.  Tiles are the thread-pool work unit (contiguous tile-id
/// ranges per chunk), so skewed shapes (|S| << |T|) still spread across
/// every thread.  Chunk stats are merged in chunk order and counters are
/// integer sums, so totals are deterministic for any thread count.
template <typename MakeTileFn>
void run_tile_space(std::size_t n_left, std::size_t n_right,
                    std::size_t threads, bool affinity, JoinStats& stats,
                    const MakeTileFn& make_tile_fn) {
  const std::size_t col_tiles = (n_right + kTileCols - 1) / kTileCols;
  const std::size_t row_tiles = (n_left + kTileRows - 1) / kTileRows;
  const std::size_t n_tiles = join_tile_count(n_left, n_right);
  stats.tiles = n_tiles;
  if (n_tiles == 0) {
    return;
  }
  // Affinity schedule: worker w is pinned to CPU w and owns tile rows
  // r % n_workers == w, so one core streams a row's plane data end to
  // end.  Needs >= 2 workers — parallel_chunks runs a single chunk
  // inline on the caller, and pinning the caller would leak affinity
  // past the join.  Counters stay deterministic: chunk stats are merged
  // in worker order and counters are integer sums, so both schedules
  // produce identical totals (and match_pairs are sorted afterwards).
  const std::size_t n_workers =
      std::max<std::size_t>(1, std::min(threads, row_tiles));
  if (affinity && n_workers >= 2) {
    stats.affinity_schedule = true;
    std::vector<JoinStats> chunk_stats(n_workers);
    fbf::util::parallel_chunks(
        n_workers, n_workers,
        [&](std::size_t chunk, std::size_t worker, std::size_t) {
          JoinStats& local = chunk_stats[chunk];
          fbf::util::pin_current_thread(worker);
          auto tile_fn = make_tile_fn();
          for (std::size_t r = worker; r < row_tiles; r += n_workers) {
            const std::size_t i0 = r * kTileRows;
            const std::size_t i1 = std::min(i0 + kTileRows, n_left);
            for (std::size_t c = 0; c < col_tiles; ++c) {
              const std::size_t j0 = c * kTileCols;
              tile_fn(i0, i1, j0, std::min(j0 + kTileCols, n_right), local);
            }
          }
        });
    for (const JoinStats& local : chunk_stats) {
      stats.merge_counts(local);
    }
    return;
  }
  std::vector<JoinStats> chunk_stats(
      std::max<std::size_t>(1, std::min(threads, n_tiles)));
  fbf::util::parallel_chunks(
      n_tiles, threads,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        JoinStats& local = chunk_stats[chunk];
        auto tile_fn = make_tile_fn();
        for (std::size_t t = begin; t < end; ++t) {
          const std::size_t i0 = (t / col_tiles) * kTileRows;
          const std::size_t j0 = (t % col_tiles) * kTileCols;
          tile_fn(i0, std::min(i0 + kTileRows, n_left), j0,
                  std::min(j0 + kTileCols, n_right), local);
        }
      });
  for (const JoinStats& local : chunk_stats) {
    stats.merge_counts(local);
  }
}

/// Generic path: per-pair kernel looped over a tile.
template <typename MakeKernel>
void run_pair_tiles(std::size_t n_left, std::size_t n_right,
                    std::size_t threads, bool affinity, bool collect,
                    JoinStats& stats, const MakeKernel& make_kernel) {
  run_tile_space(n_left, n_right, threads, affinity, stats, [&] {
    return [kernel = make_kernel(), collect](
               std::size_t i0, std::size_t i1, std::size_t j0,
               std::size_t j1, JoinStats& local) {
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          if (kernel(i, j, local)) {
            ++local.matches;
            if (i == j) {
              ++local.diagonal_matches;
            }
            if (collect) {
              local.match_pairs.emplace_back(static_cast<std::uint32_t>(i),
                                             static_cast<std::uint32_t>(j));
            }
          }
        }
      }
    };
  });
}

/// FBF tile body: both join sides are CandidatePipelines.  Left rows are
/// swept in blocks of kMaxBlockQueries row-queries, so the right
/// pipeline's filter_block loads each packed plane word of the tile once
/// per Q queries (batched mode; the per-pair fallback just loops — the
/// pipeline decides).  Each query's survivors then drain from its bitmap
/// into verification in ascending (i, j).  Counter semantics are the
/// scalar ladder's, bit for bit (see core/candidate_pipeline.hpp).
void run_pipeline_tile(const CandidatePipeline& pipe_left,
                       const CandidatePipeline& pipe_right,
                       std::span<const std::string> left,
                       std::span<const std::string> right, bool collect,
                       std::size_t i0, std::size_t i1, std::size_t j0,
                       std::size_t j1, JoinStats& local) {
  constexpr std::size_t kBitmapWords = (kTileCols + 63) / 64;
  std::uint64_t bitmaps[kMaxBlockQueries * kBitmapWords];
  CandidatePipeline::Query queries[kMaxBlockQueries];
  PipelineCounters counters;
  for (std::size_t i = i0; i < i1; i += kMaxBlockQueries) {
    const std::size_t n_queries = std::min(kMaxBlockQueries, i1 - i);
    for (std::size_t b = 0; b < n_queries; ++b) {
      queries[b] = pipe_left.row_query(i + b);
    }
    pipe_right.filter_block({queries, n_queries}, j0, j1, nullptr, bitmaps,
                            kBitmapWords, counters);
    for (std::size_t b = 0; b < n_queries; ++b) {
      const std::size_t row = i + b;
      CandidatePipeline::for_each_survivor(
          bitmaps + b * kBitmapWords, j1 - j0, [&](std::size_t lane) {
            const std::size_t j = j0 + lane;
            if (pipe_right.verify(left[row], right[j], counters)) {
              ++local.matches;
              if (row == j) {
                ++local.diagonal_matches;
              }
              if (collect) {
                local.match_pairs.emplace_back(
                    static_cast<std::uint32_t>(row),
                    static_cast<std::uint32_t>(j));
              }
            }
          });
    }
  }
  local.candidates_generated += counters.candidates_generated;
  local.length_pass += counters.length_pass;
  local.fbf_evaluated += counters.fbf_evaluated;
  local.fbf_pass += counters.fbf_pass;
  local.verify_calls += counters.verify_calls;
}

/// Indexed FBF join body: probe the block index per left row, gather-
/// filter the candidate ids through the right pipeline, verify survivors.
/// Left rows are the parallel work unit (contiguous chunks); per-chunk
/// stats merge in chunk order, and matches sort afterwards, so output is
/// identical for any thread count — and, by the generator soundness
/// contract, identical to the dense tile sweep's.
void run_indexed_join(const BlockIndexGenerator& gen,
                      const CandidatePipeline& pipe_left,
                      const CandidatePipeline& pipe_right,
                      std::span<const std::string> left,
                      std::span<const std::string> right,
                      std::size_t threads, bool collect, JoinStats& stats) {
  const std::size_t n_chunks =
      std::max<std::size_t>(1, std::min(threads, left.size()));
  stats.tiles = n_chunks;
  std::vector<JoinStats> chunk_stats(n_chunks);
  fbf::util::parallel_chunks(
      left.size(), threads,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        JoinStats& local = chunk_stats[chunk];
        PipelineCounters counters;
        std::vector<std::uint32_t> ids;
        std::vector<std::uint32_t> survivors;
        for (std::size_t i = begin; i < end; ++i) {
          ids.clear();
          gen.generate(left[i], ids);
          survivors.clear();
          pipe_right.filter_ids(pipe_left.row_query(i), ids, survivors,
                                counters);
          for (const std::uint32_t j : survivors) {
            if (pipe_right.verify(left[i], right[j], counters)) {
              ++local.matches;
              if (i == j) {
                ++local.diagonal_matches;
              }
              if (collect) {
                local.match_pairs.emplace_back(static_cast<std::uint32_t>(i),
                                               j);
              }
            }
          }
        }
        local.candidates_generated += counters.candidates_generated;
        local.length_pass += counters.length_pass;
        local.fbf_evaluated += counters.fbf_evaluated;
        local.fbf_pass += counters.fbf_pass;
        local.verify_calls += counters.verify_calls;
      });
  for (const JoinStats& local : chunk_stats) {
    stats.merge_counts(local);
  }
}

bool verify_dl(std::string_view s, std::string_view t, int k) {
  return m::dl_within(s, t, k);
}
bool verify_pdl(std::string_view s, std::string_view t, int k) {
  return m::pdl_within(s, t, k);
}

}  // namespace

void JoinStats::merge_counts(const JoinStats& other) {
  candidates_generated += other.candidates_generated;
  length_pass += other.length_pass;
  fbf_evaluated += other.fbf_evaluated;
  fbf_pass += other.fbf_pass;
  verify_calls += other.verify_calls;
  matches += other.matches;
  diagonal_matches += other.diagonal_matches;
  match_pairs.insert(match_pairs.end(), other.match_pairs.begin(),
                     other.match_pairs.end());
}

JoinStats match_strings(std::span<const std::string> left,
                        std::span<const std::string> right,
                        const JoinConfig& config) {
  JoinStats stats;
  stats.pairs =
      static_cast<std::uint64_t>(left.size()) * right.size();

  const bool uses_fbf = method_uses_fbf(config.method);
  const bool uses_length = method_uses_length(config.method);
  const Verifier verifier = method_verifier(config.method);
  const int k = config.k;

  // Precomputation phase (the Gen row): FBF methods build both sides'
  // pipelines (packed planes or classic signatures — the pipeline picks
  // per layout and popcount strategy); Soundex pre-encodes both lists.
  std::optional<CandidatePipeline> pipe_left;
  std::optional<CandidatePipeline> pipe_right;
  std::optional<BlockIndexGenerator> block_gen;
  std::vector<std::string> sdx_left;
  std::vector<std::string> sdx_right;
  if (uses_fbf) {
    PipelineConfig pcfg;
    pcfg.field_class = config.field_class;
    pcfg.alpha_words = config.alpha_words;
    pcfg.k = k;
    pcfg.use_length = uses_length;
    pcfg.verifier = verifier;
    pcfg.popcount = config.popcount;
    pcfg.force_per_pair = !config.packed;
    pipe_left.emplace(pcfg, left, config.threads);
    pipe_right.emplace(pcfg, right, config.threads);
    stats.signature_gen_ms = pipe_left->build_ms() + pipe_right->build_ms();
    stats.kernel = pipe_right->kernel_name();
    // Soundness gate for indexed generation: the block index covers
    // { OSA <= k }, not the FBF pass-set, so filter-only methods
    // (Verifier::kNone reports survivors as matches) must stay dense —
    // as must k outside the supported pigeonhole range.  The gate runs
    // after the FBF_FORCE_GENERATOR override so forcing "block" can
    // never change answers, only engage the index where it is sound.
    if (select_generator(config.generator) == GeneratorKind::kBlockIndex &&
        verifier != Verifier::kNone && BlockIndexGenerator::supported(k)) {
      const fbf::util::Stopwatch index_timer;
      block_gen.emplace(k, right, config.threads);
      stats.signature_gen_ms += index_timer.elapsed_ms();
      stats.generator = block_gen->name();
    }
  } else if (config.method == Method::kSoundex) {
    const fbf::util::Stopwatch gen_timer;
    sdx_left.reserve(left.size());
    for (const std::string& s : left) {
      sdx_left.push_back(m::soundex(s));
    }
    sdx_right.reserve(right.size());
    for (const std::string& t : right) {
      sdx_right.push_back(m::soundex(t));
    }
    stats.signature_gen_ms = gen_timer.elapsed_ms();
  }

  const fbf::util::Stopwatch join_timer;
  const bool affinity =
      config.affinity == TileAffinity::kOn ||
      (config.affinity == TileAffinity::kAuto &&
       fbf::util::numa_node_count() > 1);
  const auto run = [&](const auto& make_kernel) {
    run_pair_tiles(left.size(), right.size(), config.threads, affinity,
                   config.collect_matches, stats, make_kernel);
  };

  switch (config.method) {
    case Method::kJaro:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::jaro(left[i], right[j]) >= config.sim_threshold;
        };
      });
      break;
    case Method::kWink:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::jaro_winkler(left[i], right[j]) >= config.sim_threshold;
        };
      });
      break;
    case Method::kHamming:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::hamming_within(left[i], right[j], k);
        };
      });
      break;
    case Method::kSoundex:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return !sdx_left[i].empty() && sdx_left[i] == sdx_right[j];
        };
      });
      break;
    case Method::kMyers:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::myers_within(left[i], right[j], k);
        };
      });
      break;
    default: {
      if (uses_fbf) {
        const bool collect = config.collect_matches;
        if (block_gen) {
          run_indexed_join(*block_gen, *pipe_left, *pipe_right, left, right,
                           config.threads, collect, stats);
          break;
        }
        run_tile_space(left.size(), right.size(), config.threads, affinity,
                       stats, [&] {
                         return [&, collect](std::size_t i0, std::size_t i1,
                                             std::size_t j0, std::size_t j1,
                                             JoinStats& local) {
                           run_pipeline_tile(*pipe_left, *pipe_right, left,
                                             right, collect, i0, i1, j0, j1,
                                             local);
                         };
                       });
        break;
      }
      // Length-filter / verifier-only ladder (kL* methods without FBF,
      // bare DL / PDL).  The verifier callable is chosen once.
      const auto dispatch = [&](auto use_length, const auto& verify) {
        run([&] {
          return [&, verify](std::size_t i, std::size_t j, JoinStats& local) {
            return evaluate_pair<decltype(use_length)::value>(
                left[i], right[j], k, verifier, verify, local);
          };
        });
      };
      using std::bool_constant;
      const auto pick_verifier = [&](auto use_length) {
        if (verifier == Verifier::kDl) {
          dispatch(use_length, verify_dl);
        } else {
          dispatch(use_length, verify_pdl);
        }
      };
      if (uses_length) {
        pick_verifier(bool_constant<true>{});
      } else {
        pick_verifier(bool_constant<false>{});
      }
      break;
    }
  }
  // Tiles visit the pair space out of row-major order; restore the
  // documented ascending (i, j) ordering so collect_matches output is
  // byte-identical across thread counts and tile shapes.
  std::sort(stats.match_pairs.begin(), stats.match_pairs.end());
  stats.join_ms = join_timer.elapsed_ms();
  if (fbf::telemetry::enabled()) {
    // Join-level mirror (the ladder rungs were already mirrored by the
    // pipeline entry points): one run, its match yield.
    auto& registry = fbf::telemetry::Registry::global();
    static fbf::telemetry::Counter& runs = registry.counter("join.runs");
    static fbf::telemetry::Counter& matches =
        registry.counter("join.matches");
    runs.increment();
    matches.add(stats.matches);
  }
  return stats;
}

}  // namespace fbf::core
