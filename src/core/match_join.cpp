#include "core/match_join.hpp"

#include <functional>

#include "core/find_diff_bits.hpp"
#include "core/signature_store.hpp"
#include "metrics/damerau.hpp"
#include "metrics/hamming.hpp"
#include "metrics/jaro.hpp"
#include "metrics/length_filter.hpp"
#include "metrics/myers.hpp"
#include "metrics/pdl.hpp"
#include "metrics/soundex.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fbf::core {

namespace {

namespace m = fbf::metrics;

/// Evaluates one pair through the filter ladder, updating `stats`.
/// Marked always_inline so each instantiation site folds the constant
/// configuration branches.
template <bool kUseLength, bool kUseFbf, typename VerifyFn>
inline bool evaluate_pair(std::string_view s, std::string_view t,
                          [[maybe_unused]] const Signature* sig_s,
                          [[maybe_unused]] const Signature* sig_t, int k,
                          [[maybe_unused]] fbf::util::PopcountKind popcount,
                          Verifier verifier, const VerifyFn& verify,
                          JoinStats& stats) {
  if constexpr (kUseLength) {
    if (!m::length_filter_pass(s, t, k)) {
      return false;
    }
    ++stats.length_pass;
  }
  if constexpr (kUseFbf) {
    ++stats.fbf_evaluated;
    if (find_diff_bits(*sig_s, *sig_t, popcount) > 2 * k) {
      return false;
    }
    ++stats.fbf_pass;
  }
  if (verifier == Verifier::kNone) {
    return true;  // filter-only methods report survivors as matches
  }
  ++stats.verify_calls;
  return verify(s, t, k);
}

/// Runs `kernel(i, j) -> bool` over the S x T pair space, chunked by rows
/// of S.  Chunk stats are merged in chunk order, so counter totals are
/// deterministic for any thread count.
template <typename Kernel>
void run_pair_space(std::size_t n_left, std::size_t n_right,
                    std::size_t threads, bool collect, JoinStats& stats,
                    const Kernel& make_kernel) {
  std::vector<JoinStats> chunk_stats;
  const std::size_t n_chunks =
      std::max<std::size_t>(1, std::min(threads, n_left));
  chunk_stats.resize(n_chunks);
  fbf::util::parallel_chunks(
      n_left, threads,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        JoinStats& local = chunk_stats[chunk];
        auto kernel = make_kernel();
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = 0; j < n_right; ++j) {
            if (kernel(i, j, local)) {
              ++local.matches;
              if (i == j) {
                ++local.diagonal_matches;
              }
              if (collect) {
                local.match_pairs.emplace_back(
                    static_cast<std::uint32_t>(i),
                    static_cast<std::uint32_t>(j));
              }
            }
          }
        }
      });
  for (const JoinStats& local : chunk_stats) {
    stats.merge_counts(local);
  }
}

}  // namespace

void JoinStats::merge_counts(const JoinStats& other) {
  length_pass += other.length_pass;
  fbf_evaluated += other.fbf_evaluated;
  fbf_pass += other.fbf_pass;
  verify_calls += other.verify_calls;
  matches += other.matches;
  diagonal_matches += other.diagonal_matches;
  match_pairs.insert(match_pairs.end(), other.match_pairs.begin(),
                     other.match_pairs.end());
}

JoinStats match_strings(std::span<const std::string> left,
                        std::span<const std::string> right,
                        const JoinConfig& config) {
  JoinStats stats;
  stats.pairs =
      static_cast<std::uint64_t>(left.size()) * right.size();

  const bool uses_fbf = method_uses_fbf(config.method);
  const bool uses_length = method_uses_length(config.method);
  const Verifier verifier = method_verifier(config.method);
  const int k = config.k;
  const auto popcount = config.popcount;

  // Precomputation phase (the Gen row): FBF signatures or Soundex codes.
  SignatureStore sig_left;
  SignatureStore sig_right;
  std::vector<std::string> sdx_left;
  std::vector<std::string> sdx_right;
  if (uses_fbf) {
    sig_left = SignatureStore(left, config.field_class, config.alpha_words);
    sig_right = SignatureStore(right, config.field_class, config.alpha_words);
    stats.signature_gen_ms = sig_left.build_ms() + sig_right.build_ms();
  } else if (config.method == Method::kSoundex) {
    const fbf::util::Stopwatch gen_timer;
    sdx_left.reserve(left.size());
    for (const std::string& s : left) {
      sdx_left.push_back(m::soundex(s));
    }
    sdx_right.reserve(right.size());
    for (const std::string& t : right) {
      sdx_right.push_back(m::soundex(t));
    }
    stats.signature_gen_ms = gen_timer.elapsed_ms();
  }

  const fbf::util::Stopwatch join_timer;
  const auto run = [&](const auto& make_kernel) {
    run_pair_space(left.size(), right.size(), config.threads,
                   config.collect_matches, stats, make_kernel);
  };

  switch (config.method) {
    case Method::kJaro:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::jaro(left[i], right[j]) >= config.sim_threshold;
        };
      });
      break;
    case Method::kWink:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::jaro_winkler(left[i], right[j]) >= config.sim_threshold;
        };
      });
      break;
    case Method::kHamming:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::hamming_within(left[i], right[j], k);
        };
      });
      break;
    case Method::kSoundex:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return !sdx_left[i].empty() && sdx_left[i] == sdx_right[j];
        };
      });
      break;
    case Method::kMyers:
      run([&] {
        return [&](std::size_t i, std::size_t j, JoinStats&) {
          return m::myers_within(left[i], right[j], k);
        };
      });
      break;
    default: {
      // Filter-ladder methods.  The verifier callable is chosen once.
      const auto verify_dl = [](std::string_view s, std::string_view t,
                                int kk) { return m::dl_within(s, t, kk); };
      const auto verify_pdl = [](std::string_view s, std::string_view t,
                                 int kk) { return m::pdl_within(s, t, kk); };
      const auto dispatch = [&](auto use_length, auto use_fbf,
                                const auto& verify) {
        run([&] {
          return [&, verify](std::size_t i, std::size_t j, JoinStats& local) {
            const Signature* si = use_fbf ? &sig_left[i] : nullptr;
            const Signature* sj = use_fbf ? &sig_right[j] : nullptr;
            return evaluate_pair<decltype(use_length)::value,
                                 decltype(use_fbf)::value>(
                left[i], right[j], si, sj, k, popcount, verifier, verify,
                local);
          };
        });
      };
      using std::bool_constant;
      const auto pick_verifier = [&](auto use_length, auto use_fbf) {
        if (verifier == Verifier::kDl) {
          dispatch(use_length, use_fbf, verify_dl);
        } else {
          dispatch(use_length, use_fbf, verify_pdl);
        }
      };
      if (uses_length && uses_fbf) {
        pick_verifier(bool_constant<true>{}, bool_constant<true>{});
      } else if (uses_length) {
        pick_verifier(bool_constant<true>{}, bool_constant<false>{});
      } else if (uses_fbf) {
        pick_verifier(bool_constant<false>{}, bool_constant<true>{});
      } else {
        pick_verifier(bool_constant<false>{}, bool_constant<false>{});
      }
      break;
    }
  }
  stats.join_ms = join_timer.elapsed_ms();
  return stats;
}

}  // namespace fbf::core
