// Inverted signature index: sub-quadratic candidate generation (extension
// beyond the paper; DESIGN.md §6).
//
// The paper's join evaluates FindDiffBits on every pair — O(|S|*|T|)
// filter calls even though almost all fail.  Because the filter predicate
// is "signatures differ in at most 2k bits", the pass-set of a query
// signature m is exactly the union of hash buckets keyed by every
// signature within XOR-distance 2k of m.  For short signatures (numeric:
// 30 used bits; alphabetic l<=2: 52 used bits) and k = 1 that is
// 1 + C(b,1) + C(b,2) bucket probes per query — 466 (numeric) or 1,379
// (alpha) — independent of list size, so the candidate generation drops
// from O(n^2) to O(n * probes).  Candidates still go through PDL, so the
// result set is identical to the paper's FPDL join (property-tested).
//
// Supported layouts: signatures that fit one 64-bit key — numeric (1
// word), alpha with l <= 2.  Alphanumeric (3 words / 82 used bits) and
// k >= 3 fall back to the scan join in practice; the index refuses them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/candidate_generator.hpp"
#include "core/query_options.hpp"
#include "core/signature.hpp"

namespace fbf::core {

class SignatureIndex {
 public:
  /// Builds the index over `strings`.  Returns std::nullopt when the
  /// layout is unsupported (signature wider than 64 bits) or the probe
  /// budget for `k` would exceed `max_probes` (default: refuse k >= 3 on
  /// alpha signatures).
  static std::optional<SignatureIndex> build(
      std::span<const std::string> strings, FieldClass cls, int alpha_words,
      int k, std::size_t max_probes = 200000);

  /// Appends to `out` the ids of all indexed strings whose signature
  /// differs from `sig` in at most 2k bits (the FBF pass-set).  The
  /// appended ids never contain duplicates: each id lives in exactly one
  /// bucket (keyed by its full signature) and every probe mask is
  /// distinct, so no bucket is visited twice.
  ///
  /// Named for its role in the generate→filter→verify cascade; "query"
  /// means a request-level point lookup (fbf::MatchRequest /
  /// serve::MatchService).  The one-release deprecated `query()` alias
  /// has been removed on schedule.
  void generate(const Signature& sig, std::vector<std::uint32_t>& out) const;

  /// Appends one string; its id is the append position.  The layout was
  /// validated at build() time, so insertion never fails.
  void insert(std::string_view value);

  /// Bucket-probe count per query (diagnostics).
  [[nodiscard]] std::size_t probes_per_query() const noexcept {
    return probe_masks_.size();
  }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] int k() const noexcept { return k_; }

 private:
  SignatureIndex() = default;

  [[nodiscard]] std::uint64_t pack(const Signature& sig) const noexcept;

  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
  std::vector<std::uint64_t> probe_masks_;  ///< all XOR masks, weight <= 2k
  std::size_t indexed_ = 0;                 ///< total ids in the index
  std::size_t words_ = 1;
  int k_ = 1;
  FieldClass cls_ = FieldClass::kNumeric;
  int alpha_words_ = kDefaultAlphaWords;
};

/// CandidateGenerator adapter over the XOR-ball bucket probes.  The
/// generated set is the FBF pass-set, which is a superset of
/// { j : OSA(query, t_j) <= k } by FBF soundness — so the adapter slots
/// into any generate→filter→verify consumer and into the unified bench
/// harness alongside the block index and the tree generators.  create()
/// returns nullopt exactly where SignatureIndex::build would refuse the
/// layout / threshold.
class SignatureProbeGenerator final : public CandidateGenerator {
 public:
  static std::optional<SignatureProbeGenerator> create(
      FieldClass cls, int alpha_words, int k);

  [[nodiscard]] const char* name() const noexcept override {
    return "sig-probe";
  }
  [[nodiscard]] bool indexed() const noexcept override { return true; }
  [[nodiscard]] std::size_t size() const noexcept override { return size_; }
  void append(std::string_view value) override;
  void generate(std::string_view query,
                std::vector<std::uint32_t>& out) const override;

 private:
  SignatureProbeGenerator(SignatureIndex index, FieldClass cls,
                          int alpha_words)
      : index_(std::move(index)), cls_(cls), alpha_words_(alpha_words) {}

  SignatureIndex index_;
  FieldClass cls_;
  int alpha_words_;
  std::size_t size_ = 0;
};

/// Statistics from an index-accelerated join.
struct IndexJoinStats {
  std::uint64_t pairs = 0;          ///< |S| * |T| (for comparison)
  /// Pairs surfaced by the generate stage (the candidates_generated rung
  /// of the counter ladder): bucket-probe hits, block-index hits, or the
  /// full tile sweep's FBF survivors depending on `path`.
  std::uint64_t candidates = 0;
  std::uint64_t verify_calls = 0;   ///< PDL invocations
  std::uint64_t matches = 0;
  std::uint64_t diagonal_matches = 0;
  double build_ms = 0.0;
  double join_ms = 0.0;
  /// Candidate generation used: "index-probe" (bucket probes),
  /// "block-index" (pigeonhole block / deletion-neighborhood index), or
  /// "tile-scan" (batched pipeline sweep when the probe index refuses the
  /// layout/threshold but the packed kernel still applies).
  const char* path = "index-probe";
};

/// The FPDL join with index-based candidate generation.  Produces exactly
/// the same matches as the scan join (Method::kFpdl); verification runs
/// through the shared CandidatePipeline.  `generator` = kBlockIndex
/// routes candidate generation through BlockIndexGenerator (any layout,
/// k <= 2; path = "block-index"); the default probes the signature
/// index.  When the probe index refuses the layout/threshold
/// (alphanumeric, k >= 3 on alpha) but the batched kernel applies, the
/// join degrades to a pipeline tile-scan (path = "tile-scan") instead of
/// failing.  Returns nullopt only when no acceleration applies.
[[nodiscard]] std::optional<IndexJoinStats> match_strings_indexed(
    std::span<const std::string> left, std::span<const std::string> right,
    const QueryOptions& options);

}  // namespace fbf::core
