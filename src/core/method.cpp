#include "core/method.hpp"

#include <array>

#include "util/ascii.hpp"

namespace fbf::core {

const char* method_name(Method method) noexcept {
  switch (method) {
    case Method::kDl: return "DL";
    case Method::kPdl: return "PDL";
    case Method::kJaro: return "Jaro";
    case Method::kWink: return "Wink";
    case Method::kHamming: return "Ham";
    case Method::kSoundex: return "SDX";
    case Method::kMyers: return "Myers";
    case Method::kFdl: return "FDL";
    case Method::kFpdl: return "FPDL";
    case Method::kFbfOnly: return "FBF";
    case Method::kLdl: return "LDL";
    case Method::kLpdl: return "LPDL";
    case Method::kLengthOnly: return "LF";
    case Method::kLfdl: return "LFDL";
    case Method::kLfpdl: return "LFPDL";
    case Method::kLfbfOnly: return "LFBF";
  }
  return "?";
}

std::optional<Method> parse_method(std::string_view name) noexcept {
  std::array<char, 8> upper{};
  if (name.size() >= upper.size()) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < name.size(); ++i) {
    upper[i] = fbf::util::to_ascii_upper(name[i]);
  }
  const std::string_view u(upper.data(), name.size());
  for (const Method method : all_methods()) {
    std::string_view canonical = method_name(method);
    // method_name is already upper-case except "Jaro"/"Wink"/"Myers".
    std::array<char, 8> canon_upper{};
    for (std::size_t i = 0; i < canonical.size(); ++i) {
      canon_upper[i] = fbf::util::to_ascii_upper(canonical[i]);
    }
    if (u == std::string_view(canon_upper.data(), canonical.size())) {
      return method;
    }
  }
  return std::nullopt;
}

std::span<const Method> all_methods() noexcept {
  static constexpr std::array<Method, 16> kAll = {
      Method::kDl,      Method::kPdl,     Method::kJaro,    Method::kWink,
      Method::kHamming, Method::kSoundex, Method::kMyers,   Method::kFdl,
      Method::kFpdl,    Method::kFbfOnly, Method::kLdl,     Method::kLpdl,
      Method::kLengthOnly, Method::kLfdl, Method::kLfpdl, Method::kLfbfOnly};
  return kAll;
}

}  // namespace fbf::core
