// The approximate string-similarity join (paper Algorithm 7,
// MatchStrings) generalized over the full method ladder.
//
// Evaluates every pair (s, t) in S x T with the configured method, keeping
// per-stage counters so the benches can reproduce the paper's "the filter
// removed 12,369,182 unnecessary comparisons" accounting.  Signature
// generation is timed separately (the Gen row) and fans across the thread
// pool.  The pair space is walked in 2D cache tiles (kTileRows x
// kTileCols); tiles — not rows of S — are the parallel work unit, so a
// 2 x 1,000,000 probe join still spreads across every thread.  For FBF
// methods on layouts the packed SoA store supports (numeric, alpha l<=2,
// alphanumeric l<=2) the filter runs as a batched tile kernel over packed
// 64-bit signature planes (core/fbf_kernel.hpp) with survivors drained
// into verification from a bitmap; wider layouts and the Wegner/LUT
// popcount ablations transparently fall back to the classic per-pair
// scan.  Both paths produce identical counters and match sets
// (property-tested).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/exec_policy.hpp"
#include "core/method.hpp"
#include "core/signature.hpp"
#include "util/bitops.hpp"

namespace fbf::core {

/// Worker/tile-ownership policy for the parallel join (DESIGN.md §13).
/// The default schedule hands contiguous tile-id ranges to a shared
/// worker pool; the affinity schedule instead pins each worker to a CPU
/// and makes it *own* tile rows (row r → worker r % n_workers), so a
/// row's plane data streams through one core's cache — and stays in one
/// NUMA domain — for the whole join.  Counters and match sets are
/// byte-identical under either schedule (integer sums + sorted pairs).
enum class TileAffinity {
  kAuto,  ///< affinity schedule only when the machine has > 1 NUMA node
  kOff,   ///< always the shared-queue schedule
  kOn,    ///< force pinning + row ownership (tests / benches)
};

/// Join configuration.  Defaults reproduce the paper's headline setup:
/// FPDL at k = 1 on alphabetic strings with the 2-word signature.
struct JoinConfig {
  Method method = Method::kFpdl;
  int k = 1;                     ///< edit-distance threshold
  double sim_threshold = 0.8;    ///< Jaro / Jaro–Winkler acceptance
  FieldClass field_class = FieldClass::kAlpha;
  int alpha_words = kDefaultAlphaWords;
  fbf::util::PopcountKind popcount = fbf::util::PopcountKind::kHardware;
  std::size_t threads = 1;
  bool collect_matches = false;  ///< record matching (i, j) pairs
  /// Use the packed SoA planes + batched tile kernel when the layout
  /// supports it (default).  false forces the classic per-pair scan —
  /// the baseline for benches and equivalence tests.
  bool packed = true;
  /// Tile-ownership schedule; kAuto is a graceful no-op on single-node
  /// machines (the shared queue is better there — no pinning overhead).
  TileAffinity affinity = TileAffinity::kAuto;
  /// Candidate generation strategy for FBF methods (DESIGN.md §14).
  /// kBlockIndex builds a pigeonhole block / deletion-neighborhood index
  /// over the right side and probes it per left row instead of sweeping
  /// tiles — sub-quadratic when matches are sparse.  It engages only
  /// where provably sound (a real verifier runs and
  /// BlockIndexGenerator::supported(k)); otherwise the join silently
  /// runs dense.  FBF_FORCE_GENERATOR overrides the request the same way
  /// FBF_FORCE_KERNEL picks the filter kernel.  Match sets are
  /// generator-independent by contract (property-tested).
  GeneratorKind generator = GeneratorKind::kDense;
};

/// Tile shape of the 2D pair-space walk (rows of S x columns of T).
inline constexpr std::size_t kTileRows = 256;
inline constexpr std::size_t kTileCols = 256;

/// Number of parallel work units (tiles) a join over n_left x n_right
/// strings schedules.  Exposed so tests can assert the scheduler never
/// degenerates below the thread count for skewed shapes (|S| << |T|).
[[nodiscard]] constexpr std::size_t join_tile_count(
    std::size_t n_left, std::size_t n_right) noexcept {
  const std::size_t row_tiles = (n_left + kTileRows - 1) / kTileRows;
  const std::size_t col_tiles = (n_right + kTileCols - 1) / kTileCols;
  return row_tiles * col_tiles;
}

/// Per-stage counters and timings for one join.
struct JoinStats {
  std::uint64_t pairs = 0;             ///< |S| * |T|
  /// Pairs the generate stage admitted into the cascade: |S| * |T| for
  /// the dense sweep, the sum of per-query candidate-list lengths for an
  /// indexed generator.  Top rung of the counter ladder; its ratio to
  /// `pairs` is the generator's selectivity.
  std::uint64_t candidates_generated = 0;
  std::uint64_t length_pass = 0;       ///< survivors of the length filter
  std::uint64_t fbf_evaluated = 0;     ///< FindDiffBits invocations
  std::uint64_t fbf_pass = 0;          ///< survivors of the FBF filter
  std::uint64_t verify_calls = 0;      ///< DL / PDL invocations
  std::uint64_t matches = 0;           ///< pairs reported as matching
  std::uint64_t diagonal_matches = 0;  ///< matches with i == j (ground truth)
  double signature_gen_ms = 0.0;       ///< Gen row (0 when method needs none)
  double join_ms = 0.0;                ///< pair-evaluation wall time
  std::uint64_t tiles = 0;             ///< parallel work units scheduled
  const char* kernel = "pair-scalar";  ///< filter kernel variant used
  const char* generator = "dense";     ///< candidate generator that ran
  bool affinity_schedule = false;      ///< row-ownership schedule ran
  /// Matching (i, j) pairs when collect_matches is set.  Ordering
  /// guarantee: sorted ascending by (i, j) after the parallel merge, so
  /// the output is byte-identical for any thread count and tile shape.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> match_pairs;

  /// Accumulates counters (not timings / tiles / kernel) from another
  /// chunk's stats.
  void merge_counts(const JoinStats& other);

  /// Type 1 errors (false positives) under index-diagonal ground truth.
  [[nodiscard]] std::uint64_t type1() const noexcept {
    return matches - diagonal_matches;
  }
  /// Type 2 errors (false negatives) under index-diagonal ground truth,
  /// given the number of true pairs (= list length for paired datasets).
  [[nodiscard]] std::uint64_t type2(std::uint64_t true_pairs) const noexcept {
    return true_pairs - diagonal_matches;
  }
};

/// Runs the join.  S and T must outlive the call.  When the method uses
/// FBF, signatures for both lists are built first and their build time is
/// reported in signature_gen_ms; Soundex pre-encodes both lists the same
/// way (also charged to signature_gen_ms, since it is the analogous
/// precomputation).
[[nodiscard]] JoinStats match_strings(std::span<const std::string> left,
                                      std::span<const std::string> right,
                                      const JoinConfig& config);

}  // namespace fbf::core
