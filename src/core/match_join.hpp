// The approximate string-similarity join (paper Algorithm 7,
// MatchStrings) generalized over the full method ladder.
//
// Evaluates every pair (s, t) in S x T with the configured method, keeping
// per-stage counters so the benches can reproduce the paper's "the filter
// removed 12,369,182 unnecessary comparisons" accounting.  Signature
// generation is timed separately (the Gen row).  Optionally partitions the
// row space across a thread pool (extension; default single-threaded, like
// the paper).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/method.hpp"
#include "core/signature.hpp"
#include "util/bitops.hpp"

namespace fbf::core {

/// Join configuration.  Defaults reproduce the paper's headline setup:
/// FPDL at k = 1 on alphabetic strings with the 2-word signature.
struct JoinConfig {
  Method method = Method::kFpdl;
  int k = 1;                     ///< edit-distance threshold
  double sim_threshold = 0.8;    ///< Jaro / Jaro–Winkler acceptance
  FieldClass field_class = FieldClass::kAlpha;
  int alpha_words = kDefaultAlphaWords;
  fbf::util::PopcountKind popcount = fbf::util::PopcountKind::kHardware;
  std::size_t threads = 1;
  bool collect_matches = false;  ///< record matching (i, j) pairs
};

/// Per-stage counters and timings for one join.
struct JoinStats {
  std::uint64_t pairs = 0;             ///< |S| * |T|
  std::uint64_t length_pass = 0;       ///< survivors of the length filter
  std::uint64_t fbf_evaluated = 0;     ///< FindDiffBits invocations
  std::uint64_t fbf_pass = 0;          ///< survivors of the FBF filter
  std::uint64_t verify_calls = 0;      ///< DL / PDL invocations
  std::uint64_t matches = 0;           ///< pairs reported as matching
  std::uint64_t diagonal_matches = 0;  ///< matches with i == j (ground truth)
  double signature_gen_ms = 0.0;       ///< Gen row (0 when method needs none)
  double join_ms = 0.0;                ///< pair-evaluation wall time
  std::vector<std::pair<std::uint32_t, std::uint32_t>> match_pairs;

  /// Accumulates counters (not timings) from another chunk's stats.
  void merge_counts(const JoinStats& other);

  /// Type 1 errors (false positives) under index-diagonal ground truth.
  [[nodiscard]] std::uint64_t type1() const noexcept {
    return matches - diagonal_matches;
  }
  /// Type 2 errors (false negatives) under index-diagonal ground truth,
  /// given the number of true pairs (= list length for paired datasets).
  [[nodiscard]] std::uint64_t type2(std::uint64_t true_pairs) const noexcept {
    return true_pairs - diagonal_matches;
  }
};

/// Runs the join.  S and T must outlive the call.  When the method uses
/// FBF, signatures for both lists are built first and their build time is
/// reported in signature_gen_ms; Soundex pre-encodes both lists the same
/// way (also charged to signature_gen_ms, since it is the analogous
/// precomputation).
[[nodiscard]] JoinStats match_strings(std::span<const std::string> left,
                                      std::span<const std::string> right,
                                      const JoinConfig& config);

}  // namespace fbf::core
