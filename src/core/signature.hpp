// Fast Bitwise Filter signatures (paper §3.1, Algorithms 4 and 5).
//
// A signature is a checklist of character occurrences packed into 32-bit
// words:
//  * alphabetic  — `l` words; bit c of word j is set iff letter 'A'+c
//                  occurs at least j+1 times (case-insensitive, non-alpha
//                  ignored).  The paper uses l = 2 for names (8 bytes).
//  * numeric     — one word; bits 3c, 3c+1, 3c+2 record the first, second
//                  and third occurrence of digit c (30 of 32 bits used).
//  * alphanumeric — the alphabetic words followed by the numeric word
//                  (12 bytes at l = 2), used for street addresses.
//
// Signatures are value types with inline storage (no allocation) so a
// signature store for a million strings is a flat, cache-friendly array.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace fbf::core {

/// Which character classes a field carries; selects the signature layout.
enum class FieldClass {
  kAlpha,         ///< names: letters only contribute
  kNumeric,       ///< SSN / phone / birthdate: digits only contribute
  kAlphanumeric,  ///< street addresses: both
};

[[nodiscard]] const char* field_class_name(FieldClass cls) noexcept;

/// Default alphabetic occurrence cap (the paper's two-word name signature).
inline constexpr int kDefaultAlphaWords = 2;

/// Maximum supported alphabetic words (occurrence cap).  Four words count
/// up to 4 occurrences per letter — beyond that the marginal filtering
/// power for <= 25-character strings is nil.
inline constexpr int kMaxAlphaWords = 4;

/// Inline-storage signature: up to kMaxAlphaWords alphabetic words plus
/// one numeric word.
class Signature {
 public:
  static constexpr std::size_t kMaxWords = kMaxAlphaWords + 1;

  constexpr Signature() noexcept : words_{}, size_(0) {}

  /// Appends one word.  Caller guarantees size() < kMaxWords.
  constexpr void push(std::uint32_t word) noexcept {
    words_[size_++] = word;
  }

  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr std::uint32_t word(std::size_t i) const noexcept {
    return words_[i];
  }
  [[nodiscard]] std::span<const std::uint32_t> words() const noexcept {
    return {words_.data(), size_};
  }

  friend constexpr bool operator==(const Signature& a,
                                   const Signature& b) noexcept {
    if (a.size_ != b.size_) {
      return false;
    }
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.words_[i] != b.words_[i]) {
        return false;
      }
    }
    return true;
  }

 private:
  std::array<std::uint32_t, kMaxWords> words_;
  std::uint8_t size_;
};

/// Algorithm 5 (SetNumBits): single-word numeric signature counting up to
/// three occurrences of each digit.  Non-digit characters are ignored.
[[nodiscard]] std::uint32_t set_num_bits(std::string_view s) noexcept;

/// Algorithm 4 (SetAlphaBits): `alpha_words`-word alphabetic signature
/// counting up to `alpha_words` occurrences of each letter.
/// Case-insensitive; non-letters ignored.  alpha_words must be in
/// [1, kMaxAlphaWords].
[[nodiscard]] Signature set_alpha_bits(std::string_view s,
                                       int alpha_words = kDefaultAlphaWords) noexcept;

/// Builds the signature appropriate for `cls`: alpha words, the numeric
/// word, or both concatenated (alphanumeric).
[[nodiscard]] Signature make_signature(std::string_view s, FieldClass cls,
                                       int alpha_words = kDefaultAlphaWords) noexcept;

/// Number of words make_signature will produce for `cls`.
[[nodiscard]] constexpr std::size_t signature_words(FieldClass cls,
                                                    int alpha_words) noexcept {
  switch (cls) {
    case FieldClass::kAlpha: return static_cast<std::size_t>(alpha_words);
    case FieldClass::kNumeric: return 1;
    case FieldClass::kAlphanumeric:
      return static_cast<std::size_t>(alpha_words) + 1;
  }
  return 0;
}

}  // namespace fbf::core
