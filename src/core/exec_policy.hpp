// Execution policy: the knobs that decide *how* a linkage-layer operation
// runs, not *what* it computes.
//
// Before this struct existed the same two knobs lived as loose fields on
// every config that ran a scoring loop (LinkConfig::use_pipeline/threads,
// EntityStoreOptions::use_pipeline/threads), so call sites copied them
// field by field and new execution options meant touching every struct.
// ExecPolicy is now embedded in both and `config.exec.<knob>` is the only
// spelling — the one-release deprecated reference aliases are gone (see
// TUTORIAL §11).  Results are policy-independent by contract: any (use_pipeline,
// threads) combination produces identical decisions and counters — the
// equivalence property tests pin that.
#pragma once

#include <cstddef>

namespace fbf::core {

/// Candidate-generation strategy for the generate→filter→verify cascade
/// (DESIGN.md §14).  kDense is the reference: every stored row is a
/// candidate and the filter stage sweeps contiguous tiles.  kBlockIndex
/// probes a pigeonhole block / deletion-neighborhood inverted index
/// (core/block_index.hpp) so candidate generation is sub-quadratic; it
/// only engages where it is provably sound (a real verifier runs and
/// BlockIndexGenerator::supported(k) holds) and falls back to kDense
/// otherwise — decisions are generator-independent by contract.
enum class GeneratorKind {
  kDense,
  kBlockIndex,
};

struct ExecPolicy {
  /// Route scoring through the batched filter pipeline (RecordFilterBank
  /// / CandidatePipeline tile sweeps).  false = the per-pair scalar loop,
  /// kept as the equivalence baseline.
  bool use_pipeline = true;
  /// Worker threads for the parallel portions; 1 = sequential.
  std::size_t threads = 1;
  /// Candidate generation strategy (overridable via FBF_FORCE_GENERATOR;
  /// see core/candidate_generator.hpp select_generator).
  GeneratorKind generator = GeneratorKind::kDense;
};

}  // namespace fbf::core
