// CandidateGenerator: the generate stage of the generate→filter→verify
// cascade (DESIGN.md §14).
//
// PR 3 unified every consumer behind one length→FBF→verify cascade, but
// the cascade still assumed dense candidate generation: every stored row
// is a candidate for every query, and the filter stage sweeps contiguous
// tiles.  That assumption was baked into every call site, so adding an
// index meant touching all of them.  This interface makes generation a
// pluggable stage instead:
//
//   generate(query)  -> sorted unique candidate row ids
//   filter(ids)      -> CandidatePipeline::filter_ids (same FBF predicate,
//                       same counter ladder, gathered plane words through
//                       the same filter_block kernel)
//   verify(pair)     -> unchanged
//
// Soundness contract: for a generator built over stored strings t_0..t_n,
// generate(q) must be a superset of { j : OSA(q, t_j) <= k } — the
// verifier then makes the final decision, so any sound generator produces
// exactly the dense generator's match set (property-tested).  Generators
// are free to over-generate (hash collisions, metric supersets); they may
// never under-generate.
//
// Implementations: DenseGenerator (here; the all-rows reference),
// BlockIndexGenerator (core/block_index.hpp; pigeonhole pieces + deletion
// neighborhood), SignatureProbeGenerator (core/signature_index.hpp; the
// FBF pass-set via XOR-ball bucket probes), and the BK-tree / trie
// adapters in search/generator_adapters.hpp.
//
// Thread contract (mirrors std::vector): concurrent generate() calls are
// safe; append() must not race generate().  Consumers build or append
// single-threaded (or through the builder's own fan-out) and then query
// from the worker pool.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/exec_policy.hpp"

namespace fbf::core {

class CandidateGenerator {
 public:
  virtual ~CandidateGenerator() = default;

  /// Stable display name ("dense", "block-index", "bk-tree", ...).
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// True when generate() narrows the candidate set.  False means "every
  /// row is a candidate": callers with a tiled sweep keep it (the dense
  /// fast path) instead of materializing id lists.
  [[nodiscard]] virtual bool indexed() const noexcept = 0;

  /// Number of stored candidates.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Appends one candidate string; ids are assigned in append order.
  virtual void append(std::string_view value) = 0;

  /// Appends to `out` the ids of stored candidates that may be within
  /// OSA distance k of `query`, sorted ascending without duplicates.
  /// Guaranteed superset of { j : OSA(query, t_j) <= k }.
  virtual void generate(std::string_view query,
                        std::vector<std::uint32_t>& out) const = 0;
};

/// The reference generator: every stored row is a candidate.  generate()
/// emits [0, size) so the exhaustive property tests and the unified bench
/// harness can drive it through the same loop as the indexed generators;
/// tile-sweeping consumers check indexed() and never call it.
class DenseGenerator final : public CandidateGenerator {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "dense";
  }
  [[nodiscard]] bool indexed() const noexcept override { return false; }
  [[nodiscard]] std::size_t size() const noexcept override { return size_; }
  void append(std::string_view) override { ++size_; }
  void generate(std::string_view,
                std::vector<std::uint32_t>& out) const override {
    out.reserve(out.size() + size_);
    for (std::size_t j = 0; j < size_; ++j) {
      out.push_back(static_cast<std::uint32_t>(j));
    }
  }

 private:
  std::size_t size_ = 0;
};

/// Stable name for a generator kind (matches the FBF_FORCE_GENERATOR
/// spellings: "dense", "block").
[[nodiscard]] const char* generator_name(GeneratorKind kind) noexcept;

/// Parses a generator name ("dense" / "block" / "block-index").
[[nodiscard]] std::optional<GeneratorKind> generator_from_name(
    std::string_view name) noexcept;

/// Resolves the generator a consumer should use: `requested` unless the
/// FBF_FORCE_GENERATOR environment variable names a valid kind, which
/// then wins (mirroring FBF_FORCE_KERNEL; unknown values warn once on
/// stderr and fall back to `requested`).  Consumers still apply their own
/// soundness gates after this — forcing "block" where block generation
/// would change decisions (no verifier runs, unsupported k) degrades to
/// dense, never to wrong answers.
[[nodiscard]] GeneratorKind select_generator(GeneratorKind requested) noexcept;

}  // namespace fbf::core
