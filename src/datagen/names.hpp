// Census-style name pool construction.
//
// Reconstructs pools with the statistical shape of the paper's inputs:
//  * first names — 1990 Census male+female lists merged (paper: 5,163
//    names, lengths min 2 / max 11 / mean 5.96);
//  * last names  — 2000 Census list (paper: 151,670 names, lengths
//    min 2 / max 15 / mean 6.89, histogram in paper Table 13).
//
// The embedded real-name head (name_pools.hpp) is extended to the target
// pool size by a deterministic syllable generator whose length targets are
// drawn from the paper's Table 13 histogram (last names) or a matching
// discretized distribution (first names), so the generated pools hit the
// paper's length statistics — the property the FBF/DL runtimes actually
// depend on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fbf::datagen {

/// Paper Table 13: counts of Census last-name string lengths (length 2
/// through 15).  Used as sampling weights for synthetic-name lengths.
struct LengthHistogram {
  int min_length;
  std::vector<double> weights;  // weights[i] = weight of (min_length + i)
};

/// The last-name length histogram exactly as printed in paper Table 13.
[[nodiscard]] const LengthHistogram& last_name_length_histogram();

/// A first-name length histogram discretized to match the paper's reported
/// min 2 / max 11 / mean 5.96 statistics.
[[nodiscard]] const LengthHistogram& first_name_length_histogram();

/// Draws one length from a histogram.
[[nodiscard]] int sample_length(const LengthHistogram& hist,
                                fbf::util::Rng& rng);

/// Generates one pronounceable synthetic surname-like string of exactly
/// `length` characters (upper-case letters).
[[nodiscard]] std::string synthesize_name(int length, fbf::util::Rng& rng);

/// Builds a pool of `pool_size` unique first names: the embedded Census
/// head first, then synthetic names calibrated to the first-name length
/// distribution.
[[nodiscard]] std::vector<std::string> build_first_name_pool(
    std::size_t pool_size, fbf::util::Rng& rng);

/// Builds a pool of `pool_size` unique last names: the embedded Census
/// head first, then synthetic names calibrated to paper Table 13.
[[nodiscard]] std::vector<std::string> build_last_name_pool(
    std::size_t pool_size, fbf::util::Rng& rng);

/// Samples `n` distinct strings from `pool` (without replacement while the
/// pool lasts, then with replacement — mirrors the paper's "samples of
/// 5,000 were selected from each list").
[[nodiscard]] std::vector<std::string> sample_from_pool(
    const std::vector<std::string>& pool, std::size_t n, fbf::util::Rng& rng);

}  // namespace fbf::datagen
