#include "datagen/dates.hpp"

#include <cstdio>
#include <unordered_set>

#include "util/ascii.hpp"

namespace fbf::datagen {

namespace {
constexpr CivilDate kWindowStart{1912, 2, 25};
constexpr CivilDate kWindowEnd{2012, 2, 24};
}  // namespace

// Howard Hinnant's days_from_civil (public-domain algorithm).
std::int64_t days_from_civil(const CivilDate& date) noexcept {
  std::int64_t y = date.year;
  const unsigned m = static_cast<unsigned>(date.month);
  const unsigned d = static_cast<unsigned>(date.day);
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t days) noexcept {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

std::int64_t birthdate_window_days() noexcept {
  return days_from_civil(kWindowEnd) - days_from_civil(kWindowStart) + 1;
}

std::string generate_birthdate(fbf::util::Rng& rng) {
  const std::int64_t start = days_from_civil(kWindowStart);
  const std::int64_t offset =
      static_cast<std::int64_t>(rng.below(
          static_cast<std::uint64_t>(birthdate_window_days())));
  const CivilDate date = civil_from_days(start + offset);
  char buffer[9];
  std::snprintf(buffer, sizeof(buffer), "%02d%02d%04d", date.month, date.day,
                date.year);
  return buffer;
}

std::vector<std::string> generate_birthdates(std::size_t n,
                                             fbf::util::Rng& rng) {
  // Unique while possible (the window has 36,525 days), then free draws —
  // the paper's birthdate list has 35,525 rows over 36,525 unique dates.
  std::vector<std::string> out;
  out.reserve(n);
  const auto window = static_cast<std::size_t>(birthdate_window_days());
  if (n <= window) {
    std::unordered_set<std::string> seen;
    seen.reserve(n * 2);
    while (out.size() < n) {
      std::string date = generate_birthdate(rng);
      if (seen.insert(date).second) {
        out.push_back(std::move(date));
      }
    }
    return out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(generate_birthdate(rng));
  }
  return out;
}

bool is_valid_birthdate(std::string_view date) noexcept {
  if (date.size() != 8) {
    return false;
  }
  for (const char ch : date) {
    if (!fbf::util::is_ascii_digit(ch)) {
      return false;
    }
  }
  const int month = (date[0] - '0') * 10 + (date[1] - '0');
  const int day = (date[2] - '0') * 10 + (date[3] - '0');
  const int year = (date[4] - '0') * 1000 + (date[5] - '0') * 100 +
                   (date[6] - '0') * 10 + (date[7] - '0');
  if (month < 1 || month > 12 || day < 1 || day > 31) {
    return false;
  }
  const CivilDate candidate{year, month, day};
  // Round-trip check rejects impossible days (Feb 30, Apr 31, ...).
  const CivilDate normalized = civil_from_days(days_from_civil(candidate));
  if (normalized.year != year || normalized.month != month ||
      normalized.day != day) {
    return false;
  }
  const std::int64_t serial = days_from_civil(candidate);
  return serial >= days_from_civil(kWindowStart) &&
         serial <= days_from_civil(kWindowEnd);
}

}  // namespace fbf::datagen
