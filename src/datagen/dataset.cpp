#include "datagen/dataset.hpp"

#include <array>

#include "datagen/address.hpp"
#include "datagen/dates.hpp"
#include "datagen/names.hpp"
#include "datagen/phone.hpp"
#include "datagen/ssn.hpp"

namespace fbf::datagen {

const char* field_kind_name(FieldKind kind) noexcept {
  switch (kind) {
    case FieldKind::kFirstName: return "FN";
    case FieldKind::kLastName: return "LN";
    case FieldKind::kAddress: return "Ad";
    case FieldKind::kPhone: return "Ph";
    case FieldKind::kBirthDate: return "Bi";
    case FieldKind::kSsn: return "SSN";
  }
  return "?";
}

fbf::core::FieldClass field_class_of(FieldKind kind) noexcept {
  switch (kind) {
    case FieldKind::kFirstName:
    case FieldKind::kLastName:
      return fbf::core::FieldClass::kAlpha;
    case FieldKind::kAddress:
      return fbf::core::FieldClass::kAlphanumeric;
    case FieldKind::kPhone:
    case FieldKind::kBirthDate:
    case FieldKind::kSsn:
      return fbf::core::FieldClass::kNumeric;
  }
  return fbf::core::FieldClass::kAlpha;
}

Alphabet field_alphabet(FieldKind kind) noexcept {
  switch (kind) {
    case FieldKind::kFirstName:
    case FieldKind::kLastName:
      return Alphabet::kUpperAlpha;
    case FieldKind::kAddress:
      return Alphabet::kAlphanumeric;
    case FieldKind::kPhone:
    case FieldKind::kBirthDate:
    case FieldKind::kSsn:
      return Alphabet::kDigits;
  }
  return Alphabet::kUpperAlpha;
}

bool field_is_fixed_length(FieldKind kind) noexcept {
  switch (kind) {
    case FieldKind::kPhone:
    case FieldKind::kBirthDate:
    case FieldKind::kSsn:
      return true;
    default:
      return false;
  }
}

std::span<const FieldKind> all_field_kinds() noexcept {
  static constexpr std::array<FieldKind, 6> kAll = {
      FieldKind::kFirstName, FieldKind::kLastName, FieldKind::kBirthDate,
      FieldKind::kSsn,       FieldKind::kPhone,    FieldKind::kAddress};
  return kAll;
}

std::vector<std::string> generate_field(FieldKind kind, std::size_t n,
                                        fbf::util::Rng& rng) {
  switch (kind) {
    case FieldKind::kFirstName: {
      // Pool sized like the paper's merged 1990 Census FN lists (5,163).
      const std::size_t pool_size = std::max<std::size_t>(n, 5163);
      const auto pool = build_first_name_pool(pool_size, rng);
      return sample_from_pool(pool, n, rng);
    }
    case FieldKind::kLastName: {
      // The paper samples from 151,670 names; building that pool per run
      // is wasteful, so we use max(4n, head) which preserves the length
      // distribution and the collision rate of a sparse sample.
      const std::size_t pool_size = std::max<std::size_t>(4 * n, 2048);
      const auto pool = build_last_name_pool(pool_size, rng);
      return sample_from_pool(pool, n, rng);
    }
    case FieldKind::kAddress:
      return generate_addresses(n, rng);
    case FieldKind::kPhone:
      return generate_phones(n, rng);
    case FieldKind::kBirthDate:
      return generate_birthdates(n, rng);
    case FieldKind::kSsn:
      return generate_ssns(n, rng);
  }
  return {};
}

fbf::util::Result<PairedDataset> build_paired_dataset(FieldKind kind,
                                                      std::size_t n,
                                                      std::uint64_t seed,
                                                      int edits) {
  if (n == 0) {
    return fbf::util::Status::invalid_argument(
        "build_paired_dataset: n must be positive");
  }
  if (edits < 1) {
    return fbf::util::Status::invalid_argument(
        "build_paired_dataset: edits must be >= 1");
  }
  fbf::util::Rng rng(seed ^ fbf::util::fnv1a64(field_kind_name(kind)));
  PairedDataset dataset;
  dataset.kind = kind;
  dataset.clean = generate_field(kind, n, rng);
  const Alphabet alphabet = field_alphabet(kind);
  dataset.error.reserve(n);
  for (const std::string& s : dataset.clean) {
    dataset.error.push_back(inject_edits(s, edits, alphabet, rng));
  }
  return dataset;
}

}  // namespace fbf::datagen
