// Embedded cores of real high-frequency US name lists.
//
// The paper samples from the 1990 Census first-name files (5,163 names)
// and the 2000 Census last-name file (151,670 names), which are not
// available offline.  We embed the high-frequency head of those lists —
// the part that dominates any random sample — and synthesize the long tail
// with a syllable generator calibrated to the paper's reported length
// statistics (see names.hpp).  DESIGN.md §2 documents this substitution.
#pragma once

#include <span>
#include <string_view>

namespace fbf::datagen {

/// Top male first names (1990 Census order, upper-case).
[[nodiscard]] std::span<const std::string_view> male_first_names() noexcept;

/// Top female first names (1990 Census order, upper-case).
[[nodiscard]] std::span<const std::string_view> female_first_names() noexcept;

/// Top last names (2000 Census order, upper-case).
[[nodiscard]] std::span<const std::string_view> last_names() noexcept;

/// Base street names for the address generator (common US street names).
[[nodiscard]] std::span<const std::string_view> street_names() noexcept;

/// Street suffixes (USPS abbreviations).
[[nodiscard]] std::span<const std::string_view> street_suffixes() noexcept;

}  // namespace fbf::datagen
