#include "datagen/address.hpp"

#include <unordered_set>

#include "datagen/name_pools.hpp"

namespace fbf::datagen {

namespace {
constexpr std::string_view kDirections[] = {"", "", "", "N", "S", "E", "W"};
}

std::string generate_address(fbf::util::Rng& rng) {
  for (;;) {
    std::string address = std::to_string(rng.range(1, 9999));
    const std::string_view dir =
        kDirections[static_cast<std::size_t>(rng.below(std::size(kDirections)))];
    if (!dir.empty()) {
      address += ' ';
      address += dir;
    }
    const auto streets = street_names();
    const auto suffixes = street_suffixes();
    address += ' ';
    address += streets[static_cast<std::size_t>(rng.below(streets.size()))];
    address += ' ';
    address += suffixes[static_cast<std::size_t>(rng.below(suffixes.size()))];
    if (address.size() <= kMaxAddressLength) {
      return address;
    }
    // Rare: a long street name + direction overflowed; redraw.
  }
}

std::vector<std::string> generate_addresses(std::size_t n,
                                            fbf::util::Rng& rng) {
  std::vector<std::string> out;
  out.reserve(n);
  std::unordered_set<std::string> seen;
  seen.reserve(n * 2);
  while (out.size() < n) {
    std::string address = generate_address(rng);
    if (seen.insert(address).second) {
      out.push_back(std::move(address));
    }
  }
  return out;
}

}  // namespace fbf::datagen
