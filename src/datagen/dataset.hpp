// Paired clean/error dataset construction — the paper's experiment inputs.
//
// One call produces the two lists the string experiments join: a clean
// sample from the field's pool/generator and an error copy with one random
// single edit injected per entry, index-aligned so clean[i] <-> error[i]
// is the ground truth (paper §5).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/signature.hpp"
#include "datagen/errors.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace fbf::datagen {

/// The six demographic fields of the paper's evaluation.
enum class FieldKind {
  kFirstName,  ///< FN — Census first names
  kLastName,   ///< LN — Census last names
  kAddress,    ///< Ad — standardized street addresses
  kPhone,      ///< Ph — NANP phone numbers
  kBirthDate,  ///< Bi — MMDDYYYY birthdates
  kSsn,        ///< SSN — Social Security Numbers
};

/// Paper abbreviation ("FN", "LN", "Ad", "Ph", "Bi", "SSN").
[[nodiscard]] const char* field_kind_name(FieldKind kind) noexcept;

/// Signature layout for the field (alpha / numeric / alphanumeric).
[[nodiscard]] fbf::core::FieldClass field_class_of(FieldKind kind) noexcept;

/// Error-injection alphabet for the field.
[[nodiscard]] Alphabet field_alphabet(FieldKind kind) noexcept;

/// True for fixed-length fields, where the length filter is useless
/// (paper §2.5): phone, SSN, birthdate.
[[nodiscard]] bool field_is_fixed_length(FieldKind kind) noexcept;

/// All six fields in the paper's Table 5 order (FN, LN, Bi, SSN, Ph, Ad —
/// shortest to longest average string).
[[nodiscard]] std::span<const FieldKind> all_field_kinds() noexcept;

/// Generates `n` clean strings of the field (unique within the list).
[[nodiscard]] std::vector<std::string> generate_field(FieldKind kind,
                                                      std::size_t n,
                                                      fbf::util::Rng& rng);

/// The paired clean/error lists used by every string experiment.
struct PairedDataset {
  FieldKind kind;
  std::vector<std::string> clean;
  std::vector<std::string> error;  ///< error[i] = clean[i] + 1 random edit

  [[nodiscard]] std::size_t size() const noexcept { return clean.size(); }
};

/// Builds a paired dataset of `n` entries for `kind`, deterministically
/// from `seed`.  `edits` > 1 injects multiple edits per entry (extension;
/// the paper uses 1).  Invalid shapes — an empty dataset or a
/// non-positive edit count — come back as invalid_argument instead of
/// throwing (the loaders finished their Result<T> migration; see
/// ROADMAP).
[[nodiscard]] fbf::util::Result<PairedDataset> build_paired_dataset(
    FieldKind kind, std::size_t n, std::uint64_t seed, int edits = 1);

}  // namespace fbf::datagen
