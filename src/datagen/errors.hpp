// Data-entry error injection (paper §5: "Each entry in the initial or
// 'clean' data sets were injected with single edit errors to produce a
// second 'error' data set ... where the clean entries match the error
// entries by index position in each list to maintain a ground truth").
//
// The four Damerau edit operations — substitution, insertion, deletion and
// transposition — cover ~80% of real data-entry errors (Damerau 1964, the
// paper's [17]).  Injection draws characters from the field's alphabet so
// errors look like real mis-keys (a digit field never gains a letter).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace fbf::datagen {

/// The four single-edit operations of the Damerau model.
enum class EditKind {
  kSubstitution,
  kInsertion,
  kDeletion,
  kTransposition,
};

[[nodiscard]] const char* edit_kind_name(EditKind kind) noexcept;

/// Character class used to pick replacement / inserted characters.
enum class Alphabet {
  kUpperAlpha,    ///< A–Z (names)
  kDigits,        ///< 0–9 (SSN, phone, birthdate)
  kAlphanumeric,  ///< A–Z plus 0–9 (addresses)
};

/// Draws one random character from `alphabet`.
[[nodiscard]] char random_char(Alphabet alphabet, fbf::util::Rng& rng);

/// Applies one edit of the given kind.  Guarantees the result differs from
/// the input (substitution picks a different character; transposition
/// swaps a position with unequal neighbours when one exists).  Edits that
/// cannot apply (deletion on a 1-char string, transposition on an
/// all-equal string) fall back to substitution.
[[nodiscard]] std::string apply_edit(std::string_view s, EditKind kind,
                                     Alphabet alphabet, fbf::util::Rng& rng);

/// Applies one uniformly random single edit (the paper's protocol).
[[nodiscard]] std::string inject_single_edit(std::string_view s,
                                             Alphabet alphabet,
                                             fbf::util::Rng& rng);

/// Applies `edits` successive random single edits (multi-error extension;
/// the paper injects exactly one).
[[nodiscard]] std::string inject_edits(std::string_view s, int edits,
                                       Alphabet alphabet, fbf::util::Rng& rng);

/// Copies `clean` and injects one random single edit into every entry.
[[nodiscard]] std::vector<std::string> make_error_copy(
    const std::vector<std::string>& clean, Alphabet alphabet,
    fbf::util::Rng& rng);

}  // namespace fbf::datagen
