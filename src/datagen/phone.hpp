// NANP phone-number generator (paper: "synthetically generated based on
// the numbering scheme of the North American Numbering Plan").
//
// 10-digit strings NPA-NXX-XXXX with the NANP constraints:
//  * NPA (area code): [2-9][0-8][0-9] — first digit not 0/1, middle digit
//    not 9 (9 as the middle digit is reserved for expansion);
//  * NXX (central office): [2-9][0-9][0-9], excluding N11 service codes;
//  * line number: any 4 digits.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fbf::datagen {

/// One random NANP-valid 10-digit phone number (digits only, no
/// punctuation — the paper's fixed-length 10-character format).
[[nodiscard]] std::string generate_phone(fbf::util::Rng& rng);

/// `n` unique phone numbers.
[[nodiscard]] std::vector<std::string> generate_phones(std::size_t n,
                                                       fbf::util::Rng& rng);

/// Validates the NANP constraints above (used in tests and input checks).
[[nodiscard]] bool is_valid_nanp(std::string_view phone) noexcept;

}  // namespace fbf::datagen
