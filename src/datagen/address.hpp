// Street-address generator (substitute for the paper's 547,771 local
// tax-record addresses; 3,874 unique streets, max length 25).
//
// Produces standardized upper-case "NUMBER STREET SUFFIX" strings, e.g.
// "1801 N BROAD ST".  Addresses exercise the alphanumeric signature path
// (alpha words + numeric word) and the longest strings in the suite —
// which is where the paper reports FBF's largest speedups (Table 4).
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fbf::datagen {

/// Maximum generated address length; matches the paper's reported maximum
/// for its standardized local addresses.
inline constexpr std::size_t kMaxAddressLength = 25;

/// One random address.  Uniform street number in [1, 9999], optional
/// directional prefix, street name + USPS suffix from the embedded pools.
/// Always <= kMaxAddressLength characters.
[[nodiscard]] std::string generate_address(fbf::util::Rng& rng);

/// `n` unique addresses.
[[nodiscard]] std::vector<std::string> generate_addresses(std::size_t n,
                                                          fbf::util::Rng& rng);

}  // namespace fbf::datagen
