#include "datagen/names.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "datagen/name_pools.hpp"

namespace fbf::datagen {

namespace {

// Syllable inventory tuned for surname-like output.  Onsets and codas are
// weighted implicitly by duplication of the common ones.
constexpr std::string_view kOnsets[] = {
    "B",  "C",  "D",  "F",  "G",  "H",  "J",  "K",  "L",  "M",  "N",
    "P",  "R",  "S",  "T",  "V",  "W",  "BR", "CH", "CL", "CR", "DR",
    "FL", "FR", "GR", "KR", "PH", "PR", "SC", "SH", "SL", "SM", "SN",
    "SP", "ST", "TH", "TR", "WH", "B",  "D",  "H",  "K",  "L",  "M",
    "R",  "S",  "T",  "W"};
constexpr std::string_view kVowels[] = {"A",  "E",  "I",  "O",  "U",  "A",
                                        "E",  "O",  "AI", "EA", "EE", "IE",
                                        "OO", "OU", "EI", "AU"};
constexpr std::string_view kCodas[] = {
    "",    "",    "N",   "R",   "S",    "T",    "L",   "M",  "D",
    "CK",  "NG",  "NS",  "RD",  "RT",   "SON",  "TON", "ER", "MAN",
    "LEY", "FORD", "WELL", "WOOD", "BERG", "STEIN", "NER", "SEN"};

std::string_view pick(std::span<const std::string_view> items,
                      fbf::util::Rng& rng) {
  return items[static_cast<std::size_t>(rng.below(items.size()))];
}

/// Extends `pool` with unique synthetic names until it reaches
/// `pool_size`, drawing lengths from `hist`.
void extend_pool(std::vector<std::string>& pool, std::size_t pool_size,
                 const LengthHistogram& hist, fbf::util::Rng& rng) {
  std::unordered_set<std::string> seen(pool.begin(), pool.end());
  while (pool.size() < pool_size) {
    const int length = sample_length(hist, rng);
    std::string candidate = synthesize_name(length, rng);
    if (seen.insert(candidate).second) {
      pool.push_back(std::move(candidate));
    }
  }
}

}  // namespace

const LengthHistogram& last_name_length_histogram() {
  // Paper Table 13, lengths 2..15.
  static const LengthHistogram hist{
      2,
      {175, 1585, 8768, 23238, 34025, 33256, 23380, 14424, 7772, 3215, 1190,
       442, 177, 23}};
  return hist;
}

const LengthHistogram& first_name_length_histogram() {
  // Discretized to the paper's FN stats: min 2, max 11, mean 5.96.
  // Unimodal around 6, same family of shape as the LN histogram.
  static const LengthHistogram hist{
      2, {60, 900, 6500, 17000, 24000, 21000, 12000, 5200, 1700, 340}};
  return hist;
}

int sample_length(const LengthHistogram& hist, fbf::util::Rng& rng) {
  return hist.min_length + static_cast<int>(rng.pick_weighted(hist.weights));
}

std::string synthesize_name(int length, fbf::util::Rng& rng) {
  assert(length >= 1);
  const auto target = static_cast<std::size_t>(length);
  std::string name;
  name.reserve(target + 4);
  // Build onset+vowel(+coda) syllables until we can trim to the target.
  while (name.size() < target) {
    name += pick(kOnsets, rng);
    name += pick(kVowels, rng);
    if (rng.chance(0.45)) {
      name += pick(kCodas, rng);
    }
  }
  name.resize(target);
  // A trimmed name can end awkwardly mid-digraph; that is fine for our
  // purposes (real Census tails contain plenty of irregular spellings).
  return name;
}

std::vector<std::string> build_first_name_pool(std::size_t pool_size,
                                               fbf::util::Rng& rng) {
  std::vector<std::string> pool;
  pool.reserve(pool_size);
  std::unordered_set<std::string_view> dedupe;
  for (const auto list : {male_first_names(), female_first_names()}) {
    for (const std::string_view name : list) {
      if (pool.size() >= pool_size) {
        break;
      }
      if (dedupe.insert(name).second) {
        pool.emplace_back(name);
      }
    }
  }
  extend_pool(pool, pool_size, first_name_length_histogram(), rng);
  return pool;
}

std::vector<std::string> build_last_name_pool(std::size_t pool_size,
                                              fbf::util::Rng& rng) {
  std::vector<std::string> pool;
  pool.reserve(pool_size);
  const auto head = last_names();
  for (std::size_t i = 0; i < head.size() && pool.size() < pool_size; ++i) {
    pool.emplace_back(head[i]);
  }
  extend_pool(pool, pool_size, last_name_length_histogram(), rng);
  return pool;
}

std::vector<std::string> sample_from_pool(const std::vector<std::string>& pool,
                                          std::size_t n,
                                          fbf::util::Rng& rng) {
  assert(!pool.empty());
  std::vector<std::string> sample;
  sample.reserve(n);
  if (n <= pool.size()) {
    // Partial Fisher–Yates over an index vector: uniform without
    // replacement.
    std::vector<std::uint32_t> indices(pool.size());
    for (std::uint32_t i = 0; i < indices.size(); ++i) {
      indices[i] = i;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(indices.size() - i));
      std::swap(indices[i], indices[j]);
      sample.push_back(pool[indices[i]]);
    }
    return sample;
  }
  for (std::size_t i = 0; i < n; ++i) {
    sample.push_back(pool[static_cast<std::size_t>(rng.below(pool.size()))]);
  }
  return sample;
}

}  // namespace fbf::datagen
