// Birthdate generator (paper: "randomly selected over 100 years between
// 2/25/1912 and 2/24/2012 or 36,525 unique dates", fixed length 8).
//
// Dates are formatted MMDDYYYY (8 digits, the paper's fixed-length
// birthdate field).  Calendar arithmetic uses the days-from-civil /
// civil-from-days algorithms (proleptic Gregorian), so every one of the
// 36,525 days in the window is reachable and valid.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace fbf::datagen {

/// A civil calendar date.
struct CivilDate {
  int year;
  int month;  // 1..12
  int day;    // 1..31
};

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
[[nodiscard]] std::int64_t days_from_civil(const CivilDate& date) noexcept;

/// Inverse of days_from_civil.
[[nodiscard]] CivilDate civil_from_days(std::int64_t days) noexcept;

/// Number of days in the paper's window [1912-02-25, 2012-02-24]: 36,525.
[[nodiscard]] std::int64_t birthdate_window_days() noexcept;

/// One random birthdate in the window, formatted MMDDYYYY.
[[nodiscard]] std::string generate_birthdate(fbf::util::Rng& rng);

/// `n` random birthdates (duplicates allowed once n exceeds the window,
/// matching the paper's 35,525-row dataset over 36,525 possible dates).
[[nodiscard]] std::vector<std::string> generate_birthdates(
    std::size_t n, fbf::util::Rng& rng);

/// Validates an MMDDYYYY string as a real calendar date in the window.
[[nodiscard]] bool is_valid_birthdate(std::string_view date) noexcept;

}  // namespace fbf::datagen
