#include "datagen/errors.hpp"

#include <cassert>

namespace fbf::datagen {

const char* edit_kind_name(EditKind kind) noexcept {
  switch (kind) {
    case EditKind::kSubstitution: return "substitution";
    case EditKind::kInsertion: return "insertion";
    case EditKind::kDeletion: return "deletion";
    case EditKind::kTransposition: return "transposition";
  }
  return "?";
}

char random_char(Alphabet alphabet, fbf::util::Rng& rng) {
  switch (alphabet) {
    case Alphabet::kUpperAlpha:
      return static_cast<char>('A' + rng.below(26));
    case Alphabet::kDigits:
      return static_cast<char>('0' + rng.below(10));
    case Alphabet::kAlphanumeric: {
      const std::uint64_t r = rng.below(36);
      return r < 26 ? static_cast<char>('A' + r)
                    : static_cast<char>('0' + (r - 26));
    }
  }
  return 'A';
}

namespace {

std::string substitute(std::string_view s, Alphabet alphabet,
                       fbf::util::Rng& rng) {
  assert(!s.empty());
  std::string out(s);
  const auto pos = static_cast<std::size_t>(rng.below(out.size()));
  char replacement = random_char(alphabet, rng);
  while (replacement == out[pos]) {
    replacement = random_char(alphabet, rng);
  }
  out[pos] = replacement;
  return out;
}

std::string insert(std::string_view s, Alphabet alphabet,
                   fbf::util::Rng& rng) {
  std::string out(s);
  const auto pos = static_cast<std::size_t>(rng.below(out.size() + 1));
  out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
             random_char(alphabet, rng));
  return out;
}

std::string erase(std::string_view s, fbf::util::Rng& rng) {
  assert(s.size() >= 2);
  std::string out(s);
  const auto pos = static_cast<std::size_t>(rng.below(out.size()));
  out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
  return out;
}

/// Swaps two adjacent unequal characters; returns empty when no unequal
/// adjacent pair exists (caller falls back to substitution).
std::string transpose(std::string_view s, fbf::util::Rng& rng) {
  if (s.size() < 2) {
    return {};
  }
  // Collect candidate positions so the choice is uniform over real swaps.
  std::vector<std::size_t> candidates;
  candidates.reserve(s.size());
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    if (s[i] != s[i + 1]) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return {};
  }
  std::string out(s);
  const std::size_t pos =
      candidates[static_cast<std::size_t>(rng.below(candidates.size()))];
  std::swap(out[pos], out[pos + 1]);
  return out;
}

}  // namespace

std::string apply_edit(std::string_view s, EditKind kind, Alphabet alphabet,
                       fbf::util::Rng& rng) {
  assert(!s.empty());
  switch (kind) {
    case EditKind::kSubstitution:
      return substitute(s, alphabet, rng);
    case EditKind::kInsertion:
      return insert(s, alphabet, rng);
    case EditKind::kDeletion:
      if (s.size() < 2) {
        break;  // deleting the only character would empty the field
      }
      return erase(s, rng);
    case EditKind::kTransposition: {
      std::string swapped = transpose(s, rng);
      if (!swapped.empty()) {
        return swapped;
      }
      break;
    }
  }
  return substitute(s, alphabet, rng);
}

std::string inject_single_edit(std::string_view s, Alphabet alphabet,
                               fbf::util::Rng& rng) {
  const auto kind = static_cast<EditKind>(rng.below(4));
  return apply_edit(s, kind, alphabet, rng);
}

std::string inject_edits(std::string_view s, int edits, Alphabet alphabet,
                         fbf::util::Rng& rng) {
  std::string out(s);
  for (int i = 0; i < edits; ++i) {
    out = inject_single_edit(out, alphabet, rng);
  }
  return out;
}

std::vector<std::string> make_error_copy(const std::vector<std::string>& clean,
                                         Alphabet alphabet,
                                         fbf::util::Rng& rng) {
  std::vector<std::string> error;
  error.reserve(clean.size());
  for (const std::string& s : clean) {
    error.push_back(inject_single_edit(s, alphabet, rng));
  }
  return error;
}

}  // namespace fbf::datagen
