#include "datagen/phone.hpp"

#include <unordered_set>

#include "util/ascii.hpp"

namespace fbf::datagen {

std::string generate_phone(fbf::util::Rng& rng) {
  std::string phone;
  phone.reserve(10);
  // NPA: [2-9][0-8][0-9]
  phone.push_back(static_cast<char>('0' + rng.range(2, 9)));
  phone.push_back(static_cast<char>('0' + rng.range(0, 8)));
  phone.push_back(static_cast<char>('0' + rng.range(0, 9)));
  // NXX: [2-9][0-9][0-9] excluding N11
  for (;;) {
    const auto d1 = rng.range(2, 9);
    const auto d2 = rng.range(0, 9);
    const auto d3 = rng.range(0, 9);
    if (d2 == 1 && d3 == 1) {
      continue;  // N11 service code
    }
    phone.push_back(static_cast<char>('0' + d1));
    phone.push_back(static_cast<char>('0' + d2));
    phone.push_back(static_cast<char>('0' + d3));
    break;
  }
  // Line number: any 4 digits.
  for (int i = 0; i < 4; ++i) {
    phone.push_back(static_cast<char>('0' + rng.range(0, 9)));
  }
  return phone;
}

std::vector<std::string> generate_phones(std::size_t n, fbf::util::Rng& rng) {
  std::vector<std::string> out;
  out.reserve(n);
  std::unordered_set<std::string> seen;
  seen.reserve(n * 2);
  while (out.size() < n) {
    std::string phone = generate_phone(rng);
    if (seen.insert(phone).second) {
      out.push_back(std::move(phone));
    }
  }
  return out;
}

bool is_valid_nanp(std::string_view phone) noexcept {
  if (phone.size() != 10) {
    return false;
  }
  for (const char ch : phone) {
    if (!fbf::util::is_ascii_digit(ch)) {
      return false;
    }
  }
  if (phone[0] < '2') {
    return false;  // NPA first digit
  }
  if (phone[1] == '9') {
    return false;  // NPA middle digit
  }
  if (phone[3] < '2') {
    return false;  // NXX first digit
  }
  if (phone[4] == '1' && phone[5] == '1') {
    return false;  // N11
  }
  return true;
}

}  // namespace fbf::datagen
