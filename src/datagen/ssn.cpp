#include "datagen/ssn.hpp"

#include <cstdio>
#include <unordered_set>

#include "util/ascii.hpp"

namespace fbf::datagen {

std::string generate_ssn(fbf::util::Rng& rng) {
  long area = 666;
  while (area == 666) {
    area = rng.range(1, 772);
  }
  const long group = rng.range(1, 99);
  const long serial = rng.range(1, 9999);
  char buffer[10];
  std::snprintf(buffer, sizeof(buffer), "%03ld%02ld%04ld", area, group,
                serial);
  return buffer;
}

std::vector<std::string> generate_ssns(std::size_t n, fbf::util::Rng& rng) {
  std::vector<std::string> out;
  out.reserve(n);
  std::unordered_set<std::string> seen;
  seen.reserve(n * 2);
  while (out.size() < n) {
    std::string ssn = generate_ssn(rng);
    if (seen.insert(ssn).second) {
      out.push_back(std::move(ssn));
    }
  }
  return out;
}

bool is_valid_ssn(std::string_view ssn) noexcept {
  if (ssn.size() != 9) {
    return false;
  }
  for (const char ch : ssn) {
    if (!fbf::util::is_ascii_digit(ch)) {
      return false;
    }
  }
  const int area = (ssn[0] - '0') * 100 + (ssn[1] - '0') * 10 + (ssn[2] - '0');
  const int group = (ssn[3] - '0') * 10 + (ssn[4] - '0');
  const int serial = (ssn[5] - '0') * 1000 + (ssn[6] - '0') * 100 +
                     (ssn[7] - '0') * 10 + (ssn[8] - '0');
  if (area == 0 || area == 666 || area > 772) {
    return false;
  }
  if (group == 0) {
    return false;
  }
  if (serial == 0) {
    return false;
  }
  return true;
}

}  // namespace fbf::datagen
