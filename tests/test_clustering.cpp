#include "linkage/clustering.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/match_join.hpp"
#include "datagen/dataset.hpp"
#include "util/rng.hpp"

namespace {

namespace lk = fbf::linkage;
using Pair = std::pair<std::uint32_t, std::uint32_t>;

TEST(UnionFind, StartsFullyDisjoint) {
  lk::UnionFind forest(5);
  EXPECT_EQ(forest.set_count(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(forest.find(i), i);
  }
}

TEST(UnionFind, UniteMergesAndCounts) {
  lk::UnionFind forest(4);
  EXPECT_TRUE(forest.unite(0, 1));
  EXPECT_FALSE(forest.unite(1, 0));  // already together
  EXPECT_TRUE(forest.unite(2, 3));
  EXPECT_EQ(forest.set_count(), 2u);
  EXPECT_TRUE(forest.unite(0, 3));
  EXPECT_EQ(forest.set_count(), 1u);
  EXPECT_EQ(forest.find(1), forest.find(2));
}

TEST(UnionFind, TransitiveChains) {
  lk::UnionFind forest(100);
  for (std::uint32_t i = 0; i + 1 < 100; ++i) {
    forest.unite(i, i + 1);
  }
  EXPECT_EQ(forest.set_count(), 1u);
  EXPECT_EQ(forest.find(0), forest.find(99));
}

TEST(Clustering, SingletonsWithoutMatches) {
  const auto clustering = lk::cluster_matches(4, {});
  EXPECT_EQ(clustering.cluster_count, 4u);
  // Dense distinct ids.
  std::set<std::uint32_t> ids(clustering.cluster_of.begin(),
                              clustering.cluster_of.end());
  EXPECT_EQ(ids.size(), 4u);
}

TEST(Clustering, TransitiveClosure) {
  // 0-1, 1-2 chain plus isolated 3: two clusters.
  const std::vector<Pair> pairs = {{0, 1}, {1, 2}};
  const auto clustering = lk::cluster_matches(4, pairs);
  EXPECT_EQ(clustering.cluster_count, 2u);
  EXPECT_EQ(clustering.cluster_of[0], clustering.cluster_of[1]);
  EXPECT_EQ(clustering.cluster_of[1], clustering.cluster_of[2]);
  EXPECT_NE(clustering.cluster_of[3], clustering.cluster_of[0]);
}

TEST(Clustering, SelfPairsAndDuplicatesIgnored) {
  const std::vector<Pair> pairs = {{0, 0}, {1, 2}, {2, 1}, {1, 2}};
  const auto clustering = lk::cluster_matches(3, pairs);
  EXPECT_EQ(clustering.cluster_count, 2u);
}

TEST(Clustering, GroupsPartitionTheItems) {
  const std::vector<Pair> pairs = {{0, 4}, {1, 3}};
  const auto clustering = lk::cluster_matches(5, pairs);
  const auto groups = clustering.groups();
  EXPECT_EQ(groups.size(), clustering.cluster_count);
  std::size_t total = 0;
  for (const auto& group : groups) {
    total += group.size();
  }
  EXPECT_EQ(total, 5u);
}

TEST(Evaluate, PerfectClustering) {
  lk::Clustering clustering;
  clustering.cluster_of = {0, 0, 1, 1};
  clustering.cluster_count = 2;
  const std::vector<std::uint64_t> truth = {7, 7, 9, 9};
  const auto quality = lk::evaluate_clustering(clustering, truth);
  EXPECT_EQ(quality.true_positive_pairs, 2u);
  EXPECT_DOUBLE_EQ(quality.precision(), 1.0);
  EXPECT_DOUBLE_EQ(quality.recall(), 1.0);
  EXPECT_DOUBLE_EQ(quality.f1(), 1.0);
}

TEST(Evaluate, OverMerged) {
  lk::Clustering clustering;
  clustering.cluster_of = {0, 0, 0, 0};  // one big blob
  clustering.cluster_count = 1;
  const std::vector<std::uint64_t> truth = {1, 1, 2, 2};
  const auto quality = lk::evaluate_clustering(clustering, truth);
  EXPECT_EQ(quality.predicted_pairs, 6u);
  EXPECT_EQ(quality.actual_pairs, 2u);
  EXPECT_EQ(quality.true_positive_pairs, 2u);
  EXPECT_DOUBLE_EQ(quality.recall(), 1.0);
  EXPECT_NEAR(quality.precision(), 2.0 / 6.0, 1e-12);
}

TEST(Evaluate, UnderMerged) {
  lk::Clustering clustering;
  clustering.cluster_of = {0, 1, 2, 3};  // all singletons
  clustering.cluster_count = 4;
  const std::vector<std::uint64_t> truth = {1, 1, 1, 1};
  const auto quality = lk::evaluate_clustering(clustering, truth);
  EXPECT_EQ(quality.predicted_pairs, 0u);
  EXPECT_DOUBLE_EQ(quality.recall(), 0.0);
  EXPECT_DOUBLE_EQ(quality.f1(), 0.0);
}

TEST(Clustering, EndToEndDeduplication) {
  // Self-join a list where each string appears twice (clean + one-edit
  // copy interleaved); clustering the FPDL matches should recover the
  // duplicate structure with near-perfect pairwise quality.
  const auto dataset =
      fbf::datagen::build_paired_dataset(fbf::datagen::FieldKind::kSsn, 150,
                                         5).value();
  std::vector<std::string> list;
  std::vector<std::uint64_t> truth;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    list.push_back(dataset.clean[i]);
    truth.push_back(i);
    list.push_back(dataset.error[i]);
    truth.push_back(i);
  }
  fbf::core::JoinConfig join;
  join.method = fbf::core::Method::kFpdl;
  join.k = 1;
  join.field_class = fbf::core::FieldClass::kNumeric;
  join.collect_matches = true;
  const auto stats = fbf::core::match_strings(list, list, join);
  const auto clustering = lk::cluster_matches(list.size(), stats.match_pairs);
  const auto quality = lk::evaluate_clustering(clustering, truth);
  EXPECT_DOUBLE_EQ(quality.recall(), 1.0);  // no false negatives, ever
  EXPECT_GT(quality.precision(), 0.95);     // SSNs rarely collide at k=1
  EXPECT_LE(clustering.cluster_count, 150u);
}

}  // namespace
