// Durability property tests for the manifest/delta checkpoint chain and
// the group-commit journal, run against MemObjectBackend (the reference
// backend: byte surgery via poke(), kill -9 via abandoned handles).
//
// The core property (acceptance): for a kill at ANY byte of the
// manifest, a delta segment or the journal, recovery either rebuilds a
// state with entity ids byte-identical to an uninterrupted run over the
// surviving prefix (journal cuts), or detects the damage outright
// (manifest/base/delta cuts) — never a silently wrong store.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "linkage/person_gen.hpp"
#include "linkage/snapshot.hpp"
#include "storage/mem_object.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace {

namespace lk = fbf::linkage;
namespace st = fbf::storage;
namespace u = fbf::util;
using fbf::util::Rng;

lk::ComparatorConfig fpdl_config() {
  return lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
}

std::vector<std::vector<lk::PersonRecord>> make_batches(
    std::vector<std::size_t> sizes, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<lk::PersonRecord>> batches;
  batches.reserve(sizes.size());
  std::uint64_t next_id = 0;
  for (const std::size_t size : sizes) {
    auto batch = lk::generate_people(size, rng);
    for (auto& r : batch) {
      r.id = next_id++;
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void expect_stores_equal(const lk::EntityStore& a, const lk::EntityStore& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.entity_count(), b.entity_count());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entity_ids()[i], b.entity_ids()[i]) << "record " << i;
    EXPECT_EQ(a.records()[i].id, b.records()[i].id) << "record " << i;
  }
}

/// The uninterrupted reference: first `n` batches through a plain store.
lk::EntityStore reference_store(
    const std::vector<std::vector<lk::PersonRecord>>& batches, std::size_t n) {
  lk::EntityStore store(fpdl_config());
  for (std::size_t b = 0; b < n; ++b) {
    store.ingest(batches[b]);
  }
  return store;
}

/// Every blob in `backend`, by name — the pristine pre-crash state that
/// each surgical trial starts from.
std::map<std::string, std::string> dump(st::MemObjectBackend& backend) {
  std::map<std::string, std::string> objects;
  const auto refs = backend.list("").value();
  for (const auto& ref : refs) {
    objects[ref.name] = backend.get(ref).value();
  }
  return objects;
}

std::shared_ptr<st::MemObjectBackend> restore_backend(
    const std::map<std::string, std::string>& objects) {
  auto backend = std::make_shared<st::MemObjectBackend>();
  for (const auto& [name, bytes] : objects) {
    backend->poke(st::BlobRef{name}, bytes);
  }
  return backend;
}

// --- incremental checkpoints ------------------------------------------

TEST(DeltaCheckpoints, CheckpointCostIsTheDeltaNotTheStore) {
  // Two big founding batches, then small ones: after the base, each
  // checkpoint must write only the records added since the last one.
  const auto batches = make_batches({20, 20, 3, 3, 3, 3}, 1);
  auto backend = std::make_shared<st::MemObjectBackend>();
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 2;
  policy.compact_every = 8;
  lk::DurableEntityStore durable(fpdl_config(), backend, policy);
  for (const auto& batch : batches) {
    ASSERT_TRUE(durable.ingest(batch).ok());
  }
  EXPECT_EQ(durable.stats().checkpoints, 3u);
  EXPECT_EQ(durable.stats().deltas_written, 2u);  // base, then two deltas
  EXPECT_EQ(durable.stats().compactions, 0u);
  ASSERT_EQ(durable.manifest().deltas.size(), 2u);
  EXPECT_EQ(durable.manifest().base_records, 40u);

  const auto base_size =
      backend->get(st::BlobRef{durable.manifest().base_blob})->size();
  for (const auto& seg : durable.manifest().deltas) {
    const auto delta_size = backend->get(st::BlobRef{seg.blob})->size();
    EXPECT_LT(delta_size * 4, base_size)
        << seg.blob << " should be a fraction of the base";
  }

  lk::DurableEntityStore recovered(fpdl_config(), backend, policy);
  const auto report = recovered.recover();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report->deltas_applied, 2u);
  expect_stores_equal(reference_store(batches, batches.size()),
                      recovered.store());
}

TEST(DeltaCheckpoints, CountTriggeredCompactionFoldsDeltasIntoANewBase) {
  const auto batches = make_batches({20, 20, 2, 2, 2, 2, 2, 2}, 2);
  auto backend = std::make_shared<st::MemObjectBackend>();
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 1;
  policy.compact_every = 2;
  lk::DurableEntityStore durable(fpdl_config(), backend, policy);
  for (const auto& batch : batches) {
    ASSERT_TRUE(durable.ingest(batch).ok());
  }
  EXPECT_GT(durable.stats().compactions, 0u);
  // Compaction sweeps the folded base and deltas: only the chain the
  // manifest references (plus MANIFEST and journal) remains.
  EXPECT_LE(backend->object_count(),
            2 + 1 + durable.manifest().deltas.size());

  lk::DurableEntityStore recovered(fpdl_config(), backend, policy);
  ASSERT_TRUE(recovered.recover().ok());
  expect_stores_equal(reference_store(batches, batches.size()),
                      recovered.store());
}

TEST(DeltaCheckpoints, SizeTriggeredCompactionKeepsRecoveryReadsBounded) {
  // A small base then big deltas: when the deltas out-weigh the base,
  // the next checkpoint must fold even though compact_every is far away.
  const auto batches = make_batches({4, 8}, 3);
  auto backend = std::make_shared<st::MemObjectBackend>();
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 1;
  policy.compact_every = 100;
  lk::DurableEntityStore durable(fpdl_config(), backend, policy);
  for (const auto& batch : batches) {
    ASSERT_TRUE(durable.ingest(batch).ok());
  }
  EXPECT_GT(durable.stats().compactions, 0u);
  EXPECT_TRUE(durable.manifest().deltas.empty());
  EXPECT_EQ(durable.manifest().base_records, 12u);

  lk::DurableEntityStore recovered(fpdl_config(), backend, policy);
  ASSERT_TRUE(recovered.recover().ok());
  expect_stores_equal(reference_store(batches, batches.size()),
                      recovered.store());
}

// --- kill-at-every-byte ------------------------------------------------

/// Builds the standard crash scenario: 5 batches, checkpoint at batch 3
/// (base-3.snap), frames 3 and 4 in the journal.
struct JournalScenario {
  std::vector<std::vector<lk::PersonRecord>> batches;
  std::map<std::string, std::string> objects;
  lk::DurabilityPolicy policy;
};

JournalScenario build_journal_scenario() {
  JournalScenario s;
  s.batches = make_batches({6, 6, 6, 6, 6}, 4);
  s.policy.checkpoint_every = 3;
  s.policy.compact_every = 8;
  auto backend = std::make_shared<st::MemObjectBackend>();
  lk::DurableEntityStore durable(fpdl_config(), backend, s.policy);
  for (const auto& batch : s.batches) {
    EXPECT_TRUE(durable.ingest(batch).ok());
  }
  s.objects = dump(*backend);
  EXPECT_TRUE(s.objects.count("MANIFEST"));
  EXPECT_TRUE(s.objects.count("base-3.snap"));
  EXPECT_GT(s.objects.at("journal").size(), 0u);
  return s;
}

TEST(KillAtEveryByte, JournalCutRecoversTheExactFramePrefix) {
  const auto s = build_journal_scenario();
  const std::string journal = s.objects.at("journal");
  // Frame boundaries, recomputed from the deterministic encoding.
  std::vector<std::size_t> frame_end;
  std::size_t off = 0;
  for (std::uint64_t seq = 3; seq < 5; ++seq) {
    off += lk::encode_journal_frame(seq, s.batches[seq]).size();
    frame_end.push_back(off);
  }
  ASSERT_EQ(off, journal.size());

  for (std::size_t keep = 0; keep <= journal.size(); ++keep) {
    auto backend = restore_backend(s.objects);
    backend->poke(st::BlobRef{"journal"}, journal.substr(0, keep));
    std::size_t frames_fit = 0;
    while (frames_fit < frame_end.size() && frame_end[frames_fit] <= keep) {
      ++frames_fit;
    }
    const std::size_t expect_batches = 3 + frames_fit;

    lk::DurableEntityStore recovered(fpdl_config(), backend, s.policy);
    const auto report = recovered.recover();
    ASSERT_TRUE(report.ok())
        << "keep " << keep << ": " << report.status().to_string();
    ASSERT_EQ(report->batches_ingested, expect_batches) << "keep " << keep;
    expect_stores_equal(reference_store(s.batches, expect_batches),
                        recovered.store());
  }
}

TEST(KillAtEveryByte, TruncatedManifestIsAlwaysDetected) {
  const auto s = build_journal_scenario();
  const std::string manifest = s.objects.at("MANIFEST");
  for (std::size_t keep = 0; keep < manifest.size(); ++keep) {
    auto backend = restore_backend(s.objects);
    backend->poke(st::BlobRef{"MANIFEST"}, manifest.substr(0, keep));
    lk::DurableEntityStore recovered(fpdl_config(), backend, s.policy);
    const auto report = recovered.recover();
    EXPECT_FALSE(report.ok()) << "keep " << keep
                              << ": a cut manifest must never load";
  }
}

TEST(KillAtEveryByte, TruncatedBaseIsAlwaysDetected) {
  const auto s = build_journal_scenario();
  const std::string base = s.objects.at("base-3.snap");
  for (std::size_t keep = 0; keep < base.size(); ++keep) {
    auto backend = restore_backend(s.objects);
    backend->poke(st::BlobRef{"base-3.snap"}, base.substr(0, keep));
    lk::DurableEntityStore recovered(fpdl_config(), backend, s.policy);
    EXPECT_FALSE(recovered.recover().ok()) << "keep " << keep;
  }
}

TEST(KillAtEveryByte, TruncatedDeltaIsAlwaysDetected) {
  // A chain with a real delta: base at batch 2, delta-2-4.seg, then cut
  // the delta at every byte — the damage must always surface.
  const auto batches = make_batches({15, 15, 3, 3, 3}, 5);
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 2;
  policy.compact_every = 8;
  auto pristine = std::make_shared<st::MemObjectBackend>();
  {
    lk::DurableEntityStore durable(fpdl_config(), pristine, policy);
    for (const auto& batch : batches) {
      ASSERT_TRUE(durable.ingest(batch).ok());
    }
    ASSERT_EQ(durable.manifest().deltas.size(), 1u);
  }
  const auto objects = dump(*pristine);
  const std::string delta = objects.at("delta-2-4.seg");
  for (std::size_t keep = 0; keep < delta.size(); ++keep) {
    auto backend = restore_backend(objects);
    backend->poke(st::BlobRef{"delta-2-4.seg"}, delta.substr(0, keep));
    lk::DurableEntityStore recovered(fpdl_config(), backend, policy);
    EXPECT_FALSE(recovered.recover().ok()) << "keep " << keep;
  }
  // The undamaged chain still recovers to the reference state.
  lk::DurableEntityStore recovered(fpdl_config(), restore_backend(objects),
                                   policy);
  ASSERT_TRUE(recovered.recover().ok());
  expect_stores_equal(reference_store(batches, batches.size()),
                      recovered.store());
}

TEST(KillAtEveryByte, OrphanBlobsFromACrashedCheckpointAreIgnored) {
  // A crash after the delta blob landed but before the manifest swap
  // leaves an orphan the manifest never references: recovery must ignore
  // it (whatever partial bytes it holds), and the next checkpoint sweeps.
  const auto s = build_journal_scenario();
  const std::string garbage(37, '\xBE');
  for (const char* orphan : {"delta-0-1.seg", "base-9.snap"}) {
    auto backend = restore_backend(s.objects);
    backend->poke(st::BlobRef{orphan}, garbage);
    lk::DurableEntityStore recovered(fpdl_config(), backend, s.policy);
    const auto report = recovered.recover();
    ASSERT_TRUE(report.ok()) << orphan << " tripped recovery";
    expect_stores_equal(reference_store(s.batches, 5), recovered.store());
    // The next checkpoint sweeps what the manifest does not reference.
    ASSERT_TRUE(recovered.checkpoint().ok());
    EXPECT_FALSE(recovered.backend()->exists(st::BlobRef{orphan}).value());
  }
}

// --- migration / mixed on-disk state -----------------------------------

TEST(Migration, LegacyMonolithicSnapshotPlusJournalRecovers) {
  // A directory written entirely by the pre-manifest layer: one
  // monolithic snapshot plus journal frames.  The new recover() must
  // read it unchanged, and the next checkpoint must move the store onto
  // the manifest chain.
  const auto batches = make_batches({10, 10, 10, 10}, 6);
  auto backend = std::make_shared<st::MemObjectBackend>();
  {
    const auto two = reference_store(batches, 2);
    backend->poke(st::BlobRef{"store.snap"}, lk::encode_snapshot(two, 2));
    std::string journal;
    journal += lk::encode_journal_frame(2, batches[2]);
    journal += lk::encode_journal_frame(3, batches[3]);
    backend->poke(st::BlobRef{"journal"}, journal);
  }
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 0;
  lk::DurableEntityStore durable(fpdl_config(), backend, policy);
  const auto report = durable.recover();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report->snapshot_loaded);
  EXPECT_TRUE(report->legacy_snapshot);
  EXPECT_EQ(report->journal_batches_replayed, 2u);
  EXPECT_EQ(report->batches_ingested, 4u);
  expect_stores_equal(reference_store(batches, 4), durable.store());

  // Checkpointing adopts the manifest format; the next recovery comes
  // from the chain, not the legacy file.
  ASSERT_TRUE(durable.checkpoint().ok());
  EXPECT_TRUE(backend->exists(st::BlobRef{"MANIFEST"}).value());
  lk::DurableEntityStore again(fpdl_config(), backend, policy);
  const auto second = again.recover();
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->legacy_snapshot);
  expect_stores_equal(durable.store(), again.store());
}

TEST(Migration, ManifestWinsOverAStaleLegacySnapshotInTheSameDirectory) {
  // Mixed state: a store migrated mid-history has BOTH the old
  // monolithic file and a (newer) manifest chain.  The chain must win;
  // the stale legacy bytes must never roll the store back.
  const auto batches = make_batches({8, 8, 8, 8}, 7);
  auto backend = std::make_shared<st::MemObjectBackend>();
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 2;
  {
    lk::DurableEntityStore durable(fpdl_config(), backend, policy);
    for (const auto& batch : batches) {
      ASSERT_TRUE(durable.ingest(batch).ok());
    }
  }
  const auto stale = reference_store(batches, 2);
  backend->poke(st::BlobRef{"store.snap"}, lk::encode_snapshot(stale, 2));

  lk::DurableEntityStore recovered(fpdl_config(), backend, policy);
  const auto report = recovered.recover();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_FALSE(report->legacy_snapshot);
  EXPECT_EQ(report->batches_ingested, batches.size());
  expect_stores_equal(reference_store(batches, batches.size()),
                      recovered.store());
}

// --- group commit -------------------------------------------------------

TEST(GroupCommit, EntityIdsAreIdenticalUnderAnySyncPolicy) {
  // Satellite acceptance: batching/timer settings change WHEN bytes hit
  // the backend, never WHAT replays — same batches, same entity ids.
  const auto batches = make_batches({7, 7, 7, 7, 7, 7}, 8);
  const auto reference = reference_store(batches, batches.size());
  for (const auto& [max_batch, max_delay_ms] :
       std::vector<std::pair<std::size_t, double>>{
           {1, 0.0}, {2, 0.0}, {3, 0.0}, {100, 0.0}, {4, 1.0}}) {
    auto backend = std::make_shared<st::MemObjectBackend>();
    lk::DurabilityPolicy policy;
    policy.checkpoint_every = 0;
    policy.group_commit.max_batch = max_batch;
    policy.group_commit.max_delay_ms = max_delay_ms;
    {
      lk::DurableEntityStore durable(fpdl_config(), backend, policy);
      for (const auto& batch : batches) {
        ASSERT_TRUE(durable.ingest(batch).ok());
      }
      expect_stores_equal(reference, durable.store());
      // The destructor syncs the pending suffix (clean shutdown).
    }
    lk::DurableEntityStore recovered(fpdl_config(), backend, policy);
    const auto report = recovered.recover();
    ASSERT_TRUE(report.ok()) << "max_batch " << max_batch;
    EXPECT_EQ(report->batches_ingested, batches.size())
        << "max_batch " << max_batch;
    expect_stores_equal(reference, recovered.store());
  }
}

TEST(GroupCommit, BatchingAmortizesSyncs) {
  const auto batches = make_batches({5, 5, 5, 5, 5, 5}, 9);
  auto backend = std::make_shared<st::MemObjectBackend>();
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 0;
  policy.group_commit.max_batch = 3;
  lk::DurableEntityStore durable(fpdl_config(), backend, policy);
  for (const auto& batch : batches) {
    ASSERT_TRUE(durable.ingest(batch).ok());
  }
  EXPECT_EQ(durable.stats().journal_appends, 6u);
  EXPECT_EQ(durable.stats().journal_syncs, 2u);  // 6 appends / 3 per sync
}

TEST(GroupCommit, TimerFlushesAStalePendingBatch) {
  const auto batches = make_batches({5, 5}, 10);
  auto backend = std::make_shared<st::MemObjectBackend>();
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 0;
  policy.group_commit.max_batch = 100;   // count alone would never sync
  policy.group_commit.max_delay_ms = 1.0;
  lk::DurableEntityStore durable(fpdl_config(), backend, policy);
  ASSERT_TRUE(durable.ingest(batches[0]).ok());
  EXPECT_EQ(durable.stats().journal_syncs, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(durable.ingest(batches[1]).ok());  // pending age > 1ms
  EXPECT_EQ(durable.stats().journal_syncs, 1u);

  durable.simulate_crash();  // both frames were synced by the timer
  lk::DurableEntityStore recovered(fpdl_config(), backend, policy);
  ASSERT_TRUE(recovered.recover().ok());
  EXPECT_EQ(recovered.batches_ingested(), 2u);
}

TEST(GroupCommit, CrashLosesExactlyTheUnsyncedWindow) {
  // The documented trade: with max_batch = 4, a kill -9 after 6 acked
  // batches recovers the 4 synced ones — no more, no less, and the
  // recovered ids match an uninterrupted 4-batch run exactly.
  const auto batches = make_batches({6, 6, 6, 6, 6, 6}, 11);
  auto backend = std::make_shared<st::MemObjectBackend>();
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 0;
  policy.group_commit.max_batch = 4;
  {
    lk::DurableEntityStore durable(fpdl_config(), backend, policy);
    for (const auto& batch : batches) {
      ASSERT_TRUE(durable.ingest(batch).ok());
    }
    durable.simulate_crash();  // frames 4 and 5 were never synced
    const auto refused = durable.ingest(batches[0]);
    EXPECT_FALSE(refused.ok());  // a crashed store refuses new work
    EXPECT_EQ(refused.status().code(), u::StatusCode::kFailedPrecondition);
  }
  lk::DurableEntityStore recovered(fpdl_config(), backend, policy);
  const auto report = recovered.recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->batches_ingested, 4u);
  expect_stores_equal(reference_store(batches, 4), recovered.store());

  // Re-acking the lost window converges with the never-crashed run.
  for (std::size_t b = 4; b < batches.size(); ++b) {
    ASSERT_TRUE(recovered.ingest(batches[b]).ok());
  }
  expect_stores_equal(reference_store(batches, batches.size()),
                      recovered.store());
}

// --- degradation accounting ---------------------------------------------

TEST(CheckpointRetry, FailedCheckpointsRetryOnTheNextBatchAndAreCounted) {
  // Satellite acceptance: a put-failing backend degrades the store (the
  // journal keeps every batch) and each later batch retries; when the
  // backend heals, the very next ingest checkpoints successfully.
  u::FaultConfig config;
  config.seed = 31;
  config.put_fail_rate = 1.0;
  u::FaultInjector faults(config);
  const auto batches = make_batches({5, 5, 5, 5, 5}, 12);
  auto backend = std::make_shared<st::MemObjectBackend>(&faults);
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 2;
  // Buffered appends keep the journal path off the put-fault site so the
  // failure isolates to checkpoint blobs.
  policy.group_commit.max_batch = 100;
  lk::DurableEntityStore durable(fpdl_config(), backend, policy);
  for (std::size_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(durable.ingest(batches[b]).ok());  // ingest never fails
  }
  // every-2 policy, first attempt at batch 2, retries at 3 and 4.
  EXPECT_EQ(durable.checkpoint_failures(), 3u);
  EXPECT_EQ(durable.stats().checkpoints, 0u);
  EXPECT_FALSE(durable.stats().last_error.empty());
  EXPECT_GT(faults.counters().put_failures, 0u);

  backend->set_faults(nullptr);  // the backend heals
  ASSERT_TRUE(durable.ingest(batches[4]).ok());
  EXPECT_EQ(durable.stats().checkpoints, 1u);
  EXPECT_EQ(durable.checkpoint_failures(), 3u);  // history, not state
  EXPECT_EQ(durable.manifest().batches_covered(), 5u);

  lk::DurableEntityStore recovered(fpdl_config(), backend, policy);
  ASSERT_TRUE(recovered.recover().ok());
  expect_stores_equal(reference_store(batches, batches.size()),
                      recovered.store());
}

TEST(CheckpointRetry, LostManifestPutRestoresThePreviousChain) {
  // An acked-then-lost MANIFEST would orphan the whole chain; the
  // read-back verify must catch it, restore the previous manifest and
  // count a failure — recovery stays on the old chain.
  const auto batches = make_batches({6, 6, 6, 6}, 13);
  auto backend = std::make_shared<st::MemObjectBackend>();
  lk::DurabilityPolicy policy;
  policy.checkpoint_every = 2;
  lk::DurableEntityStore durable(fpdl_config(), backend, policy);
  ASSERT_TRUE(durable.ingest(batches[0]).ok());
  ASSERT_TRUE(durable.ingest(batches[1]).ok());  // chain covers 2 batches
  EXPECT_EQ(durable.stats().checkpoints, 1u);

  u::FaultConfig config;
  config.seed = 33;
  config.lost_object_rate = 1.0;
  u::FaultInjector faults(config);
  backend->set_faults(&faults);
  ASSERT_TRUE(durable.ingest(batches[2]).ok());
  ASSERT_TRUE(durable.ingest(batches[3]).ok());
  EXPECT_GT(durable.checkpoint_failures(), 0u);
  backend->set_faults(nullptr);

  // The old chain survived the failed swap; the journal still holds the
  // uncovered batches, so recovery reaches the full state.
  lk::DurableEntityStore recovered(fpdl_config(), backend, policy);
  const auto report = recovered.recover();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report->batches_ingested, batches.size());
  expect_stores_equal(reference_store(batches, batches.size()),
                      recovered.store());
}

// --- codec edge cases ---------------------------------------------------

TEST(DeltaCodec, EveryByteCorruptionIsDetected) {
  lk::EntityStore store(fpdl_config());
  const auto batches = make_batches({6, 6}, 14);
  store.ingest(batches[0]);
  const std::size_t from = store.size();
  store.ingest(batches[1]);
  const std::string bytes = lk::encode_delta(store, from, 1, 2);
  ASSERT_TRUE(lk::decode_delta(bytes).ok());
  Rng rng(45);
  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(
        static_cast<unsigned char>(corrupt[offset]) ^
        (1u << rng.below(8)));
    EXPECT_FALSE(lk::decode_delta(corrupt).ok()) << "byte " << offset;
  }
}

TEST(ManifestCodec, RoundTripsAndRejectsBrokenChains) {
  lk::SnapshotManifest manifest;
  manifest.base_blob = "base-4.snap";
  manifest.base_batches = 4;
  manifest.base_records = 120;
  manifest.deltas.push_back({"delta-4-6.seg", 4, 6, 120, 150});
  manifest.deltas.push_back({"delta-6-9.seg", 6, 9, 150, 180});
  const std::string bytes = lk::encode_manifest(manifest);
  const auto decoded = lk::decode_manifest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->base_blob, manifest.base_blob);
  ASSERT_EQ(decoded->deltas.size(), 2u);
  EXPECT_EQ(decoded->batches_covered(), 9u);
  EXPECT_EQ(decoded->records_covered(), 180u);

  // A gap in the chain (delta starting past the covered position) must
  // be rejected at decode time, before any blob is fetched.
  lk::SnapshotManifest gap = manifest;
  gap.deltas[1].from_batches = 7;
  EXPECT_FALSE(lk::decode_manifest(lk::encode_manifest(gap)).ok());
  lk::SnapshotManifest overlap = manifest;
  overlap.deltas[1].from_record = 140;
  EXPECT_FALSE(lk::decode_manifest(lk::encode_manifest(overlap)).ok());
}

}  // namespace
