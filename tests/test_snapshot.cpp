#include "linkage/snapshot.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "linkage/person_gen.hpp"
#include "storage/local_dir.hpp"
#include "storage/mem_object.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace {

namespace lk = fbf::linkage;
namespace st = fbf::storage;
namespace u = fbf::util;
namespace fs = std::filesystem;
using fbf::util::Rng;

lk::ComparatorConfig fpdl_config() {
  return lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
}

std::vector<std::vector<lk::PersonRecord>> make_batches(std::size_t n_batches,
                                                        std::size_t batch_size,
                                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<lk::PersonRecord>> batches;
  batches.reserve(n_batches);
  std::uint64_t next_id = 0;
  for (std::size_t b = 0; b < n_batches; ++b) {
    auto batch = lk::generate_people(batch_size, rng);
    for (auto& r : batch) {
      r.id = next_id++;
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

void expect_stores_equal(const lk::EntityStore& a, const lk::EntityStore& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.entity_count(), b.entity_count());
  ASSERT_EQ(a.signatures().size(), b.signatures().size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entity_ids()[i], b.entity_ids()[i]) << "record " << i;
    EXPECT_EQ(a.records()[i].id, b.records()[i].id) << "record " << i;
    for (const auto field : lk::all_record_fields()) {
      EXPECT_EQ(a.records()[i].field(field), b.records()[i].field(field));
    }
    if (!a.signatures().empty()) {
      for (std::size_t f = 0; f < lk::kRecordFieldCount; ++f) {
        EXPECT_TRUE(a.signatures()[i].sigs[f] == b.signatures()[i].sigs[f])
            << "record " << i << " field " << f;
      }
    }
  }
}

/// Per-test scratch directory backing a LocalDirBackend, removed on
/// teardown.
class SnapshotFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = fs::path(::testing::TempDir()) /
            (std::string("fbf_") + info->name());
    fs::create_directories(base_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(base_, ec);
  }

  [[nodiscard]] std::shared_ptr<st::LocalDirBackend> backend(
      u::FaultInjector* faults = nullptr) const {
    return std::make_shared<st::LocalDirBackend>(base_.string(), faults);
  }

  [[nodiscard]] static lk::DurabilityPolicy policy(
      std::size_t checkpoint_every = 4) {
    lk::DurabilityPolicy p;
    p.checkpoint_every = checkpoint_every;
    return p;
  }

  /// True when a checkpoint chain (manifest) exists in the directory.
  [[nodiscard]] bool has_manifest() const {
    return fs::exists(base_ / "MANIFEST");
  }

  [[nodiscard]] std::uintmax_t journal_size() const {
    return fs::file_size(base_ / "journal");
  }

  fs::path base_;
};

TEST(Snapshot, RoundTripPreservesRecordsIdsAndSignatures) {
  lk::EntityStore store(fpdl_config());
  const auto batches = make_batches(3, 40, 1);
  for (const auto& batch : batches) {
    store.ingest(batch);
  }
  const std::string bytes = lk::encode_snapshot(store, 3);
  lk::EntityStore loaded(fpdl_config());
  const auto seq = lk::decode_snapshot(bytes, loaded);
  ASSERT_TRUE(seq.ok()) << seq.status().to_string();
  EXPECT_EQ(seq.value(), 3u);
  expect_stores_equal(store, loaded);
}

TEST(Snapshot, RoundTripWithoutFbfComparator) {
  // A DL-only comparator keeps no signatures; the snapshot must say so
  // and the loaded store must behave identically.
  const auto config = lk::make_point_threshold_config(lk::FieldStrategy::kDl);
  lk::EntityStore store(config);
  store.ingest(make_batches(1, 30, 2).front());
  const std::string bytes = lk::encode_snapshot(store, 1);
  lk::EntityStore loaded(config);
  ASSERT_TRUE(lk::decode_snapshot(bytes, loaded).ok());
  EXPECT_TRUE(loaded.signatures().empty());
  expect_stores_equal(store, loaded);
}

TEST(Snapshot, EverySingleByteCorruptionIsDetected) {
  // Property (acceptance): encode -> corrupt one byte -> decode must fail
  // via checksum/structure checks, at EVERY byte offset.  A silently
  // wrong load would poison every later nightly run.
  lk::EntityStore store(fpdl_config());
  store.ingest(make_batches(1, 12, 3).front());
  const std::string bytes = lk::encode_snapshot(store, 1);
  Rng rng(44);
  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string corrupt = bytes;
    const int bit = static_cast<int>(rng.below(8));
    corrupt[offset] = static_cast<char>(
        static_cast<unsigned char>(corrupt[offset]) ^ (1u << bit));
    lk::EntityStore loaded(fpdl_config());
    const auto result = lk::decode_snapshot(corrupt, loaded);
    EXPECT_FALSE(result.ok()) << "byte " << offset << " bit " << bit
                              << " flipped but the snapshot loaded";
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), u::StatusCode::kDataLoss);
    }
  }
}

TEST(Snapshot, TruncatedSnapshotIsDetected) {
  lk::EntityStore store(fpdl_config());
  store.ingest(make_batches(1, 10, 4).front());
  const std::string bytes = lk::encode_snapshot(store, 1);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{10},
                                 std::size_t{27}, bytes.size() / 2,
                                 bytes.size() - 1}) {
    lk::EntityStore loaded(fpdl_config());
    EXPECT_FALSE(lk::decode_snapshot(bytes.substr(0, keep), loaded).ok())
        << "kept " << keep;
  }
}

TEST(Snapshot, BlobRoundTripThroughBackend) {
  auto backend = std::make_shared<st::MemObjectBackend>();
  lk::EntityStore store(fpdl_config());
  store.ingest(make_batches(1, 20, 14).front());
  const st::BlobRef ref{"nightly.snap"};
  ASSERT_TRUE(lk::write_snapshot(*backend, ref, store, 1).ok());
  lk::EntityStore loaded(fpdl_config());
  const auto seq = lk::read_snapshot(*backend, ref, loaded);
  ASSERT_TRUE(seq.ok()) << seq.status().to_string();
  EXPECT_EQ(seq.value(), 1u);
  expect_stores_equal(store, loaded);
  EXPECT_EQ(lk::read_snapshot(*backend, st::BlobRef{"absent"}, loaded)
                .status()
                .code(),
            u::StatusCode::kNotFound);
}

TEST(Journal, TruncationAtEveryPointYieldsAnIntactPrefix) {
  // Property (acceptance): however many tail bytes a crash destroys, the
  // replay is a frame-aligned prefix of what was appended — never a
  // half-applied batch, never an error.
  const auto batches = make_batches(4, 8, 5);
  std::string bytes;
  std::vector<std::size_t> frame_end;  // cumulative byte offset per frame
  for (std::size_t b = 0; b < batches.size(); ++b) {
    bytes += lk::encode_journal_frame(b, batches[b]);
    frame_end.push_back(bytes.size());
  }
  for (std::size_t keep = 0; keep <= bytes.size(); ++keep) {
    // A cut at `keep` preserves every frame that ends at or before it.
    std::size_t expect_frames = 0;
    while (expect_frames < frame_end.size() &&
           frame_end[expect_frames] <= keep) {
      ++expect_frames;
    }
    const auto replay = lk::replay_journal(
        std::string_view(bytes).substr(0, keep));
    ASSERT_EQ(replay.frames.size(), expect_frames) << "kept " << keep;
    const std::size_t prefix_bytes =
        expect_frames == 0 ? 0 : frame_end[expect_frames - 1];
    EXPECT_EQ(replay.dropped_tail_bytes, keep - prefix_bytes)
        << "kept " << keep;
    for (std::size_t f = 0; f < replay.frames.size(); ++f) {
      EXPECT_EQ(replay.frames[f].seq, f);
      ASSERT_EQ(replay.frames[f].batch.size(), batches[f].size());
      for (std::size_t r = 0; r < batches[f].size(); ++r) {
        EXPECT_EQ(replay.frames[f].batch[r].id, batches[f][r].id);
      }
    }
  }
}

TEST(Journal, CorruptMiddleFrameStopsAtThePrefix) {
  const auto batches = make_batches(3, 6, 6);
  std::string bytes;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    bytes += lk::encode_journal_frame(b, batches[b]);
  }
  // Flip a byte inside the second frame's payload region.
  const std::size_t offset = bytes.size() / 2;
  bytes[offset] = static_cast<char>(
      static_cast<unsigned char>(bytes[offset]) ^ 0x40);
  const auto replay = lk::replay_journal(bytes);
  EXPECT_LT(replay.frames.size(), batches.size());
  for (std::size_t f = 0; f < replay.frames.size(); ++f) {
    EXPECT_EQ(replay.frames[f].seq, f);
  }
}

TEST_F(SnapshotFiles, CrashRecoveryRestoresExactlyThePostBatchKStore) {
  // Acceptance scenario: ingest N batches, "kill" after batch k, recover,
  // and the store must equal the uninterrupted post-batch-k state — same
  // entity count, ids and signatures; then re-ingesting the remaining
  // batches must land exactly where an uninterrupted run lands.
  const std::size_t n_batches = 7;
  const std::size_t crash_after = 4;  // not on a checkpoint boundary
  const auto batches = make_batches(n_batches, 25, 7);

  lk::DurableEntityStore durable(fpdl_config(), backend(),
                                 policy(/*every=*/3));
  for (std::size_t b = 0; b < crash_after; ++b) {
    ASSERT_TRUE(durable.ingest(batches[b]).ok());
  }
  durable.simulate_crash();
  // A fresh process recovers from the backend alone.
  lk::DurableEntityStore recovered(fpdl_config(), backend(),
                                   policy(/*every=*/3));
  const auto report = recovered.recover();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_TRUE(report->snapshot_loaded);  // checkpoint fired at batch 3
  EXPECT_FALSE(report->legacy_snapshot);
  EXPECT_EQ(report->journal_batches_replayed, 1u);  // batch 3..4 delta
  EXPECT_EQ(report->batches_ingested, crash_after);

  lk::EntityStore uninterrupted(fpdl_config());
  for (std::size_t b = 0; b < crash_after; ++b) {
    uninterrupted.ingest(batches[b]);
  }
  expect_stores_equal(uninterrupted, recovered.store());

  // Continue the night: the recovered pipeline must converge with the
  // never-crashed one.
  for (std::size_t b = crash_after; b < n_batches; ++b) {
    ASSERT_TRUE(recovered.ingest(batches[b]).ok());
    uninterrupted.ingest(batches[b]);
  }
  expect_stores_equal(uninterrupted, recovered.store());
}

TEST_F(SnapshotFiles, RecoverOnColdStartYieldsEmptyStore) {
  lk::DurableEntityStore durable(fpdl_config(), backend(), policy());
  const auto report = durable.recover();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->snapshot_loaded);
  EXPECT_EQ(report->batches_ingested, 0u);
  EXPECT_EQ(durable.store().size(), 0u);
}

TEST_F(SnapshotFiles, CheckpointEveryNWritesManifestAndResetsJournal) {
  const auto batches = make_batches(4, 10, 8);
  lk::DurableEntityStore durable(fpdl_config(), backend(),
                                 policy(/*every=*/2));
  ASSERT_TRUE(durable.ingest(batches[0]).ok());
  EXPECT_FALSE(has_manifest());
  EXPECT_GT(journal_size(), 0u);
  ASSERT_TRUE(durable.ingest(batches[1]).ok());
  EXPECT_TRUE(has_manifest());
  EXPECT_EQ(journal_size(), 0u);  // reset after the checkpoint
  ASSERT_TRUE(durable.ingest(batches[2]).ok());
  EXPECT_GT(journal_size(), 0u);
  EXPECT_EQ(durable.checkpoint_failures(), 0u);
  EXPECT_EQ(durable.stats().checkpoints, 1u);
}

TEST_F(SnapshotFiles, ManualCheckpointOnlyWhenEveryIsZero) {
  const auto batches = make_batches(3, 10, 9);
  lk::DurableEntityStore durable(fpdl_config(), backend(),
                                 policy(/*every=*/0));
  for (const auto& batch : batches) {
    ASSERT_TRUE(durable.ingest(batch).ok());
  }
  EXPECT_FALSE(has_manifest());
  ASSERT_TRUE(durable.checkpoint().ok());
  EXPECT_TRUE(has_manifest());
  EXPECT_EQ(journal_size(), 0u);
}

TEST_F(SnapshotFiles, InjectedSnapshotCorruptionDegradesWithoutDataLoss) {
  // Every checkpoint write is corrupted; verification catches it before
  // the manifest swap and the journal reset, so ingest keeps succeeding
  // and recovery comes from the (complete) journal.
  u::FaultConfig faults;
  faults.seed = 21;
  faults.snapshot_corrupt_rate = 1.0;
  u::FaultInjector injector(faults);
  const auto batches = make_batches(4, 12, 10);
  lk::DurableEntityStore durable(fpdl_config(), backend(&injector),
                                 policy(/*every=*/2));
  for (const auto& batch : batches) {
    ASSERT_TRUE(durable.ingest(batch).ok());
  }
  // The policy is every-N-since-last-SUCCESS, so after the first failure
  // at batch 2 every later batch retries: failures at batches 2, 3, 4.
  EXPECT_EQ(durable.checkpoint_failures(), 3u);
  EXPECT_FALSE(has_manifest());  // never a corrupt chain on disk
  EXPECT_TRUE(durable.backend()->list("base-").value().empty());
  EXPECT_GT(injector.counters().bytes_corrupted, 0u);
  EXPECT_FALSE(durable.stats().last_error.empty());

  lk::DurableEntityStore recovered(fpdl_config(), backend(),
                                   policy(/*every=*/0));
  const auto report = recovered.recover();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->snapshot_loaded);
  EXPECT_EQ(report->journal_batches_replayed, batches.size());
  lk::EntityStore uninterrupted(fpdl_config());
  for (const auto& batch : batches) {
    uninterrupted.ingest(batch);
  }
  expect_stores_equal(uninterrupted, recovered.store());
}

TEST_F(SnapshotFiles, InjectedJournalTruncationRecoversThePrefix) {
  // The injected crash cuts an append short; ingest reports it and the
  // recovered store is exactly the pre-crash prefix.
  u::FaultConfig faults;
  faults.seed = 23;
  faults.journal_truncate_rate = 1.0;  // the very first append is cut
  u::FaultInjector injector(faults);
  const auto batches = make_batches(3, 15, 11);

  lk::DurableEntityStore safe(fpdl_config(), backend(), policy(/*every=*/0));
  ASSERT_TRUE(safe.ingest(batches[0]).ok());
  ASSERT_TRUE(safe.ingest(batches[1]).ok());

  // Same directory, but this writer's next append is cut by the injector.
  lk::DurableEntityStore crasher(fpdl_config(), backend(&injector),
                                 policy(/*every=*/0));
  ASSERT_TRUE(crasher.recover().ok());
  EXPECT_EQ(crasher.batches_ingested(), 2u);
  const auto cut = crasher.ingest(batches[2]);
  EXPECT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), u::StatusCode::kUnavailable);

  lk::DurableEntityStore recovered(fpdl_config(), backend(),
                                   policy(/*every=*/0));
  const auto report = recovered.recover();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->dropped_tail_bytes, 0u);
  EXPECT_EQ(report->batches_ingested, 2u);  // prefix: batches 0 and 1 only
  lk::EntityStore prefix(fpdl_config());
  prefix.ingest(batches[0]);
  prefix.ingest(batches[1]);
  expect_stores_equal(prefix, recovered.store());
}

TEST_F(SnapshotFiles, RecoveryCleansTheJournalSoASecondCrashLosesNothing) {
  // Regression: recover() used to leave the damaged tail bytes on disk
  // while ingest() kept appending after them; replay stops at the first
  // damaged frame, so every batch acknowledged after the first recovery
  // was silently unrecoverable by a second crash.  recover() must hand
  // back a journal that is exactly the replayed prefix.
  u::FaultConfig faults;
  faults.seed = 23;
  faults.journal_truncate_rate = 1.0;
  u::FaultInjector injector(faults);
  const auto batches = make_batches(3, 12, 12);

  lk::DurableEntityStore safe(fpdl_config(), backend(), policy(/*every=*/0));
  ASSERT_TRUE(safe.ingest(batches[0]).ok());

  // Crash mid-append of batch 1: a partial frame lands on disk.
  lk::DurableEntityStore crasher(fpdl_config(), backend(&injector),
                                 policy(/*every=*/0));
  ASSERT_TRUE(crasher.recover().ok());
  EXPECT_FALSE(crasher.ingest(batches[1]).ok());

  // First recovery drops the damaged tail and must also remove it from
  // the journal blob...
  lk::DurableEntityStore second(fpdl_config(), backend(), policy(/*every=*/0));
  const auto first = second.recover();
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_GT(first->dropped_tail_bytes, 0u);
  EXPECT_EQ(first->batches_ingested, 1u);
  ASSERT_TRUE(second.ingest(batches[1]).ok());
  ASSERT_TRUE(second.ingest(batches[2]).ok());

  // ...so batches acknowledged after the recovery survive a SECOND
  // crash instead of sitting behind an unreadable frame.
  lk::DurableEntityStore third(fpdl_config(), backend(), policy(/*every=*/0));
  const auto again = third.recover();
  ASSERT_TRUE(again.ok()) << again.status().to_string();
  EXPECT_EQ(again->dropped_tail_bytes, 0u);
  EXPECT_EQ(again->batches_ingested, batches.size());
  lk::EntityStore uninterrupted(fpdl_config());
  for (const auto& batch : batches) {
    uninterrupted.ingest(batch);
  }
  expect_stores_equal(uninterrupted, third.store());
}

TEST(EntityStoreRestore, RejectsInconsistentShapes) {
  lk::EntityStore store(fpdl_config());
  std::vector<lk::PersonRecord> two(2);
  EXPECT_FALSE(store.restore(two, {0u}, 1).ok());  // ids not parallel
  EXPECT_FALSE(store.restore(two, {0u, 5u}, 2).ok());  // id >= total
  EXPECT_TRUE(store.restore(two, {0u, 1u}, 2).ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.entity_count(), 2u);
  // FPDL comparator: signatures were recomputed during restore.
  EXPECT_EQ(store.signatures().size(), 2u);
}

}  // namespace
