#include "core/packed_signature_store.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/find_diff_bits.hpp"
#include "core/signature.hpp"
#include "datagen/dataset.hpp"

namespace {

using fbf::core::FieldClass;
using fbf::core::make_signature;
using fbf::core::pack_signature;
using fbf::core::packed_words;
using fbf::core::PackedSignatureStore;
using fbf::core::Signature;

namespace dg = fbf::datagen;

TEST(PackedStore, SupportedLayouts) {
  EXPECT_TRUE(PackedSignatureStore::supported(FieldClass::kNumeric, 2));
  EXPECT_TRUE(PackedSignatureStore::supported(FieldClass::kAlpha, 1));
  EXPECT_TRUE(PackedSignatureStore::supported(FieldClass::kAlpha, 2));
  EXPECT_TRUE(PackedSignatureStore::supported(FieldClass::kAlphanumeric, 2));
  EXPECT_FALSE(PackedSignatureStore::supported(FieldClass::kAlpha, 3));
  EXPECT_FALSE(PackedSignatureStore::supported(FieldClass::kAlpha, 4));
  EXPECT_FALSE(PackedSignatureStore::supported(FieldClass::kAlphanumeric, 3));
  EXPECT_EQ(packed_words(FieldClass::kNumeric, 2), 1u);
  EXPECT_EQ(packed_words(FieldClass::kAlpha, 2), 1u);
  EXPECT_EQ(packed_words(FieldClass::kAlphanumeric, 2), 2u);
  EXPECT_EQ(packed_words(FieldClass::kAlpha, 3), 0u);
}

/// The packing must be a popcount-preserving bijection: the XOR diff of
/// two packed rows equals FindDiffBits of the classic signatures, for
/// every supported layout.  This is the invariant the batched kernel's
/// correctness rests on.
TEST(PackedStore, PackedXorDiffEqualsFindDiffBits) {
  struct Case {
    dg::FieldKind kind;
    FieldClass cls;
    int alpha_words;
  };
  const Case cases[] = {
      {dg::FieldKind::kSsn, FieldClass::kNumeric, 2},
      {dg::FieldKind::kLastName, FieldClass::kAlpha, 1},
      {dg::FieldKind::kLastName, FieldClass::kAlpha, 2},
      {dg::FieldKind::kAddress, FieldClass::kAlphanumeric, 1},
      {dg::FieldKind::kAddress, FieldClass::kAlphanumeric, 2},
  };
  for (const Case& c : cases) {
    const auto dataset = dg::build_paired_dataset(c.kind, 200, 31).value();
    const PackedSignatureStore left(dataset.clean, c.cls, c.alpha_words);
    const PackedSignatureStore right(dataset.error, c.cls, c.alpha_words);
    ASSERT_EQ(left.size(), dataset.clean.size());
    for (std::size_t i = 0; i < left.size(); ++i) {
      for (std::size_t j = 0; j < right.size(); j += 17) {
        const Signature a =
            make_signature(dataset.clean[i], c.cls, c.alpha_words);
        const Signature b =
            make_signature(dataset.error[j], c.cls, c.alpha_words);
        int packed_diff = 0;
        for (std::size_t w = 0; w < left.words(); ++w) {
          packed_diff += std::popcount(left.word(w, i) ^ right.word(w, j));
        }
        ASSERT_EQ(packed_diff, fbf::core::find_diff_bits(a, b))
            << fbf::core::field_class_name(c.cls) << " l=" << c.alpha_words
            << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(PackedStore, LengthsMatchStrings) {
  const auto dataset = dg::build_paired_dataset(dg::FieldKind::kAddress, 64, 5).value();
  const PackedSignatureStore store(dataset.clean, FieldClass::kAlphanumeric);
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(store.lengths()[i], dataset.clean[i].size());
  }
}

TEST(PackedStore, PlanesAreAlignedAndPadded) {
  const std::vector<std::string> strings = {"SMITH", "JONES", "TAYLOR"};
  const PackedSignatureStore store(strings, FieldClass::kAlpha, 2);
  const auto addr = reinterpret_cast<std::uintptr_t>(store.plane(0));
  EXPECT_EQ(addr % 64, 0u);
  // Padding past size() must be readable and zero (the AVX2 kernel reads
  // whole 4-lane groups).
  for (std::size_t i = store.size(); i < 8; ++i) {
    EXPECT_EQ(store.plane(0)[i], 0u);
  }
}

TEST(PackedStore, ParallelBuildMatchesSerial) {
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 500, 77).value();
  const PackedSignatureStore serial(dataset.clean, FieldClass::kAlpha, 2, 1);
  const PackedSignatureStore parallel(dataset.clean, FieldClass::kAlpha, 2, 7);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.word(0, i), parallel.word(0, i));
    EXPECT_EQ(serial.lengths()[i], parallel.lengths()[i]);
  }
  EXPECT_GT(serial.build_ms(), 0.0);
}

TEST(PackedStore, EmptyStore) {
  const std::vector<std::string> none;
  const PackedSignatureStore store(none, FieldClass::kNumeric);
  EXPECT_EQ(store.size(), 0u);
  // Even an empty store keeps one readable zero line for the kernel.
  EXPECT_EQ(store.plane(0)[0], 0u);
}

/// Incremental growth invariant (DESIGN.md §9): appending batch by batch
/// must land byte-for-byte on the bulk build — same packed words, same
/// lengths — for every supported layout, and the zero padding past size()
/// must survive every growth step (the batched kernel reads whole cache
/// lines past the tail).
TEST(PackedStore, IncrementalAppendMatchesBulkBuild) {
  struct Case {
    dg::FieldKind kind;
    FieldClass cls;
    int alpha_words;
  };
  const Case cases[] = {
      {dg::FieldKind::kSsn, FieldClass::kNumeric, 2},
      {dg::FieldKind::kLastName, FieldClass::kAlpha, 2},
      {dg::FieldKind::kAddress, FieldClass::kAlphanumeric, 2},
  };
  for (const Case& c : cases) {
    const auto dataset = dg::build_paired_dataset(c.kind, 300, 91).value();
    const auto& all = dataset.clean;
    const PackedSignatureStore bulk(all, c.cls, c.alpha_words);

    PackedSignatureStore inc(c.cls, c.alpha_words);
    // Ragged batch sizes exercise growth mid-line and mid-batch.
    const std::size_t splits[] = {1, 7, 64, 100, 128};
    std::size_t next = 0;
    for (const std::size_t len : splits) {
      inc.append(std::span(all).subspan(next, len), /*threads=*/3);
      next += len;
      ASSERT_EQ(inc.size(), next);
      ASSERT_EQ(inc.padded_size() % 8, 0u);
      ASSERT_GE(inc.padded_size(), inc.size());
      // Zero-tail invariant after every append.
      for (std::size_t w = 0; w < inc.words(); ++w) {
        for (std::size_t i = inc.size(); i < inc.padded_size(); ++i) {
          ASSERT_EQ(inc.word(w, i), 0u)
              << fbf::core::field_class_name(c.cls) << " plane " << w
              << " row " << i << " after " << next << " rows";
        }
      }
    }
    ASSERT_EQ(next, all.size());
    ASSERT_EQ(inc.size(), bulk.size());
    ASSERT_EQ(inc.words(), bulk.words());
    for (std::size_t i = 0; i < bulk.size(); ++i) {
      ASSERT_EQ(inc.lengths()[i], bulk.lengths()[i]) << "row " << i;
      for (std::size_t w = 0; w < bulk.words(); ++w) {
        ASSERT_EQ(inc.word(w, i), bulk.word(w, i))
            << fbf::core::field_class_name(c.cls) << " plane " << w
            << " row " << i;
      }
    }
  }
}

TEST(PackedStore, AppendSignatureMatchesStringAppend) {
  // The pre-built-signature entry point (EntityStore's path) must pack
  // identically to the string path.
  const auto dataset = dg::build_paired_dataset(dg::FieldKind::kAddress, 50, 3).value();
  const PackedSignatureStore bulk(dataset.clean, FieldClass::kAlphanumeric, 2);
  PackedSignatureStore inc(FieldClass::kAlphanumeric, 2);
  for (const std::string& s : dataset.clean) {
    inc.append_signature(make_signature(s, FieldClass::kAlphanumeric, 2),
                         static_cast<std::uint32_t>(s.size()));
  }
  ASSERT_EQ(inc.size(), bulk.size());
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    EXPECT_EQ(inc.lengths()[i], bulk.lengths()[i]);
    for (std::size_t w = 0; w < bulk.words(); ++w) {
      EXPECT_EQ(inc.word(w, i), bulk.word(w, i));
    }
  }
}

TEST(PackedStore, AppendAccumulatesBuildTime) {
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 4000, 11).value();
  PackedSignatureStore store(FieldClass::kAlpha, 2);
  store.append(std::span(dataset.clean).first(2000));
  const double after_first = store.build_ms();
  EXPECT_GT(after_first, 0.0);
  store.append(std::span(dataset.clean).subspan(2000));
  EXPECT_GE(store.build_ms(), after_first);
}

TEST(PackedStore, PackSignatureAlphanumericUsesLastWordForNumeric) {
  // "A1" at l=2: alpha word0 bit 0, numeric word bit 3*1 (digit 1, first
  // occurrence).
  const Signature sig =
      make_signature("A1", FieldClass::kAlphanumeric, 2);
  std::uint64_t row[2] = {0, 0};
  pack_signature(sig, FieldClass::kAlphanumeric, 2, row);
  EXPECT_EQ(row[0], 1ull);
  EXPECT_EQ(row[1], static_cast<std::uint64_t>(1u << 3));
}

// The plane-pruning bound: plane 1 can contribute at most 30 differing
// bits (the numeric word uses 30 of its 64 bits), and single-plane
// layouts have no tail at all.  The member must agree with the free
// function the kernels consume.
TEST(PackedStore, MaxTailPopcountBoundsPlaneOne) {
  using fbf::core::max_tail_popcount;
  EXPECT_EQ(max_tail_popcount(FieldClass::kAlphanumeric, 2), 30);
  EXPECT_EQ(max_tail_popcount(FieldClass::kAlphanumeric, 1), 30);
  EXPECT_EQ(max_tail_popcount(FieldClass::kNumeric, 2), 0);
  EXPECT_EQ(max_tail_popcount(FieldClass::kAlpha, 1), 0);
  EXPECT_EQ(max_tail_popcount(FieldClass::kAlpha, 2), 0);

  const PackedSignatureStore alnum(FieldClass::kAlphanumeric, 2);
  EXPECT_EQ(alnum.max_tail_popcount(), 30);
  const PackedSignatureStore alpha(FieldClass::kAlpha, 2);
  EXPECT_EQ(alpha.max_tail_popcount(), 0);

  // The bound must actually dominate every real plane-1 diff.
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kAddress, 200, 77).value();
  const PackedSignatureStore store(dataset.clean, FieldClass::kAlphanumeric, 2);
  ASSERT_EQ(store.words(), 2u);
  for (std::size_t i = 0; i + 1 < store.size(); ++i) {
    const int tail_diff = std::popcount(store.word(1, i) ^ store.word(1, i + 1));
    EXPECT_LE(tail_diff, store.max_tail_popcount());
  }
}

}  // namespace
