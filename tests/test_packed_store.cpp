#include "core/packed_signature_store.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/find_diff_bits.hpp"
#include "core/signature.hpp"
#include "datagen/dataset.hpp"

namespace {

using fbf::core::FieldClass;
using fbf::core::make_signature;
using fbf::core::pack_signature;
using fbf::core::packed_words;
using fbf::core::PackedSignatureStore;
using fbf::core::Signature;

namespace dg = fbf::datagen;

TEST(PackedStore, SupportedLayouts) {
  EXPECT_TRUE(PackedSignatureStore::supported(FieldClass::kNumeric, 2));
  EXPECT_TRUE(PackedSignatureStore::supported(FieldClass::kAlpha, 1));
  EXPECT_TRUE(PackedSignatureStore::supported(FieldClass::kAlpha, 2));
  EXPECT_TRUE(PackedSignatureStore::supported(FieldClass::kAlphanumeric, 2));
  EXPECT_FALSE(PackedSignatureStore::supported(FieldClass::kAlpha, 3));
  EXPECT_FALSE(PackedSignatureStore::supported(FieldClass::kAlpha, 4));
  EXPECT_FALSE(PackedSignatureStore::supported(FieldClass::kAlphanumeric, 3));
  EXPECT_EQ(packed_words(FieldClass::kNumeric, 2), 1u);
  EXPECT_EQ(packed_words(FieldClass::kAlpha, 2), 1u);
  EXPECT_EQ(packed_words(FieldClass::kAlphanumeric, 2), 2u);
  EXPECT_EQ(packed_words(FieldClass::kAlpha, 3), 0u);
}

/// The packing must be a popcount-preserving bijection: the XOR diff of
/// two packed rows equals FindDiffBits of the classic signatures, for
/// every supported layout.  This is the invariant the batched kernel's
/// correctness rests on.
TEST(PackedStore, PackedXorDiffEqualsFindDiffBits) {
  struct Case {
    dg::FieldKind kind;
    FieldClass cls;
    int alpha_words;
  };
  const Case cases[] = {
      {dg::FieldKind::kSsn, FieldClass::kNumeric, 2},
      {dg::FieldKind::kLastName, FieldClass::kAlpha, 1},
      {dg::FieldKind::kLastName, FieldClass::kAlpha, 2},
      {dg::FieldKind::kAddress, FieldClass::kAlphanumeric, 1},
      {dg::FieldKind::kAddress, FieldClass::kAlphanumeric, 2},
  };
  for (const Case& c : cases) {
    const auto dataset = dg::build_paired_dataset(c.kind, 200, 31);
    const PackedSignatureStore left(dataset.clean, c.cls, c.alpha_words);
    const PackedSignatureStore right(dataset.error, c.cls, c.alpha_words);
    ASSERT_EQ(left.size(), dataset.clean.size());
    for (std::size_t i = 0; i < left.size(); ++i) {
      for (std::size_t j = 0; j < right.size(); j += 17) {
        const Signature a =
            make_signature(dataset.clean[i], c.cls, c.alpha_words);
        const Signature b =
            make_signature(dataset.error[j], c.cls, c.alpha_words);
        int packed_diff = 0;
        for (std::size_t w = 0; w < left.words(); ++w) {
          packed_diff += std::popcount(left.word(w, i) ^ right.word(w, j));
        }
        ASSERT_EQ(packed_diff, fbf::core::find_diff_bits(a, b))
            << fbf::core::field_class_name(c.cls) << " l=" << c.alpha_words
            << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(PackedStore, LengthsMatchStrings) {
  const auto dataset = dg::build_paired_dataset(dg::FieldKind::kAddress, 64, 5);
  const PackedSignatureStore store(dataset.clean, FieldClass::kAlphanumeric);
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(store.lengths()[i], dataset.clean[i].size());
  }
}

TEST(PackedStore, PlanesAreAlignedAndPadded) {
  const std::vector<std::string> strings = {"SMITH", "JONES", "TAYLOR"};
  const PackedSignatureStore store(strings, FieldClass::kAlpha, 2);
  const auto addr = reinterpret_cast<std::uintptr_t>(store.plane(0));
  EXPECT_EQ(addr % 64, 0u);
  // Padding past size() must be readable and zero (the AVX2 kernel reads
  // whole 4-lane groups).
  for (std::size_t i = store.size(); i < 8; ++i) {
    EXPECT_EQ(store.plane(0)[i], 0u);
  }
}

TEST(PackedStore, ParallelBuildMatchesSerial) {
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 500, 77);
  const PackedSignatureStore serial(dataset.clean, FieldClass::kAlpha, 2, 1);
  const PackedSignatureStore parallel(dataset.clean, FieldClass::kAlpha, 2, 7);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.word(0, i), parallel.word(0, i));
    EXPECT_EQ(serial.lengths()[i], parallel.lengths()[i]);
  }
  EXPECT_GT(serial.build_ms(), 0.0);
}

TEST(PackedStore, EmptyStore) {
  const std::vector<std::string> none;
  const PackedSignatureStore store(none, FieldClass::kNumeric);
  EXPECT_EQ(store.size(), 0u);
  // Even an empty store keeps one readable zero line for the kernel.
  EXPECT_EQ(store.plane(0)[0], 0u);
}

TEST(PackedStore, PackSignatureAlphanumericUsesLastWordForNumeric) {
  // "A1" at l=2: alpha word0 bit 0, numeric word bit 3*1 (digit 1, first
  // occurrence).
  const Signature sig =
      make_signature("A1", FieldClass::kAlphanumeric, 2);
  std::uint64_t row[2] = {0, 0};
  pack_signature(sig, FieldClass::kAlphanumeric, 2, row);
  EXPECT_EQ(row[0], 1ull);
  EXPECT_EQ(row[1], static_cast<std::uint64_t>(1u << 3));
}

}  // namespace
