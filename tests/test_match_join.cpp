#include "core/match_join.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "datagen/dataset.hpp"
#include "experiments/protocol.hpp"

namespace {

using fbf::core::FieldClass;
using fbf::core::JoinConfig;
using fbf::core::JoinStats;
using fbf::core::match_strings;
using fbf::core::Method;

std::vector<std::string> small_clean() {
  return {"SMITH", "JONES", "TAYLOR", "BROWN", "WILSON"};
}

std::vector<std::string> small_error() {
  // One edit each, index-aligned.
  return {"SMIHT", "JONE", "TAYLORS", "BROWNE", "WILSON"};
}

JoinConfig base_config(Method method) {
  JoinConfig config;
  config.method = method;
  config.k = 1;
  config.field_class = FieldClass::kAlpha;
  return config;
}

TEST(MatchJoin, DlFindsAllDiagonalPairs) {
  const auto stats =
      match_strings(small_clean(), small_error(), base_config(Method::kDl));
  EXPECT_EQ(stats.pairs, 25u);
  EXPECT_EQ(stats.diagonal_matches, 5u);
  EXPECT_EQ(stats.type2(5), 0u);
}

TEST(MatchJoin, FilterLadderMethodsAgreeWithDl) {
  const auto baseline =
      match_strings(small_clean(), small_error(), base_config(Method::kDl));
  for (const Method method :
       {Method::kPdl, Method::kFdl, Method::kFpdl, Method::kLdl,
        Method::kLpdl, Method::kLfdl, Method::kLfpdl}) {
    const auto stats =
        match_strings(small_clean(), small_error(), base_config(method));
    EXPECT_EQ(stats.matches, baseline.matches)
        << fbf::core::method_name(method);
    EXPECT_EQ(stats.diagonal_matches, baseline.diagonal_matches)
        << fbf::core::method_name(method);
  }
}

TEST(MatchJoin, FilterOnlyMethodsAreSupersets) {
  const auto dl =
      match_strings(small_clean(), small_error(), base_config(Method::kDl));
  for (const Method method :
       {Method::kFbfOnly, Method::kLengthOnly, Method::kLfbfOnly}) {
    const auto stats =
        match_strings(small_clean(), small_error(), base_config(method));
    EXPECT_GE(stats.matches, dl.matches) << fbf::core::method_name(method);
    EXPECT_EQ(stats.diagonal_matches, 5u) << fbf::core::method_name(method);
  }
}

TEST(MatchJoin, CountersAccounting) {
  const auto stats =
      match_strings(small_clean(), small_error(), base_config(Method::kFpdl));
  EXPECT_EQ(stats.fbf_evaluated, 25u);        // every pair hits the filter
  EXPECT_EQ(stats.verify_calls, stats.fbf_pass);  // survivors get verified
  EXPECT_LE(stats.matches, stats.verify_calls);
  EXPECT_GT(stats.signature_gen_ms, 0.0);
}

TEST(MatchJoin, LengthThenFbfCountsFbfOnlyOnLengthSurvivors) {
  const auto stats =
      match_strings(small_clean(), small_error(), base_config(Method::kLfpdl));
  EXPECT_EQ(stats.fbf_evaluated, stats.length_pass);
  EXPECT_LE(stats.length_pass, stats.pairs);
}

TEST(MatchJoin, CollectMatchesReturnsPairs) {
  JoinConfig config = base_config(Method::kDl);
  config.collect_matches = true;
  const auto stats = match_strings(small_clean(), small_error(), config);
  EXPECT_EQ(stats.match_pairs.size(), stats.matches);
  // Every diagonal pair must appear.
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_NE(std::find(stats.match_pairs.begin(), stats.match_pairs.end(),
                        std::make_pair(i, i)),
              stats.match_pairs.end());
  }
}

TEST(MatchJoin, ThreadCountDoesNotChangeResults) {
  // The parallel join must be a pure performance knob.
  const auto dataset = fbf::datagen::build_paired_dataset(
      fbf::datagen::FieldKind::kLastName, 200, 77);
  for (const Method method : {Method::kDl, Method::kFpdl, Method::kLfpdl,
                              Method::kJaro, Method::kSoundex}) {
    JoinConfig config = base_config(method);
    config.threads = 1;
    const auto serial = match_strings(dataset.clean, dataset.error, config);
    config.threads = 4;
    const auto parallel = match_strings(dataset.clean, dataset.error, config);
    EXPECT_EQ(parallel.matches, serial.matches)
        << fbf::core::method_name(method);
    EXPECT_EQ(parallel.diagonal_matches, serial.diagonal_matches);
    EXPECT_EQ(parallel.fbf_pass, serial.fbf_pass);
    EXPECT_EQ(parallel.verify_calls, serial.verify_calls);
    EXPECT_EQ(parallel.length_pass, serial.length_pass);
  }
}

TEST(MatchJoin, JaroThresholdControlsMatches) {
  JoinConfig strict = base_config(Method::kJaro);
  strict.sim_threshold = 0.99;
  JoinConfig loose = base_config(Method::kJaro);
  loose.sim_threshold = 0.5;
  const auto strict_stats =
      match_strings(small_clean(), small_error(), strict);
  const auto loose_stats = match_strings(small_clean(), small_error(), loose);
  EXPECT_LE(strict_stats.matches, loose_stats.matches);
}

TEST(MatchJoin, SoundexPrecomputesCodes) {
  const auto stats = match_strings(small_clean(), small_error(),
                                   base_config(Method::kSoundex));
  EXPECT_GE(stats.signature_gen_ms, 0.0);
  // SMITH/SMIHT share a code; WILSON matches itself.
  EXPECT_GE(stats.diagonal_matches, 2u);
}

TEST(MatchJoin, EmptyInputsProduceEmptyStats) {
  const std::vector<std::string> empty;
  const auto stats = match_strings(empty, empty, base_config(Method::kDl));
  EXPECT_EQ(stats.pairs, 0u);
  EXPECT_EQ(stats.matches, 0u);
}

TEST(MatchJoin, AsymmetricListSizes) {
  const std::vector<std::string> left = {"SMITH", "JONES"};
  const std::vector<std::string> right = {"SMITH"};
  const auto stats = match_strings(left, right, base_config(Method::kFpdl));
  EXPECT_EQ(stats.pairs, 2u);
  EXPECT_EQ(stats.matches, 1u);
}

// On a realistic dataset: every FBF/length variant must reproduce DL's
// exact match set — the paper's zero-accuracy-loss claim at join level.
class JoinEquivalence
    : public ::testing::TestWithParam<fbf::datagen::FieldKind> {};

TEST_P(JoinEquivalence, FilteredMethodsLoseNothing) {
  const auto kind = GetParam();
  const auto dataset = fbf::datagen::build_paired_dataset(kind, 150, 99);
  fbf::experiments::ExperimentConfig exp;
  exp.k = 1;
  const auto base_join =
      fbf::experiments::make_join_config(kind, Method::kDl, exp);
  const auto baseline =
      match_strings(dataset.clean, dataset.error, base_join);
  for (const Method method :
       {Method::kPdl, Method::kFdl, Method::kFpdl, Method::kLfdl,
        Method::kLfpdl}) {
    auto join = fbf::experiments::make_join_config(kind, method, exp);
    const auto stats = match_strings(dataset.clean, dataset.error, join);
    EXPECT_EQ(stats.matches, baseline.matches)
        << fbf::core::method_name(method) << " on "
        << fbf::datagen::field_kind_name(kind);
    EXPECT_EQ(stats.diagonal_matches, baseline.diagonal_matches);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, JoinEquivalence,
    ::testing::Values(fbf::datagen::FieldKind::kFirstName,
                      fbf::datagen::FieldKind::kLastName,
                      fbf::datagen::FieldKind::kAddress,
                      fbf::datagen::FieldKind::kPhone,
                      fbf::datagen::FieldKind::kBirthDate,
                      fbf::datagen::FieldKind::kSsn),
    [](const auto& param_info) {
      return std::string(fbf::datagen::field_kind_name(param_info.param));
    });

}  // namespace
