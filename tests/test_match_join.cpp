#include "core/match_join.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "datagen/dataset.hpp"
#include "experiments/protocol.hpp"
#include "testenv.hpp"
#include "util/affinity.hpp"
#include "util/bitops.hpp"

namespace {

using fbf::core::FieldClass;
using fbf::core::JoinConfig;
using fbf::core::JoinStats;
using fbf::core::match_strings;
using fbf::core::Method;

std::vector<std::string> small_clean() {
  return {"SMITH", "JONES", "TAYLOR", "BROWN", "WILSON"};
}

std::vector<std::string> small_error() {
  // One edit each, index-aligned.
  return {"SMIHT", "JONE", "TAYLORS", "BROWNE", "WILSON"};
}

JoinConfig base_config(Method method) {
  JoinConfig config;
  config.method = method;
  config.k = 1;
  config.field_class = FieldClass::kAlpha;
  return config;
}

TEST(MatchJoin, DlFindsAllDiagonalPairs) {
  const auto stats =
      match_strings(small_clean(), small_error(), base_config(Method::kDl));
  EXPECT_EQ(stats.pairs, 25u);
  EXPECT_EQ(stats.diagonal_matches, 5u);
  EXPECT_EQ(stats.type2(5), 0u);
}

TEST(MatchJoin, FilterLadderMethodsAgreeWithDl) {
  const auto baseline =
      match_strings(small_clean(), small_error(), base_config(Method::kDl));
  for (const Method method :
       {Method::kPdl, Method::kFdl, Method::kFpdl, Method::kLdl,
        Method::kLpdl, Method::kLfdl, Method::kLfpdl}) {
    const auto stats =
        match_strings(small_clean(), small_error(), base_config(method));
    EXPECT_EQ(stats.matches, baseline.matches)
        << fbf::core::method_name(method);
    EXPECT_EQ(stats.diagonal_matches, baseline.diagonal_matches)
        << fbf::core::method_name(method);
  }
}

TEST(MatchJoin, FilterOnlyMethodsAreSupersets) {
  const auto dl =
      match_strings(small_clean(), small_error(), base_config(Method::kDl));
  for (const Method method :
       {Method::kFbfOnly, Method::kLengthOnly, Method::kLfbfOnly}) {
    const auto stats =
        match_strings(small_clean(), small_error(), base_config(method));
    EXPECT_GE(stats.matches, dl.matches) << fbf::core::method_name(method);
    EXPECT_EQ(stats.diagonal_matches, 5u) << fbf::core::method_name(method);
  }
}

TEST(MatchJoin, CountersAccounting) {
  // Dense-path counter identities (every pair hits the filter), so the
  // generation path must not be rerouted by a forced-generator CI leg.
  const fbf::testenv::ScopedForceGenerator clear_env(nullptr);
  const auto stats =
      match_strings(small_clean(), small_error(), base_config(Method::kFpdl));
  EXPECT_EQ(stats.fbf_evaluated, 25u);        // every pair hits the filter
  EXPECT_EQ(stats.verify_calls, stats.fbf_pass);  // survivors get verified
  EXPECT_LE(stats.matches, stats.verify_calls);
  EXPECT_GT(stats.signature_gen_ms, 0.0);
}

TEST(MatchJoin, LengthThenFbfCountsFbfOnlyOnLengthSurvivors) {
  const auto stats =
      match_strings(small_clean(), small_error(), base_config(Method::kLfpdl));
  EXPECT_EQ(stats.fbf_evaluated, stats.length_pass);
  EXPECT_LE(stats.length_pass, stats.pairs);
}

TEST(MatchJoin, CollectMatchesReturnsPairs) {
  JoinConfig config = base_config(Method::kDl);
  config.collect_matches = true;
  const auto stats = match_strings(small_clean(), small_error(), config);
  EXPECT_EQ(stats.match_pairs.size(), stats.matches);
  // Every diagonal pair must appear.
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_NE(std::find(stats.match_pairs.begin(), stats.match_pairs.end(),
                        std::make_pair(i, i)),
              stats.match_pairs.end());
  }
}

TEST(MatchJoin, ThreadCountDoesNotChangeResults) {
  // The parallel join must be a pure performance knob.
  const auto dataset = fbf::datagen::build_paired_dataset(
      fbf::datagen::FieldKind::kLastName, 200, 77).value();
  for (const Method method : {Method::kDl, Method::kFpdl, Method::kLfpdl,
                              Method::kJaro, Method::kSoundex}) {
    JoinConfig config = base_config(method);
    config.threads = 1;
    const auto serial = match_strings(dataset.clean, dataset.error, config);
    config.threads = 4;
    const auto parallel = match_strings(dataset.clean, dataset.error, config);
    EXPECT_EQ(parallel.matches, serial.matches)
        << fbf::core::method_name(method);
    EXPECT_EQ(parallel.diagonal_matches, serial.diagonal_matches);
    EXPECT_EQ(parallel.fbf_pass, serial.fbf_pass);
    EXPECT_EQ(parallel.verify_calls, serial.verify_calls);
    EXPECT_EQ(parallel.length_pass, serial.length_pass);
  }
}

TEST(MatchJoin, JaroThresholdControlsMatches) {
  JoinConfig strict = base_config(Method::kJaro);
  strict.sim_threshold = 0.99;
  JoinConfig loose = base_config(Method::kJaro);
  loose.sim_threshold = 0.5;
  const auto strict_stats =
      match_strings(small_clean(), small_error(), strict);
  const auto loose_stats = match_strings(small_clean(), small_error(), loose);
  EXPECT_LE(strict_stats.matches, loose_stats.matches);
}

TEST(MatchJoin, SoundexPrecomputesCodes) {
  const auto stats = match_strings(small_clean(), small_error(),
                                   base_config(Method::kSoundex));
  EXPECT_GE(stats.signature_gen_ms, 0.0);
  // SMITH/SMIHT share a code; WILSON matches itself.
  EXPECT_GE(stats.diagonal_matches, 2u);
}

TEST(MatchJoin, EmptyInputsProduceEmptyStats) {
  const std::vector<std::string> empty;
  const auto stats = match_strings(empty, empty, base_config(Method::kDl));
  EXPECT_EQ(stats.pairs, 0u);
  EXPECT_EQ(stats.matches, 0u);
}

TEST(MatchJoin, AsymmetricListSizes) {
  const std::vector<std::string> left = {"SMITH", "JONES"};
  const std::vector<std::string> right = {"SMITH"};
  const auto stats = match_strings(left, right, base_config(Method::kFpdl));
  EXPECT_EQ(stats.pairs, 2u);
  EXPECT_EQ(stats.matches, 1u);
}

// On a realistic dataset: every FBF/length variant must reproduce DL's
// exact match set — the paper's zero-accuracy-loss claim at join level.
class JoinEquivalence
    : public ::testing::TestWithParam<fbf::datagen::FieldKind> {};

TEST_P(JoinEquivalence, FilteredMethodsLoseNothing) {
  const auto kind = GetParam();
  const auto dataset = fbf::datagen::build_paired_dataset(kind, 150, 99).value();
  fbf::experiments::ExperimentConfig exp;
  exp.k = 1;
  const auto base_join =
      fbf::experiments::make_join_config(kind, Method::kDl, exp);
  const auto baseline =
      match_strings(dataset.clean, dataset.error, base_join);
  for (const Method method :
       {Method::kPdl, Method::kFdl, Method::kFpdl, Method::kLfdl,
        Method::kLfpdl}) {
    auto join = fbf::experiments::make_join_config(kind, method, exp);
    const auto stats = match_strings(dataset.clean, dataset.error, join);
    EXPECT_EQ(stats.matches, baseline.matches)
        << fbf::core::method_name(method) << " on "
        << fbf::datagen::field_kind_name(kind);
    EXPECT_EQ(stats.diagonal_matches, baseline.diagonal_matches);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, JoinEquivalence,
    ::testing::Values(fbf::datagen::FieldKind::kFirstName,
                      fbf::datagen::FieldKind::kLastName,
                      fbf::datagen::FieldKind::kAddress,
                      fbf::datagen::FieldKind::kPhone,
                      fbf::datagen::FieldKind::kBirthDate,
                      fbf::datagen::FieldKind::kSsn),
    [](const auto& param_info) {
      return std::string(fbf::datagen::field_kind_name(param_info.param));
    });

void expect_same_stats(const JoinStats& a, const JoinStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.pairs, b.pairs) << label;
  EXPECT_EQ(a.length_pass, b.length_pass) << label;
  EXPECT_EQ(a.fbf_evaluated, b.fbf_evaluated) << label;
  EXPECT_EQ(a.fbf_pass, b.fbf_pass) << label;
  EXPECT_EQ(a.verify_calls, b.verify_calls) << label;
  EXPECT_EQ(a.matches, b.matches) << label;
  EXPECT_EQ(a.diagonal_matches, b.diagonal_matches) << label;
  EXPECT_EQ(a.match_pairs, b.match_pairs) << label;
}

// The tentpole property: the packed SoA + batched-kernel tiled join must
// produce IDENTICAL counters and match sets to the classic per-pair scan
// for every field class, threshold, popcount/kernel strategy and thread
// count.  The scan with packed=false is the reference.
TEST(PackedTiledJoin, IdenticalToScalarScanEverywhere) {
  using fbf::util::PopcountKind;
  const struct {
    fbf::datagen::FieldKind kind;
    std::size_t n;
  } datasets[] = {{fbf::datagen::FieldKind::kSsn, 180},
                  {fbf::datagen::FieldKind::kLastName, 180},
                  {fbf::datagen::FieldKind::kAddress, 120}};
  for (const auto& d : datasets) {
    const auto dataset = fbf::datagen::build_paired_dataset(d.kind, d.n, 321).value();
    for (const Method method :
         {Method::kFpdl, Method::kFdl, Method::kLfpdl, Method::kFbfOnly,
          Method::kLfbfOnly}) {
      for (const int k : {1, 2, 3}) {
        fbf::experiments::ExperimentConfig exp;
        exp.k = k;
        auto reference_join =
            fbf::experiments::make_join_config(d.kind, method, exp);
        reference_join.collect_matches = true;
        reference_join.packed = false;
        const auto reference =
            match_strings(dataset.clean, dataset.error, reference_join);
        for (const PopcountKind popcount :
             {PopcountKind::kWegner, PopcountKind::kHardware,
              PopcountKind::kLut, PopcountKind::kBatched}) {
          for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                            std::size_t{7}}) {
            auto join = reference_join;
            join.packed = true;
            join.popcount = popcount;
            join.threads = threads;
            const auto stats =
                match_strings(dataset.clean, dataset.error, join);
            expect_same_stats(
                reference, stats,
                std::string(fbf::datagen::field_kind_name(d.kind)) + "/" +
                    fbf::core::method_name(method) + " k=" +
                    std::to_string(k) + " pc=" +
                    fbf::util::popcount_kind_name(popcount) + " t=" +
                    std::to_string(threads));
          }
        }
      }
    }
  }
}

// Unsupported layouts (alpha l > 2 overflows the 64-bit plane) must fall
// back to the per-pair scan transparently — same results, scan kernel.
TEST(PackedTiledJoin, WideAlphaFallsBackToScan) {
  const auto dataset = fbf::datagen::build_paired_dataset(
      fbf::datagen::FieldKind::kLastName, 150, 55).value();
  for (const int alpha_words : {3, 4}) {
    JoinConfig reference = base_config(Method::kFpdl);
    reference.alpha_words = alpha_words;
    reference.collect_matches = true;
    reference.packed = false;
    const auto ref_stats =
        match_strings(dataset.clean, dataset.error, reference);
    JoinConfig join = reference;
    join.packed = true;  // requested but unsupported -> scan fallback
    const auto stats = match_strings(dataset.clean, dataset.error, join);
    expect_same_stats(ref_stats, stats,
                      "alpha_words=" + std::to_string(alpha_words));
    EXPECT_STREQ(stats.kernel, "pair-scalar");
  }
  // Supported layout reports a tile kernel by contrast.
  JoinConfig packed = base_config(Method::kFpdl);
  const auto stats = match_strings(dataset.clean, dataset.error, packed);
  EXPECT_TRUE(std::string(stats.kernel).starts_with("tile-"))
      << stats.kernel;
}

// Regression for the pre-tiling scheduler: chunking by rows of S capped
// parallelism at |S|, so a 2 x 100,000 probe join ran near-serial.  Tiles
// are the work unit now; a skewed join must schedule at least as many
// units as threads (and produce correct results).
TEST(PackedTiledJoin, SkewedJoinSchedulesManyWorkUnits) {
  constexpr std::size_t kRight = 100000;
  ASSERT_GE(fbf::core::join_tile_count(2, kRight), 256u);
  const auto dataset = fbf::datagen::build_paired_dataset(
      fbf::datagen::FieldKind::kSsn, kRight, 7).value();
  const std::vector<std::string> probes = {dataset.clean[0],
                                           dataset.clean[1]};
  JoinConfig config = base_config(Method::kFbfOnly);
  config.field_class = FieldClass::kNumeric;
  config.threads = 4;
  const auto stats = match_strings(probes, dataset.error, config);
  EXPECT_EQ(stats.pairs, 2u * kRight);
  EXPECT_GE(stats.tiles, config.threads)
      << "skewed join degenerated below the thread count";
  // Same counters as the serial run.
  JoinConfig serial = config;
  serial.threads = 1;
  const auto serial_stats = match_strings(probes, dataset.error, serial);
  EXPECT_EQ(stats.fbf_pass, serial_stats.fbf_pass);
  EXPECT_EQ(stats.matches, serial_stats.matches);
}

// The documented ordering guarantee: collect_matches output is sorted
// ascending by (i, j) and byte-identical across thread counts.
TEST(PackedTiledJoin, MatchPairsSortedAndThreadInvariant) {
  const auto dataset = fbf::datagen::build_paired_dataset(
      fbf::datagen::FieldKind::kLastName, 300, 13).value();
  for (const Method method : {Method::kFpdl, Method::kJaro}) {
    JoinConfig config = base_config(method);
    config.collect_matches = true;
    config.threads = 1;
    const auto serial = match_strings(dataset.clean, dataset.error, config);
    EXPECT_TRUE(std::is_sorted(serial.match_pairs.begin(),
                               serial.match_pairs.end()));
    for (const std::size_t threads : {std::size_t{4}, std::size_t{7}}) {
      config.threads = threads;
      const auto parallel =
          match_strings(dataset.clean, dataset.error, config);
      EXPECT_EQ(parallel.match_pairs, serial.match_pairs)
          << fbf::core::method_name(method) << " threads=" << threads;
    }
  }
}

// The affinity (row-ownership) schedule must be a pure scheduling change:
// same counters, same sorted match set as the shared-queue schedule, for
// every thread count, on both the packed-tile and per-pair scan paths.
TEST(AffinityJoin, OnOffSchedulesAreByteIdentical) {
  using fbf::core::TileAffinity;
  const struct {
    fbf::datagen::FieldKind kind;
    Method method;
  } cases[] = {{fbf::datagen::FieldKind::kLastName, Method::kFpdl},
               {fbf::datagen::FieldKind::kSsn, Method::kLfpdl},
               {fbf::datagen::FieldKind::kAddress, Method::kFbfOnly}};
  for (const auto& c : cases) {
    const auto dataset =
        fbf::datagen::build_paired_dataset(c.kind, 400, 17).value();
    fbf::experiments::ExperimentConfig exp;
    exp.k = 1;
    auto off = fbf::experiments::make_join_config(c.kind, c.method, exp);
    off.collect_matches = true;
    off.affinity = TileAffinity::kOff;
    for (const bool packed : {true, false}) {
      off.packed = packed;
      off.threads = 1;
      const auto reference = match_strings(dataset.clean, dataset.error, off);
      EXPECT_FALSE(reference.affinity_schedule);
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        auto on = off;
        on.affinity = TileAffinity::kOn;
        on.threads = threads;
        const auto stats = match_strings(dataset.clean, dataset.error, on);
        expect_same_stats(
            reference, stats,
            std::string(fbf::datagen::field_kind_name(c.kind)) + "/" +
                fbf::core::method_name(c.method) +
                (packed ? " packed" : " scan") + " t=" +
                std::to_string(threads));
      }
    }
  }
}

// stats.affinity_schedule reports exactly when the row-ownership schedule
// ran: kOn with >= 2 effective workers.  A single worker would pin the
// caller thread (parallel_chunks runs one chunk inline), so kOn at
// threads=1 must stay off; kOff always stays off; kAuto engages only on
// multi-NUMA machines, so on a single-node box it equals kOff.
TEST(AffinityJoin, ScheduleFlagReflectsPolicy) {
  using fbf::core::TileAffinity;
  const auto dataset = fbf::datagen::build_paired_dataset(
      fbf::datagen::FieldKind::kLastName, 600, 29).value();
  JoinConfig config = base_config(Method::kFpdl);
  config.threads = 4;

  config.affinity = TileAffinity::kOn;
  EXPECT_TRUE(
      match_strings(dataset.clean, dataset.error, config).affinity_schedule);

  config.threads = 1;
  EXPECT_FALSE(
      match_strings(dataset.clean, dataset.error, config).affinity_schedule)
      << "single worker must not pin the caller thread";

  config.threads = 4;
  config.affinity = TileAffinity::kOff;
  EXPECT_FALSE(
      match_strings(dataset.clean, dataset.error, config).affinity_schedule);

  config.affinity = TileAffinity::kAuto;
  const auto auto_stats = match_strings(dataset.clean, dataset.error, config);
  EXPECT_EQ(auto_stats.affinity_schedule,
            fbf::util::numa_node_count() > 1);
}

// Skewed shapes (fewer tile rows than threads) cap the worker count at
// the row-tile count; the schedule must still cover every tile exactly
// once and keep counters identical.
TEST(AffinityJoin, SkewedShapesStayCorrect) {
  using fbf::core::TileAffinity;
  const auto dataset = fbf::datagen::build_paired_dataset(
      fbf::datagen::FieldKind::kSsn, 2000, 41).value();
  // 3 probes -> a single tile row; 2000 columns -> 8 col tiles.
  const std::vector<std::string> probes = {
      dataset.clean[0], dataset.clean[1], dataset.clean[2]};
  JoinConfig config = base_config(Method::kFbfOnly);
  config.field_class = FieldClass::kNumeric;
  config.collect_matches = true;
  config.threads = 4;
  config.affinity = TileAffinity::kOff;
  const auto reference = match_strings(probes, dataset.error, config);
  config.affinity = TileAffinity::kOn;
  const auto stats = match_strings(probes, dataset.error, config);
  expect_same_stats(reference, stats, "skewed affinity join");
  EXPECT_EQ(stats.pairs, 3u * 2000u);
}

}  // namespace
