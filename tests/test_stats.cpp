#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace fbf::util;

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, VarianceBasics) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{4.0}), 0.0);
  // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, StddevIsSqrtVariance) {
  const std::vector<double> xs = {1.0, 3.0, 5.0};
  EXPECT_NEAR(stddev(xs) * stddev(xs), variance(xs), 1e-12);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.5, -1.0, 7.25};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.25);
}

TEST(Stats, TrimmedMeanDropsOneMinAndOneMax) {
  // The paper's 5-run protocol: drop fastest and slowest, average rest.
  const std::vector<double> runs = {10.0, 100.0, 11.0, 12.0, 1.0};
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_minmax(runs), (10.0 + 11.0 + 12.0) / 3);
}

TEST(Stats, TrimmedMeanFallsBackBelowThree) {
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_minmax(std::vector<double>{4.0, 8.0}),
                   6.0);
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_minmax(std::vector<double>{4.0}), 4.0);
}

TEST(Stats, TrimmedMeanDropsOnlyOneDuplicateExtreme) {
  const std::vector<double> runs = {1.0, 1.0, 2.0, 3.0, 3.0};
  // One 1.0 and one 3.0 removed; mean of {1, 2, 3} = 2.
  EXPECT_DOUBLE_EQ(trimmed_mean_drop_minmax(runs), 2.0);
}

TEST(Stats, SummarizeBundlesAllFields) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_GT(s.stddev, 0.0);
}

}  // namespace
