#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "linkage/csv_io.hpp"
#include "linkage/person_gen.hpp"
#include "util/rng.hpp"

namespace {

using fbf::util::csv_escape;
using fbf::util::CsvRow;
using fbf::util::read_csv;
using fbf::util::read_csv_row;
using fbf::util::write_csv_row;

TEST(Csv, SimpleRow) {
  std::istringstream in("a,b,c\n");
  const auto row = read_csv_row(in);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (CsvRow{"a", "b", "c"}));
  EXPECT_FALSE(read_csv_row(in).has_value());
}

TEST(Csv, QuotedFieldWithComma) {
  std::istringstream in("\"SMITH, JR\",JOHN\n");
  const auto row = read_csv_row(in);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0], "SMITH, JR");
  EXPECT_EQ((*row)[1], "JOHN");
}

TEST(Csv, DoubledQuotes) {
  std::istringstream in("\"O\"\"BRIEN\"\n");
  const auto row = read_csv_row(in);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0], "O\"BRIEN");
}

TEST(Csv, EmbeddedNewlineInsideQuotes) {
  std::istringstream in("\"line1\nline2\",x\n");
  const auto row = read_csv_row(in);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0], "line1\nline2");
}

TEST(Csv, CrlfTolerated) {
  std::istringstream in("a,b\r\nc,d\r\n");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(Csv, LastLineWithoutNewline) {
  std::istringstream in("a,b\nc,d");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(Csv, EmptyFieldsPreserved) {
  std::istringstream in(",,\n");
  const auto row = read_csv_row(in);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->size(), 3u);
  for (const auto& f : *row) {
    EXPECT_TRUE(f.empty());
  }
}

TEST(Csv, SkipHeader) {
  std::istringstream in("h1,h2\nv1,v2\n");
  const auto rows = read_csv(in, /*skip_header=*/true);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "v1");
}

TEST(Csv, EscapeRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("has\nnewline"), "\"has\nnewline\"");
}

TEST(Csv, RoundTripArbitraryContent) {
  const std::vector<CsvRow> rows = {
      {"a", "b,c", "d\"e"}, {"", "line\nbreak", "plain"}};
  std::ostringstream out;
  for (const auto& row : rows) {
    write_csv_row(out, row);
  }
  std::istringstream in(out.str());
  const auto parsed = read_csv(in);
  EXPECT_EQ(parsed, rows);
}

TEST(PersonCsv, RoundTrip) {
  fbf::util::Rng rng(77);
  const auto people = fbf::linkage::generate_people(50, rng);
  std::ostringstream out;
  fbf::linkage::write_person_csv(out, people);
  std::istringstream in(out.str());
  const auto load = fbf::linkage::read_person_csv(in);
  ASSERT_TRUE(load.ok()) << load.status().to_string();
  const auto& parsed = *load;
  ASSERT_EQ(parsed.size(), people.size());
  for (std::size_t i = 0; i < people.size(); ++i) {
    EXPECT_EQ(parsed[i].id, people[i].id);
    for (const auto field : fbf::linkage::all_record_fields()) {
      EXPECT_EQ(parsed[i].field(field), people[i].field(field));
    }
  }
}

TEST(PersonCsv, MissingFieldsRoundTrip) {
  fbf::linkage::PersonRecord r;
  r.id = 7;
  r.last_name = "SMITH";  // everything else missing
  std::ostringstream out;
  fbf::linkage::write_person_csv(out, std::vector{r});
  std::istringstream in(out.str());
  const auto load = fbf::linkage::read_person_csv(in);
  ASSERT_TRUE(load.ok()) << load.status().to_string();
  const auto& parsed = *load;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].id, 7u);
  EXPECT_EQ(parsed[0].last_name, "SMITH");
  EXPECT_TRUE(parsed[0].ssn.empty());
}

TEST(PersonCsv, StrictRejectsMalformedRows) {
  std::istringstream bad_arity("id,first_name\n1,JOHN\n");
  const auto arity_load = fbf::linkage::read_person_csv(bad_arity);
  ASSERT_FALSE(arity_load.ok());
  EXPECT_EQ(arity_load.status().code(),
            fbf::util::StatusCode::kInvalidArgument);
  std::istringstream bad_id(
      "h\nnot_a_number,a,b,c,d,e,f,g\n");
  const auto id_load = fbf::linkage::read_person_csv(bad_id);
  ASSERT_FALSE(id_load.ok());
  EXPECT_EQ(id_load.status().code(),
            fbf::util::StatusCode::kInvalidArgument);
}

TEST(PersonCsv, LenientSkipsMalformedRows) {
  std::istringstream in(
      "h\nnot_a_number,a,b,c,d,e,f,g\n3,A,B,C,D,M,E,F\n");
  const auto load = fbf::linkage::read_person_csv(in, /*strict=*/false);
  ASSERT_TRUE(load.ok()) << load.status().to_string();
  ASSERT_EQ(load->size(), 1u);
  EXPECT_EQ((*load)[0].id, 3u);
}

TEST(CsvRowReader, TracksPhysicalLineNumbers) {
  // Row 3 spans two physical lines (quoted newline); the reader must
  // report the line each row STARTS on, not a logical row index.
  std::istringstream in("a,b\nc,d\n\"x\ny\",z\nlast,row\n");
  fbf::util::CsvRowReader reader(in);
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.row_line(), 1u);
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.row_line(), 2u);
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.row_line(), 3u);
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.row_line(), 5u);  // multi-line row pushed us to line 5
  EXPECT_FALSE(reader.next().has_value());
}

TEST(PersonCsv, StrictErrorNamesTheLine) {
  std::istringstream bad_id("h\n1,A,B,C,D,M,E,F\nnot_a_number,a,b,c,d,e,f,g\n");
  const auto load = fbf::linkage::read_person_csv(bad_id);
  ASSERT_FALSE(load.ok());
  EXPECT_NE(load.status().message().find("line 3"), std::string::npos)
      << load.status().to_string();
}

TEST(PersonCsv, QuarantineCollectsBadRowsWithLinesAndReasons) {
  // Interleaved good/bad rows: every valid record survives, every bad
  // row lands in quarantine with its physical line number and a reason,
  // and nothing throws.
  std::istringstream in(
      "id,ln,fn,mn,sx,dob,ssn,zip\n"  // line 1: header
      "1,SMITH,JOHN,Q,M,1970,123,44\n"      // line 2: good
      "oops,SMITH,JANE,Q,F,1971,124,44\n"   // line 3: bad id
      "2,DOE,JANE,Q,F,1971,124,44\n"        // line 4: good
      "3,SHORT\n"                           // line 5: bad arity
      "4,ROE,RICK,R,M,1980,125,55\n");      // line 6: good
  const auto load = fbf::linkage::read_person_csv_quarantine(in);
  ASSERT_TRUE(load.ok()) << load.status().to_string();
  EXPECT_EQ(load->rows_read, 5u);
  EXPECT_FALSE(load->clean());
  ASSERT_EQ(load->records.size(), 3u);
  EXPECT_EQ(load->records[0].id, 1u);
  EXPECT_EQ(load->records[1].id, 2u);
  EXPECT_EQ(load->records[2].id, 4u);
  ASSERT_EQ(load->quarantined.size(), 2u);
  EXPECT_EQ(load->quarantined[0].line, 3u);
  EXPECT_NE(load->quarantined[0].reason.find("non-numeric id"),
            std::string::npos);
  EXPECT_EQ(load->quarantined[0].fields[0], "oops");
  EXPECT_EQ(load->quarantined[1].line, 5u);
  EXPECT_NE(load->quarantined[1].reason.find("expected >= 8 columns"),
            std::string::npos);
}

TEST(PersonCsv, QuarantineOfCleanFileIsEmpty) {
  fbf::util::Rng rng(31);
  const auto people = fbf::linkage::generate_people(20, rng);
  std::ostringstream out;
  fbf::linkage::write_person_csv(out, people);
  std::istringstream in(out.str());
  const auto load = fbf::linkage::read_person_csv_quarantine(in);
  ASSERT_TRUE(load.ok());
  EXPECT_TRUE(load->clean());
  EXPECT_EQ(load->records.size(), 20u);
  EXPECT_EQ(load->rows_read, 20u);
}

TEST(PersonCsv, AllRowsBadStillReturnsInsteadOfThrowing) {
  std::istringstream in("h\nx\ny\nz\n");
  const auto load = fbf::linkage::read_person_csv_quarantine(in);
  ASSERT_TRUE(load.ok());
  EXPECT_TRUE(load->records.empty());
  ASSERT_EQ(load->quarantined.size(), 3u);
  EXPECT_EQ(load->quarantined[0].line, 2u);
  EXPECT_EQ(load->quarantined[2].line, 4u);
}

TEST(PersonCsv, RepairsDoubledDelimiterRows) {
  // ",1,..." is a doubled leading delimiter: 9 columns, exactly one
  // empty.  Dropping the empty restores the 8-column shape, so the row is
  // auto-repaired instead of quarantined.
  std::istringstream in(
      "h\n"
      ",1,JOHN,SMITH,1801 N BROAD ST,2155551234,M,123121234,02251980\n"
      "2,MARY,JONES,44 ELM AVE,2155559876,F,987654321,07141975\n");
  const auto load = fbf::linkage::read_person_csv_quarantine(in);
  ASSERT_TRUE(load.ok());
  EXPECT_TRUE(load->clean());
  EXPECT_EQ(load->repaired, 1u);
  ASSERT_EQ(load->records.size(), 2u);
  EXPECT_EQ(load->records[0].id, 1u);
  EXPECT_EQ(load->records[0].first_name, "JOHN");
  EXPECT_EQ(load->records[0].birth_date, "02251980");
  EXPECT_EQ(load->records[1].id, 2u);
}

TEST(PersonCsv, RepairsMultipleDoublings) {
  // Two doublings -> 10 columns, two empties; both dropped.
  std::istringstream in(
      "h\n"
      ",,3,ANNA,LEE,9 OAK ST,2155550000,F,111223333,01011990\n");
  const auto load = fbf::linkage::read_person_csv_quarantine(in);
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->repaired, 1u);
  ASSERT_EQ(load->records.size(), 1u);
  EXPECT_EQ(load->records[0].id, 3u);
  EXPECT_EQ(load->records[0].last_name, "LEE");
}

TEST(PersonCsv, AmbiguousSurplusRowStaysQuarantined) {
  // 9 columns but *two* empty cells: one could be a legitimately missing
  // field, so dropping empties is ambiguous — the operator decides.
  std::istringstream in(
      "h\n"
      ",1,,SMITH,1801 N BROAD ST,2155551234,M,123121234,02251980\n");
  const auto load = fbf::linkage::read_person_csv_quarantine(in);
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->repaired, 0u);
  EXPECT_TRUE(load->records.empty());
  ASSERT_EQ(load->quarantined.size(), 1u);
  EXPECT_EQ(load->quarantined[0].line, 2u);
}

TEST(PersonCsv, RepairThatStillFailsParseIsQuarantined) {
  // Dropping the empty leaves a non-numeric id; the repair must not
  // accept a row that still fails validation.
  std::istringstream in(
      "h\n"
      ",oops,JOHN,SMITH,1801 N BROAD ST,2155551234,M,123121234,02251980\n");
  const auto load = fbf::linkage::read_person_csv_quarantine(in);
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->repaired, 0u);
  ASSERT_EQ(load->quarantined.size(), 1u);
  EXPECT_NE(load->quarantined[0].reason.find("non-numeric id"),
            std::string::npos);
}

TEST(PersonCsv, StrictModeAcceptsRepairedRows) {
  // Repair runs in both load modes: a strict load with only repairable
  // damage succeeds instead of failing on the first bad row.
  std::istringstream in(
      "h\n"
      ",5,KIM,PARK,12 PINE RD,2155552222,F,555667777,12241988\n");
  const auto load = fbf::linkage::read_person_csv(in, /*strict=*/true);
  ASSERT_TRUE(load.ok()) << load.status().to_string();
  ASSERT_EQ(load->size(), 1u);
  EXPECT_EQ((*load)[0].id, 5u);
  EXPECT_EQ((*load)[0].first_name, "KIM");
}

TEST(PersonCsv, LenientOutParamReportsSkips) {
  std::istringstream in(
      "h\nnot_a_number,a,b,c,d,e,f,g\n3,A,B,C,D,M,E,F\nbad\n");
  std::vector<fbf::linkage::QuarantinedRow> quarantine;
  const auto load =
      fbf::linkage::read_person_csv(in, /*strict=*/false, &quarantine);
  ASSERT_TRUE(load.ok()) << load.status().to_string();
  ASSERT_EQ(load->size(), 1u);
  ASSERT_EQ(quarantine.size(), 2u);
  EXPECT_EQ(quarantine[0].line, 2u);
  EXPECT_EQ(quarantine[1].line, 4u);
}

}  // namespace
