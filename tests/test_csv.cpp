#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "linkage/csv_io.hpp"
#include "linkage/person_gen.hpp"
#include "util/rng.hpp"

namespace {

using fbf::util::csv_escape;
using fbf::util::CsvRow;
using fbf::util::read_csv;
using fbf::util::read_csv_row;
using fbf::util::write_csv_row;

TEST(Csv, SimpleRow) {
  std::istringstream in("a,b,c\n");
  const auto row = read_csv_row(in);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(*row, (CsvRow{"a", "b", "c"}));
  EXPECT_FALSE(read_csv_row(in).has_value());
}

TEST(Csv, QuotedFieldWithComma) {
  std::istringstream in("\"SMITH, JR\",JOHN\n");
  const auto row = read_csv_row(in);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0], "SMITH, JR");
  EXPECT_EQ((*row)[1], "JOHN");
}

TEST(Csv, DoubledQuotes) {
  std::istringstream in("\"O\"\"BRIEN\"\n");
  const auto row = read_csv_row(in);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0], "O\"BRIEN");
}

TEST(Csv, EmbeddedNewlineInsideQuotes) {
  std::istringstream in("\"line1\nline2\",x\n");
  const auto row = read_csv_row(in);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0], "line1\nline2");
}

TEST(Csv, CrlfTolerated) {
  std::istringstream in("a,b\r\nc,d\r\n");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(Csv, LastLineWithoutNewline) {
  std::istringstream in("a,b\nc,d");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(Csv, EmptyFieldsPreserved) {
  std::istringstream in(",,\n");
  const auto row = read_csv_row(in);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->size(), 3u);
  for (const auto& f : *row) {
    EXPECT_TRUE(f.empty());
  }
}

TEST(Csv, SkipHeader) {
  std::istringstream in("h1,h2\nv1,v2\n");
  const auto rows = read_csv(in, /*skip_header=*/true);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "v1");
}

TEST(Csv, EscapeRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("has\nnewline"), "\"has\nnewline\"");
}

TEST(Csv, RoundTripArbitraryContent) {
  const std::vector<CsvRow> rows = {
      {"a", "b,c", "d\"e"}, {"", "line\nbreak", "plain"}};
  std::ostringstream out;
  for (const auto& row : rows) {
    write_csv_row(out, row);
  }
  std::istringstream in(out.str());
  const auto parsed = read_csv(in);
  EXPECT_EQ(parsed, rows);
}

TEST(PersonCsv, RoundTrip) {
  fbf::util::Rng rng(77);
  const auto people = fbf::linkage::generate_people(50, rng);
  std::ostringstream out;
  fbf::linkage::write_person_csv(out, people);
  std::istringstream in(out.str());
  const auto parsed = fbf::linkage::read_person_csv(in);
  ASSERT_EQ(parsed.size(), people.size());
  for (std::size_t i = 0; i < people.size(); ++i) {
    EXPECT_EQ(parsed[i].id, people[i].id);
    for (const auto field : fbf::linkage::all_record_fields()) {
      EXPECT_EQ(parsed[i].field(field), people[i].field(field));
    }
  }
}

TEST(PersonCsv, MissingFieldsRoundTrip) {
  fbf::linkage::PersonRecord r;
  r.id = 7;
  r.last_name = "SMITH";  // everything else missing
  std::ostringstream out;
  fbf::linkage::write_person_csv(out, std::vector{r});
  std::istringstream in(out.str());
  const auto parsed = fbf::linkage::read_person_csv(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].id, 7u);
  EXPECT_EQ(parsed[0].last_name, "SMITH");
  EXPECT_TRUE(parsed[0].ssn.empty());
}

TEST(PersonCsv, StrictRejectsMalformedRows) {
  std::istringstream bad_arity("id,first_name\n1,JOHN\n");
  EXPECT_THROW(fbf::linkage::read_person_csv(bad_arity),
               std::runtime_error);
  std::istringstream bad_id(
      "h\nnot_a_number,a,b,c,d,e,f,g\n");
  EXPECT_THROW(fbf::linkage::read_person_csv(bad_id), std::runtime_error);
}

TEST(PersonCsv, LenientSkipsMalformedRows) {
  std::istringstream in(
      "h\nnot_a_number,a,b,c,d,e,f,g\n3,A,B,C,D,M,E,F\n");
  const auto parsed = fbf::linkage::read_person_csv(in, /*strict=*/false);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].id, 3u);
}

}  // namespace
