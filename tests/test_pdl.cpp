#include "metrics/pdl.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "metrics/damerau.hpp"
#include "util/rng.hpp"

namespace {

using fbf::metrics::bounded_dl_distance;
using fbf::metrics::dl_distance;
using fbf::metrics::pdl_within;
using fbf::metrics::within_edits;

TEST(Pdl, PaperExamples) {
  // Fig. 2: PDL("SUNDAY", "SATURDAY", 2) — distance 3, so FALSE.
  EXPECT_FALSE(pdl_within("SUNDAY", "SATURDAY", 2));
  EXPECT_TRUE(pdl_within("SUNDAY", "SATURDAY", 3));
  // k=1 terminates immediately: abs(6-8) = 2 > 1.
  EXPECT_FALSE(pdl_within("SUNDAY", "SATURDAY", 1));
}

TEST(Pdl, LengthPrefilter) {
  EXPECT_FALSE(pdl_within("JOE", "JOSEF", 1));  // §2.5 example: lengths 3 vs 5
  EXPECT_TRUE(pdl_within("JOE", "JOSE", 1));
  EXPECT_TRUE(pdl_within("JOSE", "JOSEF", 1));
}

TEST(Pdl, EmptyStringQuirkFaithfulToAlgorithm2) {
  // Algorithm 2 Step 1 returns FALSE for any empty operand, even though
  // DL("", "A") = 1 <= 1.  pdl_within reproduces the paper exactly...
  EXPECT_FALSE(pdl_within("", "A", 1));
  EXPECT_FALSE(pdl_within("A", "", 1));
  EXPECT_FALSE(pdl_within("", "", 1));
  // ...while within_edits regularizes the boundary for library use.
  EXPECT_TRUE(within_edits("", "A", 1));
  EXPECT_TRUE(within_edits("", "", 0));
  EXPECT_FALSE(within_edits("", "AB", 1));
}

TEST(Pdl, NegativeThresholdAlwaysFalse) {
  EXPECT_FALSE(pdl_within("A", "A", -1));
  EXPECT_FALSE(within_edits("A", "A", -1));
  EXPECT_FALSE(bounded_dl_distance("A", "A", -1).has_value());
}

TEST(Pdl, TranspositionWithinBand) {
  EXPECT_TRUE(pdl_within("SMITH", "SMIHT", 1));
  EXPECT_TRUE(pdl_within("8005551212", "8005551221", 1));
}

TEST(Pdl, ZeroThresholdMeansEquality) {
  EXPECT_TRUE(pdl_within("SMITH", "SMITH", 0));
  EXPECT_FALSE(pdl_within("SMITH", "SMYTH", 0));
}

TEST(BoundedDl, ReturnsExactDistanceWithinThreshold) {
  EXPECT_EQ(bounded_dl_distance("SATURDAY", "SUNDAY", 3), 3);
  EXPECT_EQ(bounded_dl_distance("SMITH", "SMITH", 2), 0);
  EXPECT_EQ(bounded_dl_distance("SMITH", "SMYTH", 2), 1);
  EXPECT_FALSE(bounded_dl_distance("SATURDAY", "SUNDAY", 2).has_value());
  EXPECT_EQ(bounded_dl_distance("", "AB", 3), 2);
}

// The load-bearing property: for non-empty strings PDL(s,t,k) is exactly
// DL(s,t) <= k — over random pairs, near pairs, and a sweep of k.
class PdlEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {
 protected:
  static std::string random_string(fbf::util::Rng& rng, std::size_t min_len,
                                   std::size_t max_len, int alphabet) {
    const auto len =
        min_len + static_cast<std::size_t>(rng.below(max_len - min_len + 1));
    std::string s(len, '\0');
    for (auto& ch : s) {
      ch = static_cast<char>(
          'A' + rng.below(static_cast<std::uint64_t>(alphabet)));
    }
    return s;
  }
};

TEST_P(PdlEquivalence, MatchesFullDlOnRandomPairs) {
  const auto [seed, k] = GetParam();
  fbf::util::Rng rng(seed);
  for (int i = 0; i < 1500; ++i) {
    const std::string s = random_string(rng, 1, 12, 5);
    const std::string t = random_string(rng, 1, 12, 5);
    const bool expected = dl_distance(s, t) <= k;
    EXPECT_EQ(pdl_within(s, t, k), expected)
        << "s=" << s << " t=" << t << " k=" << k
        << " dl=" << dl_distance(s, t);
    EXPECT_EQ(within_edits(s, t, k), expected);
  }
}

TEST_P(PdlEquivalence, MatchesFullDlOnNearPairs) {
  // Pairs constructed by mutating a base string: mostly distances 0..3,
  // exercising the band boundary and the early exit.
  const auto [seed, k] = GetParam();
  fbf::util::Rng rng(seed + 500);
  for (int i = 0; i < 1500; ++i) {
    const std::string s = random_string(rng, 2, 12, 8);
    std::string t = s;
    const int edits = static_cast<int>(rng.below(4));
    for (int e = 0; e < edits && !t.empty(); ++e) {
      const auto pos = static_cast<std::size_t>(rng.below(t.size()));
      switch (rng.below(3)) {
        case 0:
          t[pos] = static_cast<char>('A' + rng.below(8));
          break;
        case 1:
          t.insert(t.begin() + static_cast<std::ptrdiff_t>(pos),
                   static_cast<char>('A' + rng.below(8)));
          break;
        default:
          t.erase(t.begin() + static_cast<std::ptrdiff_t>(pos));
          break;
      }
    }
    if (t.empty()) {
      continue;  // pdl_within's empty-string quirk is tested separately
    }
    EXPECT_EQ(pdl_within(s, t, k), dl_distance(s, t) <= k)
        << "s=" << s << " t=" << t << " k=" << k;
  }
}

TEST_P(PdlEquivalence, BoundedDistanceAgreesWithFullDl) {
  const auto [seed, k] = GetParam();
  fbf::util::Rng rng(seed + 900);
  for (int i = 0; i < 800; ++i) {
    const std::string s = random_string(rng, 1, 10, 4);
    const std::string t = random_string(rng, 1, 10, 4);
    const int full = dl_distance(s, t);
    const auto bounded = bounded_dl_distance(s, t, k);
    if (full <= k) {
      ASSERT_TRUE(bounded.has_value()) << "s=" << s << " t=" << t;
      EXPECT_EQ(*bounded, full) << "s=" << s << " t=" << t;
    } else {
      EXPECT_FALSE(bounded.has_value()) << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, PdlEquivalence,
    ::testing::Combine(::testing::Values<std::uint64_t>(101, 202, 303),
                       ::testing::Values(0, 1, 2, 3, 5)));

}  // namespace

namespace long_strings {

using fbf::metrics::dl_distance;
using fbf::metrics::pdl_within;

TEST(PdlLongStrings, BandCorrectOnLongInputs) {
  // Strings beyond demographic length (up to 48 chars) with larger k:
  // stresses the band clearing and the rolling-row reuse.
  fbf::util::Rng rng(909);
  for (int iter = 0; iter < 400; ++iter) {
    std::string s(8 + rng.below(41), '\0');
    std::string t(8 + rng.below(41), '\0');
    for (auto& ch : s) ch = static_cast<char>('A' + rng.below(4));
    for (auto& ch : t) ch = static_cast<char>('A' + rng.below(4));
    for (const int k : {1, 4, 8}) {
      EXPECT_EQ(pdl_within(s, t, k), dl_distance(s, t) <= k)
          << "s=" << s << " t=" << t << " k=" << k;
    }
  }
}

TEST(PdlLongStrings, RepeatedCharacterBlocks) {
  // Adversarial: long runs of one character interleaved with noise make
  // many diagonal ties — a classic source of off-by-one band bugs.
  EXPECT_TRUE(pdl_within("AAAAAAAAAABAAAAAAAAAA", "AAAAAAAAAACAAAAAAAAAA", 1));
  EXPECT_FALSE(pdl_within("AAAAAAAAAABBBAAAAAAAAAA",
                          "AAAAAAAAAACCCAAAAAAAAAA", 2));
  EXPECT_TRUE(pdl_within("AAAAAAAAAABBBAAAAAAAAAA",
                         "AAAAAAAAAACCCAAAAAAAAAA", 3));
  EXPECT_TRUE(pdl_within(std::string(40, 'A'), std::string(41, 'A'), 1));
  EXPECT_FALSE(pdl_within(std::string(40, 'A'), std::string(44, 'A'), 3));
}

TEST(PdlLongStrings, TranspositionAtBandEdge) {
  // A transposition exactly at the band boundary must still be seen.
  std::string s = "ABCDEFGHIJKLMNOP";
  std::string t = s;
  std::swap(t[14], t[15]);  // tail transposition
  EXPECT_TRUE(pdl_within(s, t, 1));
  std::swap(t[0], t[1]);  // plus a head transposition: distance 2
  EXPECT_FALSE(pdl_within(s, t, 1));
  EXPECT_TRUE(pdl_within(s, t, 2));
}

}  // namespace long_strings
