// Property tests for the CandidatePipeline refactor (DESIGN.md §9): every
// consumer routed through the pipeline must be *indistinguishable* from
// the preserved pre-refactor scalar path — identical decisions AND
// identical ladder counters — across packed layouts (numeric, alpha
// l <= 2), the alpha l >= 3 per-pair fallback, k in {1,2,3}, and thread
// counts.  These are the tests that let the batched kernel replace the
// per-pair loops without a semantics audit at every call site.
#include "core/candidate_pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/exec_policy.hpp"
#include "datagen/dataset.hpp"
#include "linkage/engine.hpp"
#include "linkage/incremental.hpp"
#include "linkage/person_gen.hpp"
#include "linkage/sharded.hpp"
#include "testenv.hpp"
#include "util/rng.hpp"

namespace {

namespace c = fbf::core;
namespace dg = fbf::datagen;
namespace lk = fbf::linkage;
using fbf::util::Rng;

// ---------------------------------------------------------------------------
// Layer 1: the filter stage itself.  Batched tile sweep vs the forced
// per-pair scan must produce bit-identical survivor bitmaps and identical
// counters for every layout / k / gate combination.
// ---------------------------------------------------------------------------

struct LayoutCase {
  dg::FieldKind kind;
  c::FieldClass cls;
  int alpha_words;
};

void expect_filter_equivalence(const LayoutCase& layout, int k,
                               bool use_length, bool with_eligible) {
  const auto dataset = dg::build_paired_dataset(layout.kind, 200, 417).value();
  c::PipelineConfig cfg;
  cfg.field_class = layout.cls;
  cfg.alpha_words = layout.alpha_words;
  cfg.k = k;
  cfg.use_length = use_length;
  const c::CandidatePipeline batched(cfg, dataset.error);
  c::PipelineConfig scalar_cfg = cfg;
  scalar_cfg.force_per_pair = true;
  const c::CandidatePipeline scalar(scalar_cfg, dataset.error);
  ASSERT_TRUE(batched.batched());
  ASSERT_FALSE(scalar.batched());

  const std::size_t n = dataset.error.size();
  const std::size_t words = c::CandidatePipeline::bitmap_words(n);
  std::vector<std::uint64_t> eligible(words);
  for (std::size_t w = 0; w < words; ++w) {
    // Deterministic ragged mask; distinct per word so boundaries differ.
    eligible[w] = 0x9e3779b97f4a7c15ull * (w + 1) | 1ull;
  }
  std::vector<std::uint64_t> bm_batched(words);
  std::vector<std::uint64_t> bm_scalar(words);
  c::PipelineCounters pc_batched;
  c::PipelineCounters pc_scalar;
  for (std::size_t i = 0; i < dataset.size(); i += 3) {
    const auto qb = batched.make_query(dataset.clean[i]);
    const auto qs = scalar.make_query(dataset.clean[i]);
    const std::uint64_t* mask = with_eligible ? eligible.data() : nullptr;
    const std::size_t sb =
        batched.filter(qb, 0, n, mask, bm_batched.data(), pc_batched);
    const std::size_t ss =
        scalar.filter(qs, 0, n, mask, bm_scalar.data(), pc_scalar);
    ASSERT_EQ(sb, ss) << "i=" << i;
    for (std::size_t w = 0; w < words; ++w) {
      ASSERT_EQ(bm_batched[w], bm_scalar[w])
          << dg::field_kind_name(layout.kind) << " k=" << k
          << " len=" << use_length << " elig=" << with_eligible
          << " i=" << i << " word " << w;
    }
  }
  EXPECT_EQ(pc_batched.length_pass, pc_scalar.length_pass);
  EXPECT_EQ(pc_batched.fbf_evaluated, pc_scalar.fbf_evaluated);
  EXPECT_EQ(pc_batched.fbf_pass, pc_scalar.fbf_pass);
}

TEST(PipelineFilter, BatchedMatchesPerPairAcrossLayoutsAndK) {
  const LayoutCase layouts[] = {
      {dg::FieldKind::kSsn, c::FieldClass::kNumeric, 2},
      {dg::FieldKind::kLastName, c::FieldClass::kAlpha, 1},
      {dg::FieldKind::kLastName, c::FieldClass::kAlpha, 2},
      {dg::FieldKind::kAddress, c::FieldClass::kAlphanumeric, 2},
  };
  for (const auto& layout : layouts) {
    for (const int k : {1, 2, 3}) {
      expect_filter_equivalence(layout, k, /*use_length=*/false,
                                /*with_eligible=*/false);
      expect_filter_equivalence(layout, k, /*use_length=*/true,
                                /*with_eligible=*/false);
      expect_filter_equivalence(layout, k, /*use_length=*/false,
                                /*with_eligible=*/true);
      expect_filter_equivalence(layout, k, /*use_length=*/true,
                                /*with_eligible=*/true);
    }
  }
}

TEST(PipelineFilter, AlphaThreeWordsFallsBackTransparently) {
  // alpha l = 3 cannot pack; the pipeline must degrade to the per-pair
  // scan behind the same interface and agree with the raw predicate.
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 120, 5).value();
  c::PipelineConfig cfg;
  cfg.field_class = c::FieldClass::kAlpha;
  cfg.alpha_words = 3;
  cfg.k = 1;
  const c::CandidatePipeline pipe(cfg, dataset.error);
  EXPECT_FALSE(pipe.batched());
  EXPECT_STREQ(pipe.kernel_name(), "pair-scalar");

  const std::size_t n = dataset.error.size();
  std::vector<std::uint64_t> bitmap(c::CandidatePipeline::bitmap_words(n));
  c::PipelineCounters pc;
  for (std::size_t i = 0; i < dataset.size(); i += 7) {
    const auto q = pipe.make_query(dataset.clean[i]);
    pipe.filter(q, 0, n, nullptr, bitmap.data(), pc);
    for (std::size_t j = 0; j < n; ++j) {
      const auto sig_j =
          c::make_signature(dataset.error[j], c::FieldClass::kAlpha, 3);
      const bool expect = c::CandidatePipeline::pair_pass(q.sig, sig_j, 1);
      const bool got = (bitmap[j / 64] >> (j % 64) & 1) != 0;
      ASSERT_EQ(got, expect) << "i=" << i << " j=" << j;
    }
  }
}

// filter_block must be *indistinguishable* from Q successive filter()
// calls: same per-query bitmaps, same counters, same survivor total —
// for any Q (including > kMaxBlockQueries, which exercises chunking),
// every layout (including the per-pair fallback), gates on or off.
void expect_block_equivalence(const LayoutCase& layout, int k,
                              bool use_length, bool with_eligible) {
  const auto dataset = dg::build_paired_dataset(layout.kind, 180, 631).value();
  c::PipelineConfig cfg;
  cfg.field_class = layout.cls;
  cfg.alpha_words = layout.alpha_words;
  cfg.k = k;
  cfg.use_length = use_length;
  const c::CandidatePipeline pipe(cfg, dataset.error);

  const std::size_t n = dataset.error.size();
  const std::size_t words = c::CandidatePipeline::bitmap_words(n);
  const std::size_t stride = words + 1;  // probe stride handling too
  std::vector<std::uint64_t> eligible(words);
  for (std::size_t w = 0; w < words; ++w) {
    eligible[w] = 0x9e3779b97f4a7c15ull * (w + 1) | 1ull;
  }
  const std::uint64_t* mask = with_eligible ? eligible.data() : nullptr;
  for (const std::size_t n_queries :
       {std::size_t{1}, std::size_t{3}, std::size_t{8}, std::size_t{13}}) {
    std::vector<c::CandidatePipeline::Query> queries;
    for (std::size_t i = 0; i < n_queries; ++i) {
      queries.push_back(pipe.make_query(dataset.clean[i * 7 % n]));
    }
    std::vector<std::uint64_t> bm_block(n_queries * stride, ~0ull);
    std::vector<std::uint64_t> bm_seq(words);
    c::PipelineCounters pc_block;
    c::PipelineCounters pc_seq;
    const std::size_t block_survivors = pipe.filter_block(
        queries, 0, n, mask, bm_block.data(), stride, pc_block);
    std::size_t seq_survivors = 0;
    for (std::size_t i = 0; i < n_queries; ++i) {
      seq_survivors +=
          pipe.filter(queries[i], 0, n, mask, bm_seq.data(), pc_seq);
      for (std::size_t w = 0; w < words; ++w) {
        ASSERT_EQ(bm_block[i * stride + w], bm_seq[w])
            << dg::field_kind_name(layout.kind) << " k=" << k
            << " len=" << use_length << " elig=" << with_eligible
            << " Q=" << n_queries << " query=" << i << " word " << w;
      }
    }
    EXPECT_EQ(block_survivors, seq_survivors);
    EXPECT_EQ(pc_block.length_pass, pc_seq.length_pass);
    EXPECT_EQ(pc_block.fbf_evaluated, pc_seq.fbf_evaluated);
    EXPECT_EQ(pc_block.fbf_pass, pc_seq.fbf_pass);
    EXPECT_EQ(pc_block.verify_calls, pc_seq.verify_calls);
  }
}

TEST(PipelineFilter, FilterBlockEqualsSequentialFilters) {
  const LayoutCase layouts[] = {
      {dg::FieldKind::kSsn, c::FieldClass::kNumeric, 2},
      {dg::FieldKind::kLastName, c::FieldClass::kAlpha, 2},
      {dg::FieldKind::kAddress, c::FieldClass::kAlphanumeric, 2},
      // alpha l = 3: per-pair fallback — filter_block literally loops.
      {dg::FieldKind::kLastName, c::FieldClass::kAlpha, 3},
  };
  for (const auto& layout : layouts) {
    for (const int k : {1, 2}) {
      for (const bool use_length : {false, true}) {
        for (const bool with_eligible : {false, true}) {
          expect_block_equivalence(layout, k, use_length, with_eligible);
        }
      }
    }
  }
}

TEST(PipelineFilter, PrunePlanesAblationIsIdentical) {
  // prune_planes is a pure performance switch: bitmaps, counters and
  // survivor totals must be byte-identical with pruning on or off, on
  // the layout where pruning actually does something (two planes).
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kAddress, 220, 93).value();
  for (const int k : {1, 2}) {
    c::PipelineConfig cfg;
    cfg.field_class = c::FieldClass::kAlphanumeric;
    cfg.k = k;
    const c::CandidatePipeline pruned(cfg, dataset.error);
    c::PipelineConfig noprune_cfg = cfg;
    noprune_cfg.prune_planes = false;
    const c::CandidatePipeline unpruned(noprune_cfg, dataset.error);
    ASSERT_TRUE(pruned.batched());

    const std::size_t n = dataset.error.size();
    const std::size_t words = c::CandidatePipeline::bitmap_words(n);
    std::vector<c::CandidatePipeline::Query> qp;
    std::vector<c::CandidatePipeline::Query> qu;
    for (std::size_t i = 0; i < 8; ++i) {
      qp.push_back(pruned.make_query(dataset.clean[i]));
      qu.push_back(unpruned.make_query(dataset.clean[i]));
    }
    std::vector<std::uint64_t> bm_p(qp.size() * words);
    std::vector<std::uint64_t> bm_u(qu.size() * words);
    c::PipelineCounters pc_p;
    c::PipelineCounters pc_u;
    const std::size_t sp =
        pruned.filter_block(qp, 0, n, nullptr, bm_p.data(), words, pc_p);
    const std::size_t su =
        unpruned.filter_block(qu, 0, n, nullptr, bm_u.data(), words, pc_u);
    EXPECT_EQ(sp, su) << "k=" << k;
    EXPECT_EQ(bm_p, bm_u) << "k=" << k;
    EXPECT_EQ(pc_p.fbf_evaluated, pc_u.fbf_evaluated);
    EXPECT_EQ(pc_p.fbf_pass, pc_u.fbf_pass);
  }
}

TEST(PipelineFilter, KernelNameComesFromSharedTable) {
  c::PipelineConfig cfg;
  cfg.field_class = c::FieldClass::kNumeric;
  const c::CandidatePipeline pipe(cfg);
  ASSERT_TRUE(pipe.batched());
  EXPECT_STREQ(pipe.kernel_name(),
               c::tile_kernel_label(c::best_kernel()));
}

TEST(PipelineFilter, IncrementalAppendEqualsBulkConstruction) {
  // The append-only candidate side: growing the pipeline batch by batch
  // filters identically to building it in one shot.
  const auto dataset = dg::build_paired_dataset(dg::FieldKind::kSsn, 150, 23).value();
  c::PipelineConfig cfg;
  cfg.field_class = c::FieldClass::kNumeric;
  const c::CandidatePipeline bulk(cfg, dataset.error);
  c::CandidatePipeline grown(cfg);
  grown.append(std::span(dataset.error).first(31));
  grown.append(std::span(dataset.error).subspan(31, 64));
  grown.append(std::span(dataset.error).subspan(95));
  ASSERT_EQ(grown.size(), bulk.size());

  const std::size_t words =
      c::CandidatePipeline::bitmap_words(dataset.error.size());
  std::vector<std::uint64_t> bm_bulk(words);
  std::vector<std::uint64_t> bm_grown(words);
  c::PipelineCounters pc;
  for (std::size_t i = 0; i < dataset.size(); i += 5) {
    const auto q = bulk.make_query(dataset.clean[i]);
    bulk.filter(q, 0, bulk.size(), nullptr, bm_bulk.data(), pc);
    grown.filter(q, 0, grown.size(), nullptr, bm_grown.data(), pc);
    for (std::size_t w = 0; w < words; ++w) {
      ASSERT_EQ(bm_grown[w], bm_bulk[w]) << "i=" << i << " word " << w;
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2: EntityStore::ingest.  The pipeline path must reproduce the
// scalar score_pair path byte for byte: same entity ids, same merge /
// new-entity decisions, same comparisons / fbf_evaluations / verify_calls.
// ---------------------------------------------------------------------------

void expect_store_equivalence(const lk::ComparatorConfig& config,
                              std::size_t threads, std::uint64_t seed,
                              std::size_t n) {
  // Pipeline-vs-scalar counter identities assume dense generation; pin
  // the env against the forced-generator CI legs.
  const fbf::testenv::ScopedForceGenerator clear_env(nullptr);
  Rng rng(seed);
  const auto clean = lk::generate_people(n, rng);
  lk::RecordErrorModel model;
  model.field_typo_rate = 0.15;
  const auto error = lk::make_error_records(clean, model, rng);
  const auto more = lk::generate_people(n / 3, rng);

  lk::EntityStore fast(
      config, fbf::core::ExecPolicy{.use_pipeline = true, .threads = threads});
  lk::EntityStore ref(config,
                      fbf::core::ExecPolicy{.use_pipeline = false});
  for (const auto& batch : {clean, error, more}) {
    const auto fs = fast.ingest(batch);
    const auto rs = ref.ingest(batch);
    EXPECT_EQ(fs.comparisons, rs.comparisons);
    EXPECT_EQ(fs.fbf_evaluations, rs.fbf_evaluations);
    EXPECT_EQ(fs.verify_calls, rs.verify_calls);
    EXPECT_EQ(fs.merged, rs.merged);
    EXPECT_EQ(fs.new_entities, rs.new_entities);
  }
  ASSERT_EQ(fast.size(), ref.size());
  ASSERT_EQ(fast.entity_count(), ref.entity_count());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_EQ(fast.entity_of(i), ref.entity_of(i)) << "record " << i;
  }
}

TEST(EntityStoreEquivalence, DefaultRulesAcrossKAndThreads) {
  // The default rule set touches every layout at once: alpha names,
  // alphanumeric address, numeric phone/ssn/birth date, exact gender.
  for (const int k : {1, 2, 3}) {
    const auto config =
        lk::make_point_threshold_config(lk::FieldStrategy::kFpdl, k);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      expect_store_equivalence(config, threads,
                               static_cast<std::uint64_t>(100 + k), 75);
    }
  }
}

TEST(EntityStoreEquivalence, FdlVerifier) {
  const auto config =
      lk::make_point_threshold_config(lk::FieldStrategy::kFdl, 2);
  expect_store_equivalence(config, 4, 7, 60);
}

TEST(EntityStoreEquivalence, NumericOnlyRules) {
  // Pure numeric layout: every FBF rule sweeps a 1-word plane.
  lk::ComparatorConfig config;
  config.rules = {
      {lk::RecordField::kSsn, lk::FieldStrategy::kFpdl, 4.0, 1},
      {lk::RecordField::kPhone, lk::FieldStrategy::kFpdl, 2.0, 1},
      {lk::RecordField::kBirthDate, lk::FieldStrategy::kFpdl, 2.0, 2},
  };
  config.match_threshold = 4.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    expect_store_equivalence(config, threads, 31, 70);
  }
}

TEST(EntityStoreEquivalence, AlphaThreeWordFallback) {
  // l = 3 alpha signatures cannot pack: the bank's alpha rules run the
  // per-pair fallback inside the same pipeline interface, and must still
  // be byte-identical to the scalar path.
  auto config = lk::make_point_threshold_config(lk::FieldStrategy::kFpdl, 1);
  config.alpha_words = 3;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    expect_store_equivalence(config, threads, 53, 60);
  }
}

TEST(EntityStoreEquivalence, RestoredStoreKeepsEquivalence) {
  // Snapshot recovery rebuilds the filter bank; post-restore ingest must
  // still match the scalar path.  Counter identities assume dense
  // generation on the pipeline side.
  const fbf::testenv::ScopedForceGenerator clear_env(nullptr);
  const auto config =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl, 1);
  Rng rng(77);
  const auto base = lk::generate_people(50, rng);
  const auto next = lk::make_error_records(base, {}, rng);

  lk::EntityStore donor(config);
  donor.ingest(base);
  lk::EntityStore fast(
      config, fbf::core::ExecPolicy{.use_pipeline = true, .threads = 4});
  ASSERT_TRUE(fast.restore(
                      std::vector(donor.records().begin(),
                                  donor.records().end()),
                      std::vector(donor.entity_ids().begin(),
                                  donor.entity_ids().end()),
                      static_cast<std::uint32_t>(donor.entity_count()))
                  .ok());
  lk::EntityStore ref(config,
                      fbf::core::ExecPolicy{.use_pipeline = false});
  ref.ingest(base);

  const auto fs = fast.ingest(next);
  const auto rs = ref.ingest(next);
  EXPECT_EQ(fs.merged, rs.merged);
  EXPECT_EQ(fs.new_entities, rs.new_entities);
  EXPECT_EQ(fs.fbf_evaluations, rs.fbf_evaluations);
  EXPECT_EQ(fs.verify_calls, rs.verify_calls);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_EQ(fast.entity_of(i), ref.entity_of(i)) << "record " << i;
  }
}

// ---------------------------------------------------------------------------
// Layer 3: the linkage engine and the sharded runner.
// ---------------------------------------------------------------------------

std::vector<lk::CandidatePair> sorted_pairs(std::vector<lk::CandidatePair> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void expect_link_equivalence(const lk::ComparatorConfig& comparator,
                             std::size_t threads, std::uint64_t seed) {
  // The pipeline/scalar counter identities below hold only when both
  // runs generate densely; pin the env against forced-generator CI legs.
  const fbf::testenv::ScopedForceGenerator clear_env(nullptr);
  Rng rng(seed);
  const auto left = lk::generate_people(120, rng);
  const auto right = lk::make_error_records(left, {}, rng);

  lk::LinkConfig pipe;
  pipe.comparator = comparator;
  pipe.exec.threads = threads;
  pipe.collect_matches = true;
  pipe.exec.use_pipeline = true;
  lk::LinkConfig scalar = pipe;
  scalar.exec.use_pipeline = false;

  const auto a = lk::link_exhaustive(left, right, pipe);
  const auto b = lk::link_exhaustive(left, right, scalar);
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs);
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_EQ(a.true_positives, b.true_positives);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.counters.field_comparisons, b.counters.field_comparisons);
  EXPECT_EQ(a.counters.fbf_evaluations, b.counters.fbf_evaluations);
  EXPECT_EQ(a.counters.verify_calls, b.counters.verify_calls);
  EXPECT_EQ(sorted_pairs(a.match_pairs), sorted_pairs(b.match_pairs));
}

TEST(EngineEquivalence, ExhaustivePipelineMatchesScalar) {
  for (const int k : {1, 2}) {
    const auto config =
        lk::make_point_threshold_config(lk::FieldStrategy::kFpdl, k);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      expect_link_equivalence(config, threads,
                              static_cast<std::uint64_t>(200 + k));
    }
  }
  auto fallback = lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  fallback.alpha_words = 3;
  expect_link_equivalence(fallback, 4, 209);
}

TEST(ShardedEquivalence, AllSchemesMatchScalarPath) {
  Rng rng(88);
  const auto left = lk::generate_people(150, rng);
  const auto right = lk::make_error_records(left, {}, rng);
  for (const auto scheme :
       {lk::PartitionScheme::kReplicateRight, lk::PartitionScheme::kHashLastName,
        lk::PartitionScheme::kHashSoundexLastName}) {
    lk::ShardedConfig pipe;
    pipe.n_shards = 4;
    pipe.scheme = scheme;
    pipe.link.comparator =
        lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
    pipe.link.exec.use_pipeline = true;
    lk::ShardedConfig scalar = pipe;
    scalar.link.exec.use_pipeline = false;

    const auto a = lk::link_sharded(left, right, pipe);
    const auto b = lk::link_sharded(left, right, scalar);
    ASSERT_EQ(a.shards.size(), b.shards.size());
    EXPECT_EQ(a.total_pairs, b.total_pairs);
    EXPECT_EQ(a.total_matches, b.total_matches);
    EXPECT_EQ(a.total_true_positives, b.total_true_positives);
    for (std::size_t s = 0; s < a.shards.size(); ++s) {
      EXPECT_EQ(a.shards[s].pairs, b.shards[s].pairs) << "shard " << s;
      EXPECT_EQ(a.shards[s].matches, b.shards[s].matches) << "shard " << s;
      EXPECT_EQ(a.shards[s].true_positives, b.shards[s].true_positives)
          << "shard " << s;
    }
  }
}

}  // namespace
