#include "core/signature_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/find_diff_bits.hpp"
#include "core/match_join.hpp"
#include "datagen/dataset.hpp"

namespace {

namespace c = fbf::core;
namespace dg = fbf::datagen;

c::QueryOptions index_options(c::FieldClass cls, int k,
                              int alpha_words = c::kDefaultAlphaWords) {
  c::QueryOptions options;
  options.field_class = cls;
  options.k = k;
  options.alpha_words = alpha_words;
  return options;
}

TEST(SignatureIndex, RefusesUnsupportedLayouts) {
  const std::vector<std::string> strings = {"1801 N BROAD ST"};
  EXPECT_FALSE(c::SignatureIndex::build(strings,
                                        c::FieldClass::kAlphanumeric, 2, 1)
                   .has_value());
  // Alpha with 3+ words exceeds the 64-bit key.
  EXPECT_FALSE(
      c::SignatureIndex::build(strings, c::FieldClass::kAlpha, 3, 1)
          .has_value());
  // Probe budget: k = 3 on alpha-l2 needs C(52,6)-scale probes.
  EXPECT_FALSE(
      c::SignatureIndex::build(strings, c::FieldClass::kAlpha, 2, 3)
          .has_value());
  EXPECT_FALSE(
      c::SignatureIndex::build(strings, c::FieldClass::kNumeric, 1, -1)
          .has_value());
}

TEST(SignatureIndex, AcceptsSupportedLayouts) {
  const std::vector<std::string> strings = {"123456789"};
  EXPECT_TRUE(c::SignatureIndex::build(strings, c::FieldClass::kNumeric, 1, 1)
                  .has_value());
  EXPECT_TRUE(c::SignatureIndex::build(strings, c::FieldClass::kNumeric, 1, 2)
                  .has_value());
  EXPECT_TRUE(c::SignatureIndex::build(strings, c::FieldClass::kAlpha, 2, 1)
                  .has_value());
  EXPECT_TRUE(c::SignatureIndex::build(strings, c::FieldClass::kAlpha, 1, 1)
                  .has_value());
}

TEST(SignatureIndex, ProbeCountsMatchCombinatorics) {
  const std::vector<std::string> strings = {"123456789"};
  const auto numeric_k1 =
      c::SignatureIndex::build(strings, c::FieldClass::kNumeric, 1, 1);
  ASSERT_TRUE(numeric_k1.has_value());
  EXPECT_EQ(numeric_k1->probes_per_query(), 1u + 30u + 435u);
  const auto alpha_k1 =
      c::SignatureIndex::build(strings, c::FieldClass::kAlpha, 2, 1);
  ASSERT_TRUE(alpha_k1.has_value());
  EXPECT_EQ(alpha_k1->probes_per_query(), 1u + 52u + 1326u);
}

class IndexEquivalence
    : public ::testing::TestWithParam<dg::FieldKind> {};

TEST_P(IndexEquivalence, QueryReturnsExactlyTheFbfPassSet) {
  // The index must surface exactly the pairs the scan filter passes.
  const auto kind = GetParam();
  const auto cls = dg::field_class_of(kind);
  const auto dataset = dg::build_paired_dataset(kind, 150, 321).value();
  const int k = 1;
  const auto index = c::SignatureIndex::build(dataset.error, cls, 2, k);
  ASSERT_TRUE(index.has_value());
  std::vector<std::uint32_t> candidates;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto sig = c::make_signature(dataset.clean[i], cls, 2);
    candidates.clear();
    index->generate(sig, candidates);
    std::set<std::uint32_t> from_index(candidates.begin(), candidates.end());
    EXPECT_EQ(from_index.size(), candidates.size()) << "duplicate ids";
    std::set<std::uint32_t> from_scan;
    for (std::uint32_t j = 0; j < dataset.size(); ++j) {
      const auto sig_j = c::make_signature(dataset.error[j], cls, 2);
      if (c::find_diff_bits(sig, sig_j) <= 2 * k) {
        from_scan.insert(j);
      }
    }
    EXPECT_EQ(from_index, from_scan) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    IndexableFields, IndexEquivalence,
    ::testing::Values(dg::FieldKind::kSsn, dg::FieldKind::kPhone,
                      dg::FieldKind::kBirthDate, dg::FieldKind::kLastName,
                      dg::FieldKind::kFirstName),
    [](const auto& param_info) {
      return std::string(dg::field_kind_name(param_info.param));
    });

TEST(IndexedJoin, MatchesScanJoinExactly) {
  for (const auto kind :
       {dg::FieldKind::kSsn, dg::FieldKind::kLastName}) {
    const auto dataset = dg::build_paired_dataset(kind, 300, 55).value();
    const auto cls = dg::field_class_of(kind);
    const auto indexed = c::match_strings_indexed(
        dataset.clean, dataset.error, index_options(cls, 1));
    ASSERT_TRUE(indexed.has_value());
    c::JoinConfig scan;
    scan.method = c::Method::kFpdl;
    scan.k = 1;
    scan.field_class = cls;
    const auto scan_stats =
        c::match_strings(dataset.clean, dataset.error, scan);
    EXPECT_EQ(indexed->matches, scan_stats.matches)
        << dg::field_kind_name(kind);
    EXPECT_EQ(indexed->diagonal_matches, scan_stats.diagonal_matches);
    // Index candidates == scan filter survivors.
    EXPECT_EQ(indexed->candidates, scan_stats.fbf_pass);
    EXPECT_EQ(indexed->verify_calls, scan_stats.verify_calls);
  }
}

TEST(IndexedJoin, IndexRefusalDegradesToTileScan) {
  // Alphanumeric exceeds the 64-bit probe key, but the packed planes
  // still cover it: the join degrades to a pipeline tile-scan with the
  // exact scan-join results instead of failing.
  const auto dataset = dg::build_paired_dataset(dg::FieldKind::kAddress, 50, 1).value();
  const auto indexed = c::match_strings_indexed(
      dataset.clean, dataset.error,
      index_options(c::FieldClass::kAlphanumeric, 1));
  ASSERT_TRUE(indexed.has_value());
  EXPECT_STREQ(indexed->path, "tile-scan");
  c::JoinConfig scan;
  scan.method = c::Method::kFpdl;
  scan.k = 1;
  scan.field_class = c::FieldClass::kAlphanumeric;
  const auto scan_stats = c::match_strings(dataset.clean, dataset.error, scan);
  EXPECT_EQ(indexed->matches, scan_stats.matches);
  EXPECT_EQ(indexed->candidates, scan_stats.fbf_pass);
  EXPECT_EQ(indexed->verify_calls, scan_stats.verify_calls);
}

TEST(IndexedJoin, UnpackableLayoutReturnsNullopt) {
  // Alpha l = 3 fits neither the probe key nor the packed planes —
  // nothing to accelerate, so the caller must use the scan join.
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 50, 1).value();
  EXPECT_FALSE(c::match_strings_indexed(dataset.clean, dataset.error,
                                        index_options(c::FieldClass::kAlpha, 1,
                                                      3))
                   .has_value());
}

TEST(IndexedJoin, K2NumericSupported) {
  const auto dataset = dg::build_paired_dataset(dg::FieldKind::kSsn, 150, 9).value();
  const auto indexed = c::match_strings_indexed(
      dataset.clean, dataset.error, index_options(c::FieldClass::kNumeric, 2));
  ASSERT_TRUE(indexed.has_value());
  c::JoinConfig scan;
  scan.method = c::Method::kFpdl;
  scan.k = 2;
  scan.field_class = c::FieldClass::kNumeric;
  const auto scan_stats = c::match_strings(dataset.clean, dataset.error, scan);
  EXPECT_EQ(indexed->matches, scan_stats.matches);
  EXPECT_EQ(indexed->candidates, scan_stats.fbf_pass);
}

}  // namespace
