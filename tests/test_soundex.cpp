#include "metrics/soundex.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace {

using fbf::metrics::soundex;
using fbf::metrics::soundex_match;

class SoundexKnownCodes
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(SoundexKnownCodes, EncodesToReferenceCode) {
  const auto [name, code] = GetParam();
  EXPECT_EQ(soundex(name), code) << name;
}

INSTANTIATE_TEST_SUITE_P(
    CensusReference, SoundexKnownCodes,
    ::testing::Values(
        // Classic Knuth / Census reference vectors.
        std::make_tuple("ROBERT", "R163"), std::make_tuple("RUPERT", "R163"),
        std::make_tuple("RUBIN", "R150"), std::make_tuple("ASHCRAFT", "A261"),
        std::make_tuple("ASHCROFT", "A261"),  // H/W transparency rule
        std::make_tuple("TYMCZAK", "T522"), std::make_tuple("PFISTER", "P236"),
        std::make_tuple("HONEYMAN", "H555"), std::make_tuple("SMITH", "S530"),
        std::make_tuple("SMYTH", "S530"), std::make_tuple("JACKSON", "J250"),
        std::make_tuple("WASHINGTON", "W252"), std::make_tuple("LEE", "L000"),
        std::make_tuple("GUTIERREZ", "G362"),
        std::make_tuple("JOHNSON", "J525"), std::make_tuple("WILLIAMS", "W452"),
        std::make_tuple("EULER", "E460"), std::make_tuple("GAUSS", "G200"),
        std::make_tuple("HILBERT", "H416"), std::make_tuple("KNUTH", "K530"),
        std::make_tuple("LLOYD", "L300"), std::make_tuple("LUKASIEWICZ", "L222")));

TEST(Soundex, CaseInsensitive) {
  EXPECT_EQ(soundex("smith"), soundex("SMITH"));
  EXPECT_EQ(soundex("McDonald"), soundex("MCDONALD"));
}

TEST(Soundex, IgnoresNonLetters) {
  EXPECT_EQ(soundex("O'BRIEN"), soundex("OBRIEN"));
  EXPECT_EQ(soundex("SMITH-JONES"), soundex("SMITHJONES"));
}

TEST(Soundex, EmptyAndSymbolOnlyInputs) {
  EXPECT_EQ(soundex(""), "");
  EXPECT_EQ(soundex("123"), "");
  EXPECT_EQ(soundex("-'-"), "");
}

TEST(Soundex, PadsToFourCharacters) {
  EXPECT_EQ(soundex("A").size(), 4u);
  EXPECT_EQ(soundex("A"), "A000");
  EXPECT_EQ(soundex("AB"), "A100");
}

TEST(Soundex, TruncatesToFourCharacters) {
  EXPECT_EQ(soundex("SCHWARZENEGGER").size(), 4u);
}

TEST(Soundex, VowelSeparatorAllowsRepeatCode) {
  // T-Y-M-C-Z-A-K: the vowel resets the duplicate window.
  EXPECT_EQ(soundex("TYMCZAK"), "T522");
}

TEST(SoundexMatch, MatchesVariantSpellings) {
  // The legacy behaviour the paper criticizes: aggressive matching...
  EXPECT_TRUE(soundex_match("SMITH", "SMYTH"));
  EXPECT_TRUE(soundex_match("ROBERT", "RUPERT"));
  // ...but it misses single-edit typos that shift the code (paper: the
  // Soundex found less than half the true positive matches).
  EXPECT_FALSE(soundex_match("SMITH", "MITH"));   // leading-char deletion
  EXPECT_FALSE(soundex_match("SMITH", "SMITB"));  // trailing substitution
}

TEST(SoundexMatch, EmptyNeverMatches) {
  EXPECT_FALSE(soundex_match("", ""));
  EXPECT_FALSE(soundex_match("", "SMITH"));
}

}  // namespace
