// Scoped environment overrides shared by test files.  The forced-generator
// CI legs run the whole suite under FBF_FORCE_GENERATOR; any test whose
// assertions depend on a *specific* generation path (requested-generator
// routing, dense-path counter identities) pins the variable with these
// guards instead of inheriting whatever the leg set.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

namespace fbf::testenv {

/// Scoped FBF_FORCE_GENERATOR override; restores the prior value.
/// Pass nullptr to unset (i.e. "honor the requested generator").
class ScopedForceGenerator {
 public:
  explicit ScopedForceGenerator(const char* value) {
    if (const char* prev = std::getenv("FBF_FORCE_GENERATOR")) {
      saved_ = prev;
    }
    if (value == nullptr) {
      ::unsetenv("FBF_FORCE_GENERATOR");
    } else {
      ::setenv("FBF_FORCE_GENERATOR", value, 1);
    }
  }
  ~ScopedForceGenerator() {
    if (saved_.has_value()) {
      ::setenv("FBF_FORCE_GENERATOR", saved_->c_str(), 1);
    } else {
      ::unsetenv("FBF_FORCE_GENERATOR");
    }
  }
  ScopedForceGenerator(const ScopedForceGenerator&) = delete;
  ScopedForceGenerator& operator=(const ScopedForceGenerator&) = delete;

 private:
  std::optional<std::string> saved_;
};

}  // namespace fbf::testenv
