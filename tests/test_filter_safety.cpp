// The paper's Proof of Correctness (§4), verified empirically: for every
// pair within k DL edits, the FBF signature difference is at most 2k —
// i.e. the filter admits NO false negatives relative to DL (G_{<=2k} ⊇
// H_{<=k}).  Tested across field classes, thresholds, occurrence caps and
// edit mixes, including the occurrence-cap edge cases the paper's proof
// glosses over.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/find_diff_bits.hpp"
#include "core/signature.hpp"
#include "datagen/errors.hpp"
#include "metrics/damerau.hpp"
#include "util/rng.hpp"

namespace {

using fbf::core::FieldClass;
using fbf::core::find_diff_bits;
using fbf::core::make_signature;
using fbf::core::Signature;
using fbf::datagen::Alphabet;
using fbf::datagen::inject_edits;
using fbf::metrics::dl_distance;

std::string random_string(fbf::util::Rng& rng, std::size_t min_len,
                          std::size_t max_len, Alphabet alphabet) {
  const auto len =
      min_len + static_cast<std::size_t>(rng.below(max_len - min_len + 1));
  std::string s(len, '\0');
  for (auto& ch : s) {
    ch = fbf::datagen::random_char(alphabet, rng);
  }
  return s;
}

struct SafetyCase {
  FieldClass cls;
  Alphabet alphabet;
  int alpha_words;
  int k;
};

class FilterSafety : public ::testing::TestWithParam<SafetyCase> {};

TEST_P(FilterSafety, InjectedEditsBoundDiffBits) {
  // Constructive direction: j successive single edits flip at most 2j
  // signature bits (each edit changes at most two occurrence counts).
  // Note j edits may yield OSA distance > j (OSA breaks the triangle
  // inequality), so the bound is stated against the edit count; the
  // DL-relative guarantee is covered by GeneralPairsRespectTheBound.
  const SafetyCase param = GetParam();
  fbf::util::Rng rng(fbf::util::fnv1a64("safety") +
                     static_cast<std::uint64_t>(31 * param.k) +
                     static_cast<std::uint64_t>(param.alpha_words));
  for (int iter = 0; iter < 3000; ++iter) {
    const std::string s = random_string(rng, 2, 14, param.alphabet);
    const int edits = 1 + static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(param.k)));
    const std::string t = inject_edits(s, edits, param.alphabet, rng);
    const Signature m = make_signature(s, param.cls, param.alpha_words);
    const Signature n = make_signature(t, param.cls, param.alpha_words);
    EXPECT_LE(find_diff_bits(m, n), 2 * edits)
        << "s=" << s << " t=" << t << " edits=" << edits;
    // And whenever the realized DL is within k, the paper's G ⊇ H bound
    // must hold too.
    if (dl_distance(s, t) <= param.k) {
      EXPECT_LE(find_diff_bits(m, n), 2 * param.k) << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(FilterSafety, GeneralPairsRespectTheBound) {
  // Independent random pairs: whenever DL happens to be <= k, the bound
  // must hold; when the filter rejects (> 2k) the pair must NOT be within
  // k (the contrapositive, which is what the join relies on).
  const SafetyCase param = GetParam();
  fbf::util::Rng rng(fbf::util::fnv1a64("general") + static_cast<std::uint64_t>(17 * param.k) +
                     static_cast<std::uint64_t>(param.alpha_words));
  for (int iter = 0; iter < 3000; ++iter) {
    const std::string s = random_string(rng, 1, 10, param.alphabet);
    const std::string t = random_string(rng, 1, 10, param.alphabet);
    const Signature m = make_signature(s, param.cls, param.alpha_words);
    const Signature n = make_signature(t, param.cls, param.alpha_words);
    if (find_diff_bits(m, n) > 2 * param.k) {
      EXPECT_GT(dl_distance(s, t), param.k) << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClassesAndThresholds, FilterSafety,
    ::testing::Values(
        SafetyCase{FieldClass::kNumeric, Alphabet::kDigits, 1, 1},
        SafetyCase{FieldClass::kNumeric, Alphabet::kDigits, 1, 2},
        SafetyCase{FieldClass::kNumeric, Alphabet::kDigits, 1, 3},
        SafetyCase{FieldClass::kAlpha, Alphabet::kUpperAlpha, 1, 1},
        SafetyCase{FieldClass::kAlpha, Alphabet::kUpperAlpha, 2, 1},
        SafetyCase{FieldClass::kAlpha, Alphabet::kUpperAlpha, 2, 2},
        SafetyCase{FieldClass::kAlpha, Alphabet::kUpperAlpha, 4, 2},
        SafetyCase{FieldClass::kAlphanumeric, Alphabet::kAlphanumeric, 2, 1},
        SafetyCase{FieldClass::kAlphanumeric, Alphabet::kAlphanumeric, 2, 2}),
    [](const auto& param_info) {
      std::string name = fbf::core::field_class_name(param_info.param.cls);
      name += "_l" + std::to_string(param_info.param.alpha_words);
      name += "_k" + std::to_string(param_info.param.k);
      return name;
    });

TEST(FilterSafetyEdgeCases, RepeatedCharactersBeyondTheCap) {
  // Occurrence capping loses information but only symmetrically, so the
  // filter stays conservative: diff bits can only shrink, never grow.
  // "AAA" vs "AAAB": one insertion; with l = 2, third A uncounted.
  const Signature m = make_signature("AAA", FieldClass::kAlpha, 2);
  const Signature n = make_signature("AAAB", FieldClass::kAlpha, 2);
  EXPECT_LE(find_diff_bits(m, n), 2);
  // "AAAA" vs "AA": DL = 2, capped signatures are identical -> diff 0.
  const Signature p = make_signature("AAAA", FieldClass::kAlpha, 2);
  const Signature q = make_signature("AA", FieldClass::kAlpha, 2);
  EXPECT_EQ(find_diff_bits(p, q), 0);
}

TEST(FilterSafetyEdgeCases, CapNeverInflatesDiff) {
  // For the same pair, a narrower cap must never report MORE differing
  // bits than a wider cap (monotone information loss).
  fbf::util::Rng rng(515);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::string s =
        random_string(rng, 1, 12, Alphabet::kUpperAlpha);
    const std::string t =
        random_string(rng, 1, 12, Alphabet::kUpperAlpha);
    int prev = 0;
    for (int l = 4; l >= 1; --l) {
      const Signature m = make_signature(s, FieldClass::kAlpha, l);
      const Signature n = make_signature(t, FieldClass::kAlpha, l);
      const int diff = find_diff_bits(m, n);
      if (l < 4) {
        EXPECT_LE(diff, prev) << "s=" << s << " t=" << t << " l=" << l;
      }
      prev = diff;
    }
  }
}

TEST(FilterSafetyEdgeCases, SubstitutionFlipsAtMostTwoBits) {
  fbf::util::Rng rng(616);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::string s = random_string(rng, 1, 12, Alphabet::kDigits);
    const std::string t = fbf::datagen::apply_edit(
        s, fbf::datagen::EditKind::kSubstitution, Alphabet::kDigits, rng);
    const Signature m = make_signature(s, FieldClass::kNumeric);
    const Signature n = make_signature(t, FieldClass::kNumeric);
    EXPECT_LE(find_diff_bits(m, n), 2) << "s=" << s << " t=" << t;
  }
}

TEST(FilterSafetyEdgeCases, InsertDeleteFlipAtMostOneBit) {
  fbf::util::Rng rng(717);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::string s = random_string(rng, 2, 12, Alphabet::kDigits);
    const std::string ins = fbf::datagen::apply_edit(
        s, fbf::datagen::EditKind::kInsertion, Alphabet::kDigits, rng);
    const std::string del = fbf::datagen::apply_edit(
        s, fbf::datagen::EditKind::kDeletion, Alphabet::kDigits, rng);
    const Signature base = make_signature(s, FieldClass::kNumeric);
    EXPECT_LE(
        find_diff_bits(base, make_signature(ins, FieldClass::kNumeric)), 1);
    EXPECT_LE(
        find_diff_bits(base, make_signature(del, FieldClass::kNumeric)), 1);
  }
}

TEST(FilterSafetyEdgeCases, TranspositionFlipsZeroBits) {
  fbf::util::Rng rng(818);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::string s = random_string(rng, 2, 12, Alphabet::kUpperAlpha);
    const std::string t = fbf::datagen::apply_edit(
        s, fbf::datagen::EditKind::kTransposition, Alphabet::kUpperAlpha, rng);
    if (dl_distance(s, t) > 1) {
      continue;  // fell back to substitution on an all-equal string
    }
    const Signature m = make_signature(s, FieldClass::kAlpha, 2);
    const Signature n = make_signature(t, FieldClass::kAlpha, 2);
    // A pure adjacent swap preserves the multiset: zero differing bits.
    if (t != s && fbf::metrics::dl_distance(s, t) == 1 &&
        s.size() == t.size()) {
      // Could still be the substitution fallback; detect a permutation.
      std::string ss = s;
      std::string tt = t;
      std::sort(ss.begin(), ss.end());
      std::sort(tt.begin(), tt.end());
      if (ss == tt) {
        EXPECT_EQ(find_diff_bits(m, n), 0) << "s=" << s << " t=" << t;
      }
    }
  }
}

TEST(SignatureFuzz, ArbitraryBytesNeverCrashAndMatchTheCleanedString) {
  // Dirty ingest feeds raw CSV bytes into make_signature: embedded NULs,
  // control bytes and non-ASCII must never crash, must always produce the
  // layout-correct word count, and must equal the signature of the string
  // with all non-contributing bytes removed (non-letters for kAlpha,
  // non-digits for kNumeric, non-alnum for kAlphanumeric).
  fbf::util::Rng rng(fbf::util::fnv1a64("sig-fuzz"));
  const FieldClass classes[] = {FieldClass::kAlpha, FieldClass::kNumeric,
                                FieldClass::kAlphanumeric};
  for (int iter = 0; iter < 4000; ++iter) {
    const auto len = static_cast<std::size_t>(rng.below(33));
    std::string s(len, '\0');
    for (auto& ch : s) {
      ch = static_cast<char>(rng.below(256));
    }
    for (const FieldClass cls : classes) {
      for (int l = 1; l <= fbf::core::kMaxAlphaWords; ++l) {
        const Signature sig = make_signature(s, cls, l);
        EXPECT_EQ(sig.size(), fbf::core::signature_words(cls, l));
        // Deterministic: same bytes, same signature.
        EXPECT_TRUE(sig == make_signature(s, cls, l));
        // Non-contributing bytes are ignored, not misindexed.
        std::string cleaned;
        for (const char raw : s) {
          const unsigned char uc = static_cast<unsigned char>(raw);
          const bool is_alpha = (uc >= 'A' && uc <= 'Z') ||
                                (uc >= 'a' && uc <= 'z');
          const bool is_digit = uc >= '0' && uc <= '9';
          if ((cls == FieldClass::kAlpha && is_alpha) ||
              (cls == FieldClass::kNumeric && is_digit) ||
              (cls == FieldClass::kAlphanumeric && (is_alpha || is_digit))) {
            cleaned.push_back(raw);
          }
        }
        EXPECT_TRUE(sig == make_signature(cleaned, cls, l))
            << "len=" << s.size() << " cleaned=" << cleaned;
      }
    }
  }
}

TEST(SignatureFuzz, EmbeddedNulIsIgnoredLikeAnyNonAlnumByte) {
  const std::string with_nul("A\0B", 3);
  const Signature sig = make_signature(with_nul, FieldClass::kAlpha, 2);
  EXPECT_TRUE(sig == make_signature("AB", FieldClass::kAlpha, 2));
  const std::string nul_digits("1\0\0002", 4);
  EXPECT_TRUE(make_signature(nul_digits, FieldClass::kNumeric, 1) ==
              make_signature("12", FieldClass::kNumeric, 1));
}

}  // namespace
