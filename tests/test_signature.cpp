#include "core/signature.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/find_diff_bits.hpp"
#include "util/ascii.hpp"
#include "util/rng.hpp"

namespace {

using fbf::core::FieldClass;
using fbf::core::find_diff_bits;
using fbf::core::make_signature;
using fbf::core::set_alpha_bits;
using fbf::core::set_num_bits;
using fbf::core::Signature;
using fbf::core::signature_words;

TEST(NumSignature, PaperFigure4) {
  // Fig. 4: "8005551212" — digit layout 000 111 222 333 444 555 ... from
  // bit 0.  Occurrences: 0 x2, 1 x2, 2 x2, 5 x3, 8 x1.
  const std::uint32_t sig = set_num_bits("8005551212");
  const std::uint32_t expected = (0b11u << 0) |   // two 0s
                                 (0b11u << 3) |   // two 1s
                                 (0b11u << 6) |   // two 2s
                                 (0b111u << 15) |  // three 5s
                                 (0b1u << 24);    // one 8
  EXPECT_EQ(sig, expected);
}

TEST(NumSignature, CountsCapAtThree) {
  // "2133333333": only three of the eight 3s are recorded (paper §3).
  const std::uint32_t sig = set_num_bits("2133333333");
  EXPECT_EQ(sig, (1u << 6) | (1u << 3) | (0b111u << 9));
}

TEST(NumSignature, PaperPhoneDifferenceExample) {
  // §3: FBF difference between "213-333-3333" and "213-333-4444" is 3 + 3
  // on raw signatures (three 3-bits lost, three 4-bits gained)... the
  // paper counts 3 changed characters; the XOR sees both sides.
  const std::uint32_t m = set_num_bits("2133333333");
  const std::uint32_t n = set_num_bits("2133334444");
  // m has 3 occurrences of '3' recorded, n has 3 '3's? n = 213333 4444:
  // '3' occurs 4 times in n -> capped at 3 as well; '4' occurs 4 times ->
  // capped at 3.  XOR difference = the three new 4-bits.
  Signature ms;
  ms.push(m);
  Signature ns;
  ns.push(n);
  EXPECT_EQ(find_diff_bits(ms, ns), 3);
}

TEST(NumSignature, IgnoresNonDigits) {
  EXPECT_EQ(set_num_bits("800-555-1212"), set_num_bits("8005551212"));
  EXPECT_EQ(set_num_bits("ABC"), 0u);
  EXPECT_EQ(set_num_bits(""), 0u);
}

TEST(NumSignature, OccupiesOnlyThirtyBits) {
  fbf::util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::string digits(20, '\0');
    for (auto& ch : digits) {
      ch = static_cast<char>('0' + rng.below(10));
    }
    EXPECT_EQ(set_num_bits(digits) & 0xC0000000u, 0u);
  }
}

TEST(NumSignature, ProgressiveOccurrenceBits) {
  EXPECT_EQ(set_num_bits("7"), 0b001u << 21);
  EXPECT_EQ(set_num_bits("77"), 0b011u << 21);
  EXPECT_EQ(set_num_bits("777"), 0b111u << 21);
  EXPECT_EQ(set_num_bits("7777"), 0b111u << 21);  // capped
}

TEST(AlphaSignature, PaperFigure3) {
  // Fig. 3: "SMITH" sets bits H, I, M, S, T in word 0.
  const Signature sig = set_alpha_bits("SMITH", 1);
  ASSERT_EQ(sig.size(), 1u);
  const std::uint32_t expected = (1u << ('S' - 'A')) | (1u << ('M' - 'A')) |
                                 (1u << ('I' - 'A')) | (1u << ('T' - 'A')) |
                                 (1u << ('H' - 'A'));
  EXPECT_EQ(sig.word(0), expected);
}

TEST(AlphaSignature, CaseInsensitive) {
  EXPECT_EQ(set_alpha_bits("Smith", 2), set_alpha_bits("SMITH", 2));
  EXPECT_EQ(set_alpha_bits("sMiTh", 2), set_alpha_bits("SMITH", 2));
}

TEST(AlphaSignature, SecondOccurrenceGoesToSecondWord) {
  const Signature sig = set_alpha_bits("ANNA", 2);
  ASSERT_EQ(sig.size(), 2u);
  // Word 0: A and N present; word 1: second A and second N.
  EXPECT_EQ(sig.word(0), (1u << 0) | (1u << ('N' - 'A')));
  EXPECT_EQ(sig.word(1), (1u << 0) | (1u << ('N' - 'A')));
}

TEST(AlphaSignature, CapRespectsWordCount) {
  // "AAAA" with l=2 records two As; with l=4 records four.
  const Signature two = set_alpha_bits("AAAA", 2);
  EXPECT_EQ(two.word(0), 1u);
  EXPECT_EQ(two.word(1), 1u);
  const Signature four = set_alpha_bits("AAAA", 4);
  ASSERT_EQ(four.size(), 4u);
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(four.word(w), 1u);
  }
}

TEST(AlphaSignature, IgnoresDigitsAndPunctuation) {
  EXPECT_EQ(set_alpha_bits("O'BRIEN-2", 2), set_alpha_bits("OBRIEN", 2));
}

TEST(AlphaSignature, FormalCondition) {
  // Paper's invariant: bit c of word j is set iff the (j+1)-th occurrence
  // of letter c exists in s.  Checked exhaustively on random strings.
  fbf::util::Rng rng(9);
  for (int iter = 0; iter < 500; ++iter) {
    std::string s(rng.below(16), '\0');
    for (auto& ch : s) {
      ch = static_cast<char>('A' + rng.below(8));
    }
    const int l = 1 + static_cast<int>(rng.below(4));
    const Signature sig = set_alpha_bits(s, l);
    int counts[26] = {};
    for (const char ch : s) {
      ++counts[fbf::util::alpha_index(ch)];
    }
    for (int c = 0; c < 26; ++c) {
      for (int j = 0; j < l; ++j) {
        const bool bit =
            (sig.word(static_cast<std::size_t>(j)) >> c) & 1u;
        EXPECT_EQ(bit, counts[c] >= j + 1)
            << "s=" << s << " c=" << c << " j=" << j << " l=" << l;
      }
    }
  }
}

TEST(MakeSignature, WordCountsPerFieldClass) {
  EXPECT_EQ(make_signature("SMITH", FieldClass::kAlpha, 2).size(), 2u);
  EXPECT_EQ(make_signature("123456789", FieldClass::kNumeric).size(), 1u);
  EXPECT_EQ(make_signature("1801 N BROAD ST", FieldClass::kAlphanumeric, 2).size(),
            3u);
  EXPECT_EQ(signature_words(FieldClass::kAlpha, 2), 2u);
  EXPECT_EQ(signature_words(FieldClass::kNumeric, 2), 1u);
  EXPECT_EQ(signature_words(FieldClass::kAlphanumeric, 2), 3u);
}

TEST(MakeSignature, AlphanumericCombinesBothParts) {
  const Signature sig = make_signature("AB12", FieldClass::kAlphanumeric, 1);
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_EQ(sig.word(0), 0b11u);                  // A, B
  EXPECT_EQ(sig.word(1), (1u << 3) | (1u << 6));  // 1, 2
}

TEST(Signature, EqualityComparesWordsAndSize) {
  Signature a;
  a.push(1);
  a.push(2);
  Signature b;
  b.push(1);
  b.push(2);
  Signature c;
  c.push(1);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(FindDiffBits, IdenticalSignaturesZero) {
  const Signature a = make_signature("SMITH", FieldClass::kAlpha, 2);
  EXPECT_EQ(find_diff_bits(a, a), 0);
}

TEST(FindDiffBits, PaperSubstitutionWorstCase) {
  // §4: one substitution flips at most 2 bits ("12346" vs "12345").
  const Signature m = make_signature("12346", FieldClass::kNumeric);
  const Signature n = make_signature("12345", FieldClass::kNumeric);
  EXPECT_EQ(find_diff_bits(m, n), 2);
}

TEST(FindDiffBits, PaperTranspositionZero) {
  const Signature m = make_signature("13245", FieldClass::kNumeric);
  const Signature n = make_signature("12345", FieldClass::kNumeric);
  EXPECT_EQ(find_diff_bits(m, n), 0);
}

TEST(FindDiffBits, PaperInsertDeleteOne) {
  const Signature m = make_signature("123456", FieldClass::kNumeric);
  const Signature n = make_signature("12345", FieldClass::kNumeric);
  EXPECT_EQ(find_diff_bits(m, n), 1);
  // §4 repeated-character case: "1234566" vs "123456" — the second 6 sets
  // the "found a second 6" bit.
  const Signature p = make_signature("1234566", FieldClass::kNumeric);
  const Signature q = make_signature("123456", FieldClass::kNumeric);
  EXPECT_EQ(find_diff_bits(p, q), 1);
}

}  // namespace
