#include "linkage/blocking.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "linkage/person_gen.hpp"
#include "util/rng.hpp"

namespace {

namespace lk = fbf::linkage;
using fbf::util::Rng;

std::vector<lk::PersonRecord> people_with_names(
    std::initializer_list<std::pair<const char*, const char*>> names) {
  std::vector<lk::PersonRecord> out;
  std::uint64_t id = 0;
  for (const auto& [first, last] : names) {
    lk::PersonRecord p;
    p.id = id++;
    p.first_name = first;
    p.last_name = last;
    out.push_back(std::move(p));
  }
  return out;
}

TEST(Blocking, ExhaustivePairsCount) {
  const auto pairs = lk::exhaustive_pairs(3, 4);
  EXPECT_EQ(pairs.size(), 12u);
  const std::set<lk::CandidatePair> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(Blocking, StandardBlockingGroupsByKey) {
  const auto left = people_with_names(
      {{"MARY", "SMITH"}, {"JOHN", "JONES"}, {"ANNA", "SMYTH"}});
  const auto right = people_with_names(
      {{"MARY", "SMITH"}, {"JO", "JONES"}, {"BOB", "BROWN"}});
  const auto pairs = lk::standard_block_pairs(
      left, right,
      [](const lk::PersonRecord& r) { return r.last_name.substr(0, 1); });
  // S-block: left {SMITH, SMYTH} x right {SMITH} = 2; J-block: 1x1 = 1;
  // B-block: no left record.
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(Blocking, EmptyKeyRecordsExcluded) {
  auto left = people_with_names({{"MARY", "SMITH"}, {"JOHN", ""}});
  auto right = people_with_names({{"MARY", "SMITH"}, {"JO", ""}});
  const auto pairs = lk::standard_block_pairs(
      left, right,
      [](const lk::PersonRecord& r) { return r.last_name; });
  // Only the SMITH pair; the empty-keyed records generate no candidates —
  // the recall failure mode the paper's intro describes.
  EXPECT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], lk::CandidatePair(0, 0));
}

TEST(Blocking, SoundexKeyBlocksVariantSpellings) {
  const auto left = people_with_names({{"M", "SMITH"}});
  const auto right = people_with_names({{"M", "SMYTH"}});
  const auto pairs =
      lk::standard_block_pairs(left, right, lk::block_key_soundex_lastname);
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(Blocking, BlockingKeyErrorLosesTruePair) {
  // A single leading-letter typo moves the record to another block: the
  // true pair is silently lost (FBF, by contrast, would keep it).
  const auto left = people_with_names({{"M", "SMITH"}});
  const auto right = people_with_names({{"M", "XMITH"}});
  const auto pairs = lk::standard_block_pairs(
      left, right,
      [](const lk::PersonRecord& r) { return r.last_name.substr(0, 1); });
  EXPECT_TRUE(pairs.empty());
}

TEST(Blocking, SortedNeighborhoodFindsNearbyKeys) {
  const auto left = people_with_names(
      {{"A", "ANDERSON"}, {"B", "BAKER"}, {"C", "CARTER"}});
  const auto right = people_with_names(
      {{"A", "ANDERSEN"}, {"B", "BAKERS"}, {"Z", "ZEBRA"}});
  const auto pairs =
      lk::sorted_neighborhood_pairs(left, right, lk::sort_key_name, 3);
  // ANDERSEN/ANDERSON and BAKER/BAKERS sort adjacent -> candidates.
  const auto has = [&](std::uint32_t i, std::uint32_t j) {
    return std::find(pairs.begin(), pairs.end(),
                     lk::CandidatePair(i, j)) != pairs.end();
  };
  EXPECT_TRUE(has(0, 0));
  EXPECT_TRUE(has(1, 1));
  // ZEBRA is far from everything with window 3 over 6 records... it can
  // only pair with CARTER if within the window; it must never pair with
  // ANDERSON.
  EXPECT_FALSE(has(0, 2));
}

TEST(Blocking, SortedNeighborhoodNoDuplicates) {
  Rng rng(3);
  const auto clean = lk::generate_people(60, rng);
  const auto error = lk::make_error_records(clean, {}, rng);
  const auto pairs =
      lk::sorted_neighborhood_pairs(clean, error, lk::sort_key_name, 8);
  const std::set<lk::CandidatePair> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), pairs.size());
}

TEST(Blocking, SortedNeighborhoodSubsetOfExhaustive) {
  Rng rng(4);
  const auto clean = lk::generate_people(40, rng);
  const auto error = lk::make_error_records(clean, {}, rng);
  const auto pairs =
      lk::sorted_neighborhood_pairs(clean, error, lk::sort_key_name, 5);
  EXPECT_LT(pairs.size(), 40u * 40u);
  for (const auto& [i, j] : pairs) {
    EXPECT_LT(i, 40u);
    EXPECT_LT(j, 40u);
  }
}

TEST(Blocking, WindowGrowthIncreasesCandidates) {
  Rng rng(5);
  const auto clean = lk::generate_people(80, rng);
  const auto error = lk::make_error_records(clean, {}, rng);
  const auto small = lk::sorted_neighborhood_pairs(clean, error,
                                                   lk::sort_key_name, 3);
  const auto large = lk::sorted_neighborhood_pairs(clean, error,
                                                   lk::sort_key_name, 12);
  EXPECT_LT(small.size(), large.size());
}

TEST(Blocking, PrefixKeyHelper) {
  lk::PersonRecord p;
  p.last_name = "JOHNSON";
  EXPECT_EQ(lk::block_key_lastname_prefix(p, 3), "JOH");
  EXPECT_EQ(lk::block_key_lastname_prefix(p, 20), "JOHNSON");
}

}  // namespace
