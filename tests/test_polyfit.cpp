#include "util/polyfit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace {

using fbf::util::polyfit;
using fbf::util::PolyFit;
using fbf::util::r_squared;
using fbf::util::solve_dense;

TEST(SolveDense, Identity) {
  const auto x = solve_dense({1, 0, 0, 1}, {3.0, 4.0}, 2);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 4.0, 1e-12);
}

TEST(SolveDense, RequiresPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_dense({0, 1, 1, 0}, {2.0, 5.0}, 2);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 5.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveDense, SingularReturnsNullopt) {
  EXPECT_FALSE(solve_dense({1, 2, 2, 4}, {1.0, 2.0}, 2).has_value());
}

TEST(Polyfit, ExactLine) {
  const std::vector<double> xs = {0, 1, 2, 3};
  const std::vector<double> ys = {1, 3, 5, 7};  // y = 2x + 1
  const auto fit = polyfit(xs, ys, 1);
  ASSERT_TRUE(fit.has_value());
  ASSERT_EQ(fit->coeffs.size(), 2u);
  EXPECT_NEAR(fit->coeffs[0], 2.0, 1e-9);
  EXPECT_NEAR(fit->coeffs[1], 1.0, 1e-9);
}

TEST(Polyfit, ExactQuadratic) {
  // The paper's fit form: a n^2 + b n + c.
  const double a = 1.32e-3;
  const double b = -0.374;
  const double c = 512.739;
  std::vector<double> xs;
  std::vector<double> ys;
  for (int n = 1000; n <= 18000; n += 1000) {
    xs.push_back(n);
    ys.push_back(a * n * n + b * n + c);
  }
  const auto fit = polyfit(xs, ys, 2);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coeffs[0], a, 1e-9);
  EXPECT_NEAR(fit->coeffs[1], b, 1e-4);
  EXPECT_NEAR(fit->coeffs[2], c, 1e-1);
  EXPECT_NEAR(r_squared(*fit, xs, ys), 1.0, 1e-12);
}

TEST(Polyfit, NoisyQuadraticRecoversLeadingCoefficient) {
  fbf::util::Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int n = 500; n <= 20000; n += 250) {
    xs.push_back(n);
    ys.push_back(2e-3 * n * n + 5.0 * n + 100.0 +
                 (rng.uniform() - 0.5) * 50.0);
  }
  const auto fit = polyfit(xs, ys, 2);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coeffs[0], 2e-3, 1e-5);
  EXPECT_GT(r_squared(*fit, xs, ys), 0.9999);
}

TEST(Polyfit, UnderdeterminedReturnsNullopt) {
  EXPECT_FALSE(polyfit(std::vector<double>{1.0, 2.0},
                       std::vector<double>{1.0, 2.0}, 2)
                   .has_value());
}

TEST(Polyfit, MismatchedLengthsReturnsNullopt) {
  EXPECT_FALSE(polyfit(std::vector<double>{1.0, 2.0, 3.0},
                       std::vector<double>{1.0, 2.0}, 1)
                   .has_value());
}

TEST(Polyfit, EvaluationUsesHornerConvention) {
  PolyFit fit;
  fit.coeffs = {2.0, -3.0, 1.0};  // 2x^2 - 3x + 1
  EXPECT_DOUBLE_EQ(fit(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fit(1.0), 0.0);
  EXPECT_DOUBLE_EQ(fit(2.0), 3.0);
  EXPECT_EQ(fit.degree(), 2u);
}

TEST(RSquared, ZeroForMeanPrediction) {
  PolyFit fit;
  fit.coeffs = {2.0};  // constant = mean of ys
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_NEAR(r_squared(fit, xs, ys), 0.0, 1e-12);
}

TEST(RSquared, EmptyInputIsZero) {
  PolyFit fit;
  fit.coeffs = {1.0};
  EXPECT_DOUBLE_EQ(r_squared(fit, {}, {}), 0.0);
}

}  // namespace
