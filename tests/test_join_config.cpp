// Configuration-sweep tests for the join engine: every knob that must
// not change the match set (popcount strategy, signature width, thread
// count) and every knob that must (k, method).
#include <gtest/gtest.h>

#include "core/match_join.hpp"
#include "datagen/dataset.hpp"

namespace {

namespace c = fbf::core;
namespace dg = fbf::datagen;

const dg::PairedDataset& ln_dataset() {
  static const dg::PairedDataset dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 250, 2024).value();
  return dataset;
}

c::JoinConfig fpdl_config() {
  c::JoinConfig config;
  config.method = c::Method::kFpdl;
  config.k = 1;
  config.field_class = c::FieldClass::kAlpha;
  return config;
}

class PopcountSweep
    : public ::testing::TestWithParam<fbf::util::PopcountKind> {};

TEST_P(PopcountSweep, StrategyNeverChangesAnyCounter) {
  auto config = fpdl_config();
  config.popcount = fbf::util::PopcountKind::kHardware;
  const auto baseline =
      c::match_strings(ln_dataset().clean, ln_dataset().error, config);
  config.popcount = GetParam();
  const auto stats =
      c::match_strings(ln_dataset().clean, ln_dataset().error, config);
  EXPECT_EQ(stats.matches, baseline.matches);
  EXPECT_EQ(stats.fbf_pass, baseline.fbf_pass);
  EXPECT_EQ(stats.verify_calls, baseline.verify_calls);
  EXPECT_EQ(stats.diagonal_matches, baseline.diagonal_matches);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PopcountSweep,
                         ::testing::Values(fbf::util::PopcountKind::kWegner,
                                           fbf::util::PopcountKind::kHardware,
                                           fbf::util::PopcountKind::kLut));

TEST(AlphaWordsSweep, MatchSetInvariantFilterSelectivityMonotone) {
  // More signature words = sharper filter (fewer pass) but identical
  // final matches (the verifier fixes any filter looseness).
  std::uint64_t prev_pass = ~0ull;
  std::uint64_t baseline_matches = 0;
  for (const int l : {1, 2, 3, 4}) {
    auto config = fpdl_config();
    config.alpha_words = l;
    const auto stats =
        c::match_strings(ln_dataset().clean, ln_dataset().error, config);
    if (l == 1) {
      baseline_matches = stats.matches;
    } else {
      EXPECT_EQ(stats.matches, baseline_matches) << "l=" << l;
    }
    EXPECT_LE(stats.fbf_pass, prev_pass) << "l=" << l;
    prev_pass = stats.fbf_pass;
  }
}

TEST(ThresholdSweep, MatchesGrowWithK) {
  std::uint64_t prev = 0;
  for (const int k : {0, 1, 2, 3}) {
    auto config = fpdl_config();
    config.k = k;
    const auto stats =
        c::match_strings(ln_dataset().clean, ln_dataset().error, config);
    EXPECT_GE(stats.matches, prev) << "k=" << k;
    prev = stats.matches;
    // Diagonal coverage: at k >= 1 every injected single edit matches.
    if (k >= 1) {
      EXPECT_EQ(stats.diagonal_matches, ln_dataset().size());
    }
  }
}

TEST(ThresholdSweep, KZeroIsExactEquality) {
  auto config = fpdl_config();
  config.k = 0;
  const auto stats =
      c::match_strings(ln_dataset().clean, ln_dataset().clean, config);
  // Self-join at k = 0: the diagonal matches exactly (clean lists have
  // unique entries).
  EXPECT_EQ(stats.diagonal_matches, ln_dataset().size());
  EXPECT_EQ(stats.matches, ln_dataset().size());
}

TEST(GenTiming, SignatureGenerationScalesWithInput) {
  auto config = fpdl_config();
  const auto small = c::match_strings(ln_dataset().clean, ln_dataset().error,
                                      config);
  EXPECT_GT(small.signature_gen_ms, 0.0);
  // Gen time is charged once per join, for both sides.
  EXPECT_LT(small.signature_gen_ms, small.join_ms + 50.0);
}

TEST(MethodSweep, VerifierlessMethodsSkipVerify) {
  for (const auto method :
       {c::Method::kFbfOnly, c::Method::kLengthOnly, c::Method::kLfbfOnly,
        c::Method::kJaro, c::Method::kHamming, c::Method::kSoundex}) {
    auto config = fpdl_config();
    config.method = method;
    const auto stats =
        c::match_strings(ln_dataset().clean, ln_dataset().error, config);
    EXPECT_EQ(stats.verify_calls, 0u) << c::method_name(method);
  }
}

TEST(MethodSweep, MyersAgreesWithLevenshteinSemantics) {
  // Myers verifies plain Levenshtein: transposition pairs need k=2.
  const std::vector<std::string> left = {"SMITH"};
  const std::vector<std::string> right = {"SMIHT"};
  auto config = fpdl_config();
  config.method = c::Method::kMyers;
  config.k = 1;
  EXPECT_EQ(c::match_strings(left, right, config).matches, 0u);
  config.k = 2;
  EXPECT_EQ(c::match_strings(left, right, config).matches, 1u);
}

}  // namespace
