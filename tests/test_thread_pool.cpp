#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using fbf::util::parallel_chunks;
using fbf::util::ThreadPool;

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait_idle: destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  EXPECT_EQ(pool.size(), 2u);
}

TEST(ThreadPool, TaskExceptionRethrownFromWaitIdle) {
  // Regression: a throwing task used to escape the worker thread and
  // call std::terminate.  It must instead surface at wait_idle().
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task blew up"); });
  try {
    pool.wait_idle();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task blew up");
  }
}

TEST(ThreadPool, PoolIsReusableAfterTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error was consumed; the pool keeps working.
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();  // must not rethrow again
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, FirstExceptionWinsOthersAreSwallowed) {
  ThreadPool pool(4);
  for (int i = 0; i < 10; ++i) {
    pool.submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // remaining captured errors do not resurface
}

TEST(ParallelChunks, CoversRangeExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(97);
    parallel_chunks(hits.size(), threads,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        hits[i].fetch_add(1);
                      }
                    });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelChunks, ChunksAreContiguousAndOrdered) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges(4);
  parallel_chunks(10, 4,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                    ranges[chunk] = {begin, end};
                  });
  EXPECT_EQ(ranges[0].first, 0u);
  EXPECT_EQ(ranges[3].second, 10u);
  for (std::size_t c = 1; c < ranges.size(); ++c) {
    EXPECT_EQ(ranges[c].first, ranges[c - 1].second);
  }
}

TEST(ParallelChunks, ZeroCountInvokesNothing) {
  bool called = false;
  parallel_chunks(0, 4, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ParallelChunks, SingleThreadRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  parallel_chunks(5, 1, [&](std::size_t, std::size_t, std::size_t) {
    body_thread = std::this_thread::get_id();
  });
  EXPECT_EQ(body_thread, caller);
}

TEST(ParallelChunks, MoreThreadsThanWork) {
  std::atomic<int> calls{0};
  parallel_chunks(3, 16, [&](std::size_t, std::size_t begin, std::size_t end) {
    calls.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelChunks, DeterministicSumAcrossThreadCounts) {
  // Chunk merging in chunk order must make reductions thread-count
  // independent; emulate by summing per-chunk then folding in order.
  std::vector<int> values(1000);
  std::iota(values.begin(), values.end(), 1);
  auto run = [&](std::size_t threads) {
    std::vector<long> partial(threads, 0);
    parallel_chunks(values.size(), threads,
                    [&](std::size_t chunk, std::size_t begin,
                        std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        partial[chunk] += values[i];
                      }
                    });
    long total = 0;
    for (const long p : partial) {
      total += p;
    }
    return total;
  };
  const long serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(7), serial);
}

}  // namespace
