// Elastic cluster properties.  The headline acceptance criteria:
//
//  * fault-free elastic == exhaustive (replicate-right is lossless under
//    ring partitioning too);
//  * with R=2, EVERY single-node kill schedule — every node x every kill
//    position, including kills at every step of a live rebalance on both
//    the source and dest side — yields dropped_pairs == 0 and match
//    decisions identical (fingerprint-equal) to the static fault-free
//    cluster;
//  * membership changes rebalance through the manifest/base/delta chain
//    while queries continue;
//  * the same protocol over real TCP sockets produces the same decisions.
#include "cluster/elastic.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/rebalance.hpp"
#include "cluster/service.hpp"
#include "linkage/person_gen.hpp"
#include "net/tcp.hpp"
#include "util/rng.hpp"

namespace {

namespace cl = fbf::cluster;
namespace lk = fbf::linkage;
namespace net = fbf::net;
namespace u = fbf::util;

struct Fixture {
  std::vector<lk::PersonRecord> clean;
  std::vector<lk::PersonRecord> error;

  explicit Fixture(std::size_t n, std::uint64_t seed = 5) {
    u::Rng rng(seed);
    clean = lk::generate_people(n, rng);
    lk::RecordErrorModel model;
    model.field_typo_rate = 0.25;
    error = lk::make_error_records(clean, model, rng);
  }
};

cl::ElasticConfig make_config() {
  cl::ElasticConfig config;
  config.nodes = {0, 1, 2};
  config.replication = 2;
  config.write_quorum = 1;
  config.ring.seed = 11;
  config.ring.vnodes_per_node = 4;  // a handful of partitions per node
  config.link.comparator =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  return config;
}

cl::ElasticSchedule kill_at(cl::NodeId node, std::size_t at_query) {
  cl::ElasticSchedule schedule;
  schedule.events.push_back(
      {cl::ElasticEvent::Kind::kKillNode, node, at_query, std::nullopt});
  return schedule;
}

TEST(Elastic, FaultFreeMatchesExhaustive) {
  const Fixture fx(80);
  const auto config = make_config();
  const auto result = cl::link_elastic(fx.clean, fx.error, config);
  const auto baseline = lk::link_exhaustive(fx.clean, fx.error, config.link);
  EXPECT_EQ(result.total_matches, baseline.matches);
  EXPECT_EQ(result.total_true_positives, baseline.true_positives);
  EXPECT_EQ(result.total_pairs, baseline.candidate_pairs)
      << "broadcast right: pair space must be the full product";
  EXPECT_EQ(result.dropped_partitions, 0u);
  EXPECT_EQ(result.dropped_pairs, 0u);
  EXPECT_EQ(result.write_quorum_failures, 0u);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_GT(result.partitions.size(), 1u);
  std::size_t records = 0;
  for (const auto& p : result.partitions) {
    EXPECT_TRUE(p.completed);
    records += p.records;
  }
  EXPECT_EQ(records, fx.clean.size());
}

TEST(Elastic, RunsAreDeterministic) {
  const Fixture fx(60);
  const auto config = make_config();
  const auto a = cl::link_elastic(fx.clean, fx.error, config);
  const auto b = cl::link_elastic(fx.clean, fx.error, config);
  EXPECT_EQ(a.decision_fingerprint(), b.decision_fingerprint());
  EXPECT_EQ(a.total_matches, b.total_matches);
  EXPECT_EQ(a.write_acks, b.write_acks);
}

TEST(Elastic, EverySingleNodeKillKeepsEveryDecision) {
  // The headline: R=2 means every partition has two replicas, so no
  // single node death may drop a partition or change a decision —
  // whichever query the kill lands before.
  const Fixture fx(48);
  const auto config = make_config();
  const auto reference = cl::link_elastic(fx.clean, fx.error, config);
  ASSERT_EQ(reference.dropped_pairs, 0u);
  const std::size_t queries = reference.partitions.size();
  for (const cl::NodeId victim : config.nodes) {
    for (std::size_t q = 0; q <= queries; ++q) {
      const auto result =
          cl::link_elastic(fx.clean, fx.error, config, kill_at(victim, q));
      EXPECT_EQ(result.dropped_pairs, 0u)
          << "kill node " << victim << " before query " << q;
      EXPECT_EQ(result.decision_fingerprint(),
                reference.decision_fingerprint())
          << "kill node " << victim << " before query " << q;
      EXPECT_EQ(result.total_matches, reference.total_matches);
    }
  }
}

TEST(Elastic, FailoversAreCountedWhenAPrimaryDies) {
  const Fixture fx(48);
  const auto config = make_config();
  const auto result =
      cl::link_elastic(fx.clean, fx.error, config, kill_at(0, 0));
  EXPECT_EQ(result.dropped_pairs, 0u);
  // Node 0 owned some partitions as primary; their queries were served
  // by the surviving replica.
  EXPECT_GT(result.failovers, 0u);
  EXPECT_GT(result.retries, 0u);
}

TEST(Elastic, KillDuringRebalanceCrashMatrix) {
  // Add a node mid-run and kill a participant at every step of the
  // migration protocol, on both the source and the dest side.  Under
  // every cell: zero dropped pairs, decisions identical to the static
  // fault-free cluster.  Ownership flips only at kHandoff, so either
  // the old or the new replica set is authoritative and complete.
  const Fixture fx(48);
  const auto config = make_config();
  const auto reference = cl::link_elastic(fx.clean, fx.error, config);
  for (const cl::MigrationStep step : cl::all_migration_steps()) {
    for (const auto victim : {cl::MigrationKill::Victim::kSource,
                              cl::MigrationKill::Victim::kDest}) {
      cl::ElasticSchedule schedule;
      cl::ElasticEvent event;
      event.kind = cl::ElasticEvent::Kind::kAddNode;
      event.node = 3;
      event.at_query = 1;
      event.kill_during = cl::MigrationKill{step, victim};
      schedule.events.push_back(event);
      const auto result =
          cl::link_elastic(fx.clean, fx.error, config, schedule);
      const std::string label =
          std::string(cl::migration_step_name(step)) + "/" +
          (victim == cl::MigrationKill::Victim::kSource ? "source" : "dest");
      EXPECT_GE(result.migration.partitions_considered, 1u) << label;
      EXPECT_EQ(result.dropped_pairs, 0u) << label;
      EXPECT_EQ(result.decision_fingerprint(),
                reference.decision_fingerprint())
          << label;
      EXPECT_EQ(result.migration.partitions_considered,
                result.migration.completed + result.migration.aborted)
          << label;
    }
  }
}

TEST(Elastic, AddNodeRebalancesAndKeepsDecisions) {
  const Fixture fx(60);
  const auto config = make_config();
  const auto reference = cl::link_elastic(fx.clean, fx.error, config);
  cl::ElasticSchedule schedule;
  schedule.events.push_back(
      {cl::ElasticEvent::Kind::kAddNode, 3, 2, std::nullopt});
  const auto result = cl::link_elastic(fx.clean, fx.error, config, schedule);
  EXPECT_EQ(result.events_applied, 1u);
  EXPECT_GE(result.migration.partitions_considered, 1u);
  EXPECT_GT(result.migration.completed, 0u);
  EXPECT_EQ(result.migration.aborted, 0u);
  EXPECT_GT(result.migration.base_transfers, 0u);
  EXPECT_GT(result.migration.bytes_moved, 0u);
  EXPECT_EQ(result.dropped_pairs, 0u);
  EXPECT_EQ(result.decision_fingerprint(), reference.decision_fingerprint());
}

TEST(Elastic, RemoveNodeRebalancesAndKeepsDecisions) {
  const Fixture fx(60);
  const auto config = make_config();
  const auto reference = cl::link_elastic(fx.clean, fx.error, config);
  cl::ElasticSchedule schedule;
  schedule.events.push_back(
      {cl::ElasticEvent::Kind::kRemoveNode, 2, 1, std::nullopt});
  const auto result = cl::link_elastic(fx.clean, fx.error, config, schedule);
  // Node 2's partitions re-home to the survivors: state flows to new
  // replicas (the leaving node is alive and serves as a source), then
  // its copies are dropped.
  EXPECT_GE(result.migration.partitions_considered, 1u);
  EXPECT_GT(result.migration.completed, 0u);
  EXPECT_EQ(result.dropped_pairs, 0u);
  EXPECT_EQ(result.decision_fingerprint(), reference.decision_fingerprint());
}

TEST(Elastic, LateArrivalsChangeTimingNotDecisions) {
  // A late fraction turns the tail of each partition into catch-up
  // deltas delivered mid-run.  Same records, same order — decisions
  // must not move, with or without a concurrent rebalance.
  const Fixture fx(60);
  auto config = make_config();
  const auto reference = cl::link_elastic(fx.clean, fx.error, config);
  config.late_fraction = 0.4;
  const auto late = cl::link_elastic(fx.clean, fx.error, config);
  EXPECT_EQ(late.decision_fingerprint(), reference.decision_fingerprint());
  EXPECT_EQ(late.dropped_pairs, 0u);

  cl::ElasticSchedule schedule;
  schedule.events.push_back(
      {cl::ElasticEvent::Kind::kAddNode, 3, 1, std::nullopt});
  const auto rebalanced =
      cl::link_elastic(fx.clean, fx.error, config, schedule);
  EXPECT_EQ(rebalanced.decision_fingerprint(),
            reference.decision_fingerprint());
  EXPECT_EQ(rebalanced.dropped_pairs, 0u);
  EXPECT_GT(rebalanced.migration.delta_transfers +
                rebalanced.migration.base_transfers,
            0u);
}

TEST(Elastic, StorageFaultsAreAbsorbedByRetryAndQuorum) {
  // Torn writes and failed puts inside the node-local object stores:
  // verify-before-ack turns them into failed write attempts, bounded
  // retry re-puts the same bytes, and R=2 covers a replica that never
  // recovers.  Decisions hold.
  const Fixture fx(48);
  auto config = make_config();
  const auto reference = cl::link_elastic(fx.clean, fx.error, config);
  config.storage_faults.seed = 21;
  config.storage_faults.put_fail_rate = 0.2;
  config.storage_faults.torn_write_rate = 0.1;
  const auto result = cl::link_elastic(fx.clean, fx.error, config);
  EXPECT_GT(result.retries, 0u) << "seed 21 should draw some storage faults";
  EXPECT_EQ(result.dropped_pairs, 0u);
  EXPECT_EQ(result.decision_fingerprint(), reference.decision_fingerprint());
}

TEST(Elastic, WriteQuorumFailuresAreReportedNotFatal) {
  // Every put fails: no replica ever acks, every partition misses
  // quorum, every query drops.  The run completes with full accounting.
  const Fixture fx(30);
  auto config = make_config();
  config.write_quorum = 2;
  config.storage_faults.put_fail_rate = 1.0;
  const auto result = cl::link_elastic(fx.clean, fx.error, config);
  EXPECT_EQ(result.write_quorum_failures, result.partitions.size());
  EXPECT_EQ(result.dropped_partitions, result.partitions.size());
  EXPECT_EQ(result.total_pairs, 0u);
  EXPECT_EQ(result.dropped_pairs,
            static_cast<std::uint64_t>(fx.clean.size()) * fx.error.size());
  EXPECT_EQ(result.write_acks, 0u);
}

TEST(Elastic, TransientNetFaultsKeepDecisions) {
  const Fixture fx(48);
  auto config = make_config();
  const auto reference = cl::link_elastic(fx.clean, fx.error, config);
  lk::ShardFaultPolicy policy;
  policy.faults.seed = 77;
  policy.faults.shard_fail_rate = 0.3;
  policy.retry.max_attempts = 6;
  policy.retry.full_jitter = true;  // desynchronized, still deterministic
  policy.retry.jitter_seed = 5;
  config.fault = policy;
  const auto result = cl::link_elastic(fx.clean, fx.error, config);
  EXPECT_GT(result.retries, 0u);
  EXPECT_EQ(result.dropped_pairs, 0u);
  EXPECT_EQ(result.decision_fingerprint(), reference.decision_fingerprint());
  const auto again = cl::link_elastic(fx.clean, fx.error, config);
  EXPECT_EQ(again.retries, result.retries) << "fault runs must replay exactly";
  EXPECT_DOUBLE_EQ(again.backoff_ms, result.backoff_ms);
}

TEST(Elastic, AffinityKeysAreAllLossless) {
  // Placement only decides balance and movement; the right list is
  // always broadcast, so every affinity key yields the same totals.
  const Fixture fx(60);
  auto config = make_config();
  const auto by_id = cl::link_elastic(fx.clean, fx.error, config);
  config.affinity = cl::AffinityKey::kLastName;
  const auto by_name = cl::link_elastic(fx.clean, fx.error, config);
  config.affinity = cl::AffinityKey::kSoundexLastName;
  const auto by_sdx = cl::link_elastic(fx.clean, fx.error, config);
  EXPECT_EQ(by_name.total_matches, by_id.total_matches);
  EXPECT_EQ(by_sdx.total_matches, by_id.total_matches);
  EXPECT_EQ(by_name.total_true_positives, by_id.total_true_positives);
  EXPECT_EQ(by_sdx.total_true_positives, by_id.total_true_positives);
  EXPECT_EQ(by_name.total_pairs, by_id.total_pairs);
}

TEST(Elastic, CountersAreInternallyConsistent) {
  const Fixture fx(48);
  const auto config = make_config();
  const auto result =
      cl::link_elastic(fx.clean, fx.error, config, kill_at(1, 1));
  std::uint64_t served = 0;
  double busiest = 0.0;
  for (const auto& c : result.replicas) {
    served += c.queries_served;
    busiest = std::max(busiest, c.busy_ms);
    EXPECT_GE(c.query_attempts, c.queries_served);
    EXPECT_GE(c.write_attempts, 1u);
  }
  std::size_t completed = 0;
  for (const auto& p : result.partitions) {
    completed += p.completed ? 1 : 0;
  }
  EXPECT_EQ(served, completed);
  EXPECT_DOUBLE_EQ(result.makespan_ms, busiest);
  EXPECT_EQ(result.partitions.size(),
            completed + result.dropped_partitions);
}

TEST(Elastic, NamesAreStable) {
  EXPECT_STREQ(cl::affinity_key_name(cl::AffinityKey::kRecordId),
               "record-id");
  EXPECT_STREQ(cl::migration_step_name(cl::MigrationStep::kHandoff),
               "handoff");
  EXPECT_STREQ(cl::migration_step_name(cl::MigrationStep::kDeltaTraffic),
               "delta-traffic");
}

// --- the protocol codecs ------------------------------------------------

TEST(ClusterProtocol, RecordListRoundTrips) {
  u::Rng rng(3);
  const auto people = lk::generate_people(9, rng);
  const std::string blob = cl::encode_record_list(people);
  const auto decoded = cl::decode_record_list(blob);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), people.size());
  for (std::size_t i = 0; i < people.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].id, people[i].id);
    EXPECT_EQ(decoded.value()[i].last_name, people[i].last_name);
  }
  EXPECT_FALSE(cl::decode_record_list(blob.substr(0, blob.size() - 3)).ok());
  EXPECT_FALSE(cl::decode_record_list(blob + "x").ok());
}

TEST(ClusterProtocol, PayloadsRoundTrip) {
  cl::ReplicaWrite w{42, 3, "blobbytes"};
  const auto w2 = cl::decode_replica_write(cl::encode_replica_write(w));
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ(w2.value().pid, 42u);
  EXPECT_EQ(w2.value().delta_seq, 3u);
  EXPECT_EQ(w2.value().blob, "blobbytes");

  const auto q = cl::decode_replica_query(
      cl::encode_replica_query({0xDEADBEEFull}));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().pid, 0xDEADBEEFull);

  cl::StateFetch f{7, cl::StateFetch::What::kDelta, 2};
  const auto f2 = cl::decode_state_fetch(cl::encode_state_fetch(f));
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f2.value().pid, 7u);
  EXPECT_EQ(f2.value().what, cl::StateFetch::What::kDelta);
  EXPECT_EQ(f2.value().index, 2u);

  cl::PartitionManifest m{9, 120, 2, 0xABCDull};
  const auto m2 = cl::decode_manifest(cl::encode_manifest(m));
  ASSERT_TRUE(m2.ok());
  EXPECT_TRUE(m2.value() == m);
  EXPECT_FALSE(cl::decode_manifest("junk").ok());
}

// --- the same cluster over real sockets ---------------------------------

TEST(Elastic, TcpTransportProducesIdenticalDecisions) {
  const Fixture fx(40);
  auto config = make_config();
  const auto in_process = cl::link_elastic(fx.clean, fx.error, config);

  cl::ClusterService service(config.link, fx.error);
  net::ShardServer server(service.handler());
  net::TcpTransportOptions client_opts;
  client_opts.port = server.port();
  net::TcpTransport transport(client_opts);
  config.transport = &transport;
  const auto tcp = cl::link_elastic(fx.clean, fx.error, config);

  EXPECT_EQ(tcp.decision_fingerprint(), in_process.decision_fingerprint());
  EXPECT_EQ(tcp.total_matches, in_process.total_matches);
  EXPECT_EQ(tcp.total_pairs, in_process.total_pairs);
  EXPECT_EQ(tcp.dropped_pairs, 0u);
  EXPECT_EQ(tcp.write_acks, in_process.write_acks);
}

TEST(Elastic, TcpSurvivesKillAndRebalanceLikeInProcess) {
  // Scripted kills and live rebalance are driver-side (the NodeGate and
  // the migration executor), so the same schedule must hold over real
  // sockets too — including the state transfer running through TCP
  // state-fetch frames.
  const Fixture fx(40);
  auto config = make_config();
  const auto reference = cl::link_elastic(fx.clean, fx.error, config);

  cl::ElasticSchedule schedule;
  schedule.events.push_back(
      {cl::ElasticEvent::Kind::kAddNode, 3, 1, std::nullopt});
  schedule.events.push_back(
      {cl::ElasticEvent::Kind::kKillNode, 0, 2, std::nullopt});

  cl::ClusterService service(config.link, fx.error);
  net::ShardServer server(service.handler());
  net::TcpTransportOptions client_opts;
  client_opts.port = server.port();
  // Keep real-time backoff sleeps tiny: the kill forces real retries.
  net::TcpTransport transport(client_opts);
  config.transport = &transport;
  lk::ShardFaultPolicy policy;  // no injected faults, just small backoff
  policy.retry.backoff_base_ms = 0.25;
  config.fault = policy;
  const auto tcp = cl::link_elastic(fx.clean, fx.error, config, schedule);

  EXPECT_EQ(tcp.dropped_pairs, 0u);
  EXPECT_EQ(tcp.decision_fingerprint(), reference.decision_fingerprint());
  EXPECT_GT(tcp.migration.completed, 0u);
}

TEST(ClusterService, StateMovesAndDropsThroughTheProtocol) {
  // Drive the service handler directly: write a base + delta to one
  // node, fetch the chain from it, install it on another node verbatim,
  // and check the manifests agree byte-for-byte (the migration verify
  // step) before dropping the source copy.
  const Fixture fx(12);
  auto link = lk::LinkConfig{};
  link.comparator = lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  cl::ClusterService service(link, fx.error);
  auto call = [&service](cl::NodeId node, net::FrameType type,
                         std::string payload) {
    net::FrameContext ctx;
    ctx.type = type;
    ctx.shard = node;
    ctx.attempt = 1;
    return service.handle(ctx, payload);
  };

  const std::uint64_t pid = 99;
  const std::span<const lk::PersonRecord> records(fx.clean);
  const std::string base = cl::encode_record_list(records.subspan(0, 8));
  const std::string delta = cl::encode_record_list(records.subspan(8));
  ASSERT_TRUE(call(0, net::FrameType::kReplicaWrite,
                   cl::encode_replica_write({pid, 0, base}))
                  .ok());
  ASSERT_TRUE(call(0, net::FrameType::kReplicaWrite,
                   cl::encode_replica_write({pid, 1, delta}))
                  .ok());
  EXPECT_TRUE(service.node_has_partition(0, pid));
  EXPECT_FALSE(service.node_has_partition(1, pid));

  // Deltas may not precede their base.
  EXPECT_FALSE(call(1, net::FrameType::kReplicaWrite,
                    cl::encode_replica_write({pid, 1, delta}))
                   .ok());

  auto fetched_base = call(0, net::FrameType::kStateFetch,
                           cl::encode_state_fetch({pid, cl::StateFetch::What::kBase, 0}));
  auto fetched_delta = call(0, net::FrameType::kStateFetch,
                            cl::encode_state_fetch({pid, cl::StateFetch::What::kDelta, 1}));
  ASSERT_TRUE(fetched_base.ok());
  ASSERT_TRUE(fetched_delta.ok());
  EXPECT_EQ(fetched_base.value(), base);
  ASSERT_TRUE(call(1, net::FrameType::kReplicaWrite,
                   cl::encode_replica_write({pid, 0, fetched_base.value()}))
                  .ok());
  ASSERT_TRUE(call(1, net::FrameType::kReplicaWrite,
                   cl::encode_replica_write({pid, 1, fetched_delta.value()}))
                  .ok());

  auto m0 = call(0, net::FrameType::kStateFetch,
                 cl::encode_state_fetch({pid, cl::StateFetch::What::kManifest, 0}));
  auto m1 = call(1, net::FrameType::kStateFetch,
                 cl::encode_state_fetch({pid, cl::StateFetch::What::kManifest, 0}));
  ASSERT_TRUE(m0.ok());
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m0.value(), m1.value()) << "replica chains must verify equal";

  // Both replicas answer the query identically.
  auto q0 = call(0, net::FrameType::kReplicaQuery,
                 cl::encode_replica_query({pid}));
  auto q1 = call(1, net::FrameType::kReplicaQuery,
                 cl::encode_replica_query({pid}));
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(q1.ok());
  const auto r0 = lk::decode_shard_reply(q0.value());
  const auto r1 = lk::decode_shard_reply(q1.value());
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r0.value().matches, r1.value().matches);
  EXPECT_EQ(r0.value().pairs, r1.value().pairs);
  EXPECT_EQ(r0.value().pairs, 12u * fx.error.size());

  // Drop the source copy; the dest still serves, the source 404s.
  ASSERT_TRUE(
      call(0, net::FrameType::kStateDrop, cl::encode_state_drop({pid})).ok());
  EXPECT_FALSE(service.node_has_partition(0, pid));
  EXPECT_TRUE(service.node_has_partition(1, pid));
  EXPECT_FALSE(
      call(0, net::FrameType::kReplicaQuery, cl::encode_replica_query({pid}))
          .ok());
  EXPECT_TRUE(
      call(1, net::FrameType::kReplicaQuery, cl::encode_replica_query({pid}))
          .ok());
}

}  // namespace
