#include "metrics/damerau.hpp"

#include <gtest/gtest.h>

#include <string>

#include "metrics/levenshtein.hpp"
#include "util/rng.hpp"

namespace {

using fbf::metrics::dl_distance;
using fbf::metrics::dl_within;
using fbf::metrics::levenshtein_distance;
using fbf::metrics::true_dl_distance;

TEST(DamerauOsa, PaperMatrixExample) {
  // Fig. 1: DL("SUNDAY", "SATURDAY") = 3; substring ("SUN","SAT") = 2.
  EXPECT_EQ(dl_distance("SUNDAY", "SATURDAY"), 3);
  EXPECT_EQ(dl_distance("SUN", "SAT"), 2);
}

TEST(DamerauOsa, TranspositionCostsOne) {
  EXPECT_EQ(dl_distance("SMITH", "SMIHT"), 1);
  EXPECT_EQ(dl_distance("AB", "BA"), 1);
  EXPECT_EQ(dl_distance("13245", "12345"), 1);  // §4 proof example
}

TEST(DamerauOsa, SingleEditsCostOne) {
  EXPECT_EQ(dl_distance("123456", "12345"), 1);  // delete
  EXPECT_EQ(dl_distance("1234", "12345"), 1);    // insert
  EXPECT_EQ(dl_distance("12346", "12345"), 1);   // substitute
}

TEST(DamerauOsa, EmptyStrings) {
  EXPECT_EQ(dl_distance("", ""), 0);
  EXPECT_EQ(dl_distance("AB", ""), 2);
  EXPECT_EQ(dl_distance("", "XYZ"), 3);
}

TEST(DamerauOsa, OsaRestrictionVisible) {
  // OSA may not edit across a transposed pair: "CA" -> "ABC" is 3 under
  // OSA but 2 under unrestricted DL (transpose CA->AC, insert B).
  EXPECT_EQ(dl_distance("CA", "ABC"), 3);
  EXPECT_EQ(true_dl_distance("CA", "ABC"), 2);
}

TEST(TrueDl, MatchesOsaWhenNoAdjacentInterference) {
  EXPECT_EQ(true_dl_distance("SATURDAY", "SUNDAY"), 3);
  EXPECT_EQ(true_dl_distance("SMITH", "SMIHT"), 1);
  EXPECT_EQ(true_dl_distance("", "AB"), 2);
  EXPECT_EQ(true_dl_distance("AB", ""), 2);
}

namespace prop {

std::string random_string(fbf::util::Rng& rng, std::size_t max_len,
                          int alphabet) {
  const auto len = static_cast<std::size_t>(rng.below(max_len + 1));
  std::string s(len, '\0');
  for (auto& ch : s) {
    ch = static_cast<char>('A' + rng.below(static_cast<std::uint64_t>(alphabet)));
  }
  return s;
}

}  // namespace prop

class DamerauProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DamerauProperties, NeverExceedsLevenshtein) {
  // One transposition replaces two Levenshtein edits, so DL <= Lev always.
  fbf::util::Rng rng(GetParam());
  for (int i = 0; i < 800; ++i) {
    const std::string s = prop::random_string(rng, 10, 5);
    const std::string t = prop::random_string(rng, 10, 5);
    EXPECT_LE(dl_distance(s, t), levenshtein_distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(DamerauProperties, AtLeastHalfLevenshtein) {
  // Each transposition saves at most one edit: Lev <= 2 * DL.
  fbf::util::Rng rng(GetParam() + 10);
  for (int i = 0; i < 800; ++i) {
    const std::string s = prop::random_string(rng, 10, 5);
    const std::string t = prop::random_string(rng, 10, 5);
    EXPECT_LE(levenshtein_distance(s, t), 2 * dl_distance(s, t) + 0)
        << "s=" << s << " t=" << t;
  }
}

TEST_P(DamerauProperties, TrueDlNeverExceedsOsa) {
  // The unrestricted metric can only find cheaper (or equal) edit scripts.
  fbf::util::Rng rng(GetParam() + 20);
  for (int i = 0; i < 800; ++i) {
    const std::string s = prop::random_string(rng, 10, 4);
    const std::string t = prop::random_string(rng, 10, 4);
    EXPECT_LE(true_dl_distance(s, t), dl_distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST_P(DamerauProperties, SymmetryAndIdentity) {
  fbf::util::Rng rng(GetParam() + 30);
  for (int i = 0; i < 500; ++i) {
    const std::string s = prop::random_string(rng, 12, 6);
    const std::string t = prop::random_string(rng, 12, 6);
    EXPECT_EQ(dl_distance(s, t), dl_distance(t, s));
    EXPECT_EQ(true_dl_distance(s, t), true_dl_distance(t, s));
    EXPECT_EQ(dl_distance(s, s), 0);
    EXPECT_EQ(true_dl_distance(s, s), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DamerauProperties,
                         ::testing::Values(11, 22, 33, 44));

TEST(DlWithin, ThresholdSemantics) {
  EXPECT_TRUE(dl_within("SMITH", "SMIHT", 1));
  EXPECT_FALSE(dl_within("SMITH", "JONES", 3));
  EXPECT_TRUE(dl_within("SMITH", "SMITH", 0));
}

}  // namespace
