// Frame codec property tests: round-trip identity, incremental decoding
// at every truncation point, and the corruption guarantee — no single-bit
// flip anywhere in a frame (header or payload) survives the checksum.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace {

namespace net = fbf::net;

net::FrameContext make_ctx(net::FrameType type, std::uint32_t shard,
                           std::uint32_t attempt) {
  net::FrameContext ctx;
  ctx.type = type;
  ctx.shard = shard;
  ctx.attempt = attempt;
  return ctx;
}

TEST(FrameCodec, RoundTripsPayloadAndContext) {
  for (const std::string& payload :
       {std::string{}, std::string("x"), std::string("hello shard"),
        std::string(4096, '\xab')}) {
    const auto ctx = make_ctx(net::FrameType::kLinkRequest, 5, 3);
    const std::string frame = net::encode_frame(ctx, payload);
    ASSERT_EQ(frame.size(), net::kFrameHeaderBytes + payload.size());
    const auto decoded = net::try_decode_frame(frame);
    ASSERT_EQ(decoded.status, net::DecodeStatus::kFrame);
    EXPECT_EQ(decoded.ctx.type, net::FrameType::kLinkRequest);
    EXPECT_EQ(decoded.ctx.shard, 5u);
    EXPECT_EQ(decoded.ctx.attempt, 3u);
    EXPECT_EQ(decoded.payload, payload);
    EXPECT_EQ(decoded.consumed, frame.size());
  }
}

TEST(FrameCodec, EveryTypeRoundTrips) {
  for (const auto type :
       {net::FrameType::kLinkRequest, net::FrameType::kLinkReply,
        net::FrameType::kError, net::FrameType::kPing, net::FrameType::kPong}) {
    const std::string frame = net::encode_frame(make_ctx(type, 1, 1), "p");
    const auto decoded = net::try_decode_frame(frame);
    ASSERT_EQ(decoded.status, net::DecodeStatus::kFrame);
    EXPECT_EQ(decoded.ctx.type, type);
  }
}

TEST(FrameCodec, NeedsMoreAtEveryTruncationPoint) {
  const std::string frame =
      net::encode_frame(make_ctx(net::FrameType::kLinkReply, 2, 1),
                        "truncate me anywhere");
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto decoded =
        net::try_decode_frame(std::string_view(frame.data(), len));
    EXPECT_EQ(decoded.status, net::DecodeStatus::kNeedMore)
        << "prefix of " << len << " bytes";
    EXPECT_EQ(decoded.consumed, 0u);
  }
}

// The corruption fuzz: flip every bit of every byte, one at a time.  A
// flipped frame must never decode as a valid frame — the type/length
// sanity checks or the seeded checksum catch it.  (A flip that *grows*
// the length field may legitimately report kNeedMore; what is forbidden
// is kFrame.)
TEST(FrameCodec, NoSingleBitFlipSurvives) {
  const std::string frame = net::encode_frame(
      make_ctx(net::FrameType::kLinkRequest, 7, 2), "payload under test");
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = frame;
      mutated[i] = static_cast<char>(static_cast<unsigned char>(mutated[i]) ^
                                     (1u << bit));
      const auto decoded = net::try_decode_frame(mutated);
      EXPECT_NE(decoded.status, net::DecodeStatus::kFrame)
          << "bit " << bit << " of byte " << i << " slipped through";
    }
  }
}

TEST(FrameCodec, RejectsBadMagic) {
  std::string frame =
      net::encode_frame(make_ctx(net::FrameType::kPing, 0, 1), {});
  frame[0] = 'X';
  const auto decoded = net::try_decode_frame(frame);
  EXPECT_EQ(decoded.status, net::DecodeStatus::kCorrupt);
  EXPECT_NE(decoded.error, nullptr);
}

TEST(FrameCodec, RejectsUnknownTypeAndReservedBits) {
  std::string bad_type =
      net::encode_frame(make_ctx(net::FrameType::kPing, 0, 1), {});
  const std::uint16_t type = 999;
  std::memcpy(bad_type.data() + 4, &type, sizeof(type));
  EXPECT_EQ(net::try_decode_frame(bad_type).status,
            net::DecodeStatus::kCorrupt);

  std::string bad_reserved =
      net::encode_frame(make_ctx(net::FrameType::kPing, 0, 1), {});
  bad_reserved[6] = 1;  // reserved u16 must be zero
  EXPECT_EQ(net::try_decode_frame(bad_reserved).status,
            net::DecodeStatus::kCorrupt);
}

TEST(FrameCodec, RejectsImplausibleLength) {
  std::string frame =
      net::encode_frame(make_ctx(net::FrameType::kLinkRequest, 0, 1), "abc");
  const std::uint32_t huge = net::kMaxFramePayloadBytes + 1;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  const auto decoded = net::try_decode_frame(frame);
  EXPECT_EQ(decoded.status, net::DecodeStatus::kCorrupt);
}

TEST(FrameCodec, DecodesExactlyOneFrameFromAStream) {
  const std::string first =
      net::encode_frame(make_ctx(net::FrameType::kLinkRequest, 1, 1), "one");
  const std::string second =
      net::encode_frame(make_ctx(net::FrameType::kLinkReply, 2, 4), "two");
  const std::string stream = first + second;
  const auto a = net::try_decode_frame(stream);
  ASSERT_EQ(a.status, net::DecodeStatus::kFrame);
  EXPECT_EQ(a.payload, "one");
  EXPECT_EQ(a.consumed, first.size());
  const auto b =
      net::try_decode_frame(std::string_view(stream).substr(a.consumed));
  ASSERT_EQ(b.status, net::DecodeStatus::kFrame);
  EXPECT_EQ(b.payload, "two");
  EXPECT_EQ(b.ctx.attempt, 4u);
}

}  // namespace
