// Frame codec property tests: round-trip identity, incremental decoding
// at every truncation point, and the corruption guarantee — no single-bit
// flip anywhere in a frame (header or payload) survives the checksum.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/rng.hpp"
#include "util/wire.hpp"

namespace {

namespace net = fbf::net;
namespace w = fbf::util::wire;

net::FrameContext make_ctx(net::FrameType type, std::uint32_t shard,
                           std::uint32_t attempt) {
  net::FrameContext ctx;
  ctx.type = type;
  ctx.shard = shard;
  ctx.attempt = attempt;
  return ctx;
}

/// Frame builder independent of encode_frame, replicating the documented
/// layout and checksum formula — pins the wire format AND lets tests
/// craft extension blocks encode_frame would never emit (unknown tags).
std::string craft_frame(const net::FrameContext& ctx, std::string_view ext,
                        std::string_view payload) {
  std::uint64_t seed = 0xCBF29CE484222325ull;
  seed ^= static_cast<std::uint64_t>(ctx.type) << 48;
  seed ^= static_cast<std::uint64_t>(ctx.shard) << 16;
  seed ^= static_cast<std::uint64_t>(ctx.attempt);
  seed ^= static_cast<std::uint64_t>(payload.size()) << 32;
  seed ^= static_cast<std::uint64_t>(ext.size()) << 8;
  std::uint64_t hash = fbf::util::SplitMix64(seed).next();
  for (const std::string_view part : {ext, payload}) {
    for (const char ch : part) {
      hash ^= static_cast<std::uint8_t>(ch);
      hash *= 0x100000001B3ull;
    }
  }
  std::string frame;
  w::put<std::uint32_t>(frame, net::kFrameMagic);
  w::put<std::uint16_t>(frame, static_cast<std::uint16_t>(ctx.type));
  w::put<std::uint16_t>(frame, static_cast<std::uint16_t>(ext.size()));
  w::put<std::uint32_t>(frame, ctx.shard);
  w::put<std::uint32_t>(frame, ctx.attempt);
  w::put<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
  w::put<std::uint64_t>(frame, hash);
  frame.append(ext);
  frame.append(payload);
  return frame;
}

TEST(FrameCodec, RoundTripsPayloadAndContext) {
  for (const std::string& payload :
       {std::string{}, std::string("x"), std::string("hello shard"),
        std::string(4096, '\xab')}) {
    const auto ctx = make_ctx(net::FrameType::kLinkRequest, 5, 3);
    const std::string frame = net::encode_frame(ctx, payload);
    ASSERT_EQ(frame.size(), net::kFrameHeaderBytes + payload.size());
    const auto decoded = net::try_decode_frame(frame);
    ASSERT_EQ(decoded.status, net::DecodeStatus::kFrame);
    EXPECT_EQ(decoded.ctx.type, net::FrameType::kLinkRequest);
    EXPECT_EQ(decoded.ctx.shard, 5u);
    EXPECT_EQ(decoded.ctx.attempt, 3u);
    EXPECT_EQ(decoded.payload, payload);
    EXPECT_EQ(decoded.consumed, frame.size());
  }
}

TEST(FrameCodec, EveryTypeRoundTrips) {
  for (const auto type :
       {net::FrameType::kLinkRequest, net::FrameType::kLinkReply,
        net::FrameType::kError, net::FrameType::kPing, net::FrameType::kPong}) {
    const std::string frame = net::encode_frame(make_ctx(type, 1, 1), "p");
    const auto decoded = net::try_decode_frame(frame);
    ASSERT_EQ(decoded.status, net::DecodeStatus::kFrame);
    EXPECT_EQ(decoded.ctx.type, type);
  }
}

TEST(FrameCodec, NeedsMoreAtEveryTruncationPoint) {
  const std::string frame =
      net::encode_frame(make_ctx(net::FrameType::kLinkReply, 2, 1),
                        "truncate me anywhere");
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto decoded =
        net::try_decode_frame(std::string_view(frame.data(), len));
    EXPECT_EQ(decoded.status, net::DecodeStatus::kNeedMore)
        << "prefix of " << len << " bytes";
    EXPECT_EQ(decoded.consumed, 0u);
  }
}

// The corruption fuzz: flip every bit of every byte, one at a time.  A
// flipped frame must never decode as a valid frame — the type/length
// sanity checks or the seeded checksum catch it.  (A flip that *grows*
// the length field may legitimately report kNeedMore; what is forbidden
// is kFrame.)
TEST(FrameCodec, NoSingleBitFlipSurvives) {
  const std::string frame = net::encode_frame(
      make_ctx(net::FrameType::kLinkRequest, 7, 2), "payload under test");
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = frame;
      mutated[i] = static_cast<char>(static_cast<unsigned char>(mutated[i]) ^
                                     (1u << bit));
      const auto decoded = net::try_decode_frame(mutated);
      EXPECT_NE(decoded.status, net::DecodeStatus::kFrame)
          << "bit " << bit << " of byte " << i << " slipped through";
    }
  }
}

TEST(FrameCodec, RejectsBadMagic) {
  std::string frame =
      net::encode_frame(make_ctx(net::FrameType::kPing, 0, 1), {});
  frame[0] = 'X';
  const auto decoded = net::try_decode_frame(frame);
  EXPECT_EQ(decoded.status, net::DecodeStatus::kCorrupt);
  EXPECT_NE(decoded.error, nullptr);
}

TEST(FrameCodec, RejectsUnknownTypeAndImplausibleExtensionLength) {
  std::string bad_type =
      net::encode_frame(make_ctx(net::FrameType::kPing, 0, 1), {});
  const std::uint16_t type = 999;
  std::memcpy(bad_type.data() + 4, &type, sizeof(type));
  EXPECT_EQ(net::try_decode_frame(bad_type).status,
            net::DecodeStatus::kCorrupt);

  // The ext field (the old reserved u16) now announces an extension
  // block.  A length beyond the bound can never be a real extension.
  std::string bad_ext =
      net::encode_frame(make_ctx(net::FrameType::kPing, 0, 1), {});
  const std::uint16_t huge_ext =
      static_cast<std::uint16_t>(net::kMaxFrameExtensionBytes + 1);
  std::memcpy(bad_ext.data() + 6, &huge_ext, sizeof(huge_ext));
  EXPECT_EQ(net::try_decode_frame(bad_ext).status,
            net::DecodeStatus::kCorrupt);
}

// --- extension block (trace propagation rides here) ---------------------

TEST(FrameExtension, TraceIdRoundTripsAndUntracedFramesStayLegacyShaped) {
  net::FrameContext traced = make_ctx(net::FrameType::kMatchQuery, 3, 2);
  traced.trace = 0x1122334455667788ull;
  const std::string frame = net::encode_frame(traced, "payload");
  // TLV: tag(1) + len(1) + u64 value.
  ASSERT_EQ(frame.size(), net::kFrameHeaderBytes + 10 + 7);
  const auto decoded = net::try_decode_frame(frame);
  ASSERT_EQ(decoded.status, net::DecodeStatus::kFrame);
  EXPECT_EQ(decoded.ctx.trace, traced.trace);
  EXPECT_EQ(decoded.payload, "payload");
  EXPECT_EQ(decoded.consumed, frame.size());

  // Untraced frames emit no extension: byte-identical to the
  // pre-extension encoding, so old peers are never disturbed.
  net::FrameContext untraced = traced;
  untraced.trace = 0;
  const std::string legacy = net::encode_frame(untraced, "payload");
  EXPECT_EQ(legacy.size(), net::kFrameHeaderBytes + 7);
  EXPECT_EQ(legacy[6], 0);
  EXPECT_EQ(legacy[7], 0);
  const auto legacy_decoded = net::try_decode_frame(legacy);
  ASSERT_EQ(legacy_decoded.status, net::DecodeStatus::kFrame);
  EXPECT_EQ(legacy_decoded.ctx.trace, 0u);
}

TEST(FrameExtension, CraftedFrameMatchesEncodeFrameByteForByte) {
  // The test-local builder and the production encoder must agree — this
  // pins the documented layout and checksum formula.
  net::FrameContext ctx = make_ctx(net::FrameType::kIngest, 9, 4);
  EXPECT_EQ(craft_frame(ctx, {}, "abc"), net::encode_frame(ctx, "abc"));
  ctx.trace = 42;
  std::string ext;
  w::put<std::uint8_t>(ext, net::kFrameExtTraceId);
  w::put<std::uint8_t>(ext, 8);
  w::put<std::uint64_t>(ext, 42);
  EXPECT_EQ(craft_frame(ctx, ext, "abc"), net::encode_frame(ctx, "abc"));
}

TEST(FrameExtension, UnknownTagsAreSkippedNotFatal) {
  // A future peer adds tag 0x7E; an old decoder must skip it and still
  // surface the trace id that follows.
  std::string ext;
  w::put<std::uint8_t>(ext, 0x7E);
  w::put<std::uint8_t>(ext, 3);
  ext.append("xyz");
  w::put<std::uint8_t>(ext, net::kFrameExtTraceId);
  w::put<std::uint8_t>(ext, 8);
  w::put<std::uint64_t>(ext, 0xABCDull);
  const std::string frame =
      craft_frame(make_ctx(net::FrameType::kPing, 0, 1), ext, "p");
  const auto decoded = net::try_decode_frame(frame);
  ASSERT_EQ(decoded.status, net::DecodeStatus::kFrame);
  EXPECT_EQ(decoded.ctx.trace, 0xABCDull);
  EXPECT_EQ(decoded.payload, "p");
}

TEST(FrameExtension, OverrunningTlvLengthIsCorrupt) {
  // Tag announces more value bytes than the block holds: checksum passes
  // (the bytes are intact) but the TLV walk must reject the overrun.
  std::string ext;
  w::put<std::uint8_t>(ext, net::kFrameExtTraceId);
  w::put<std::uint8_t>(ext, 200);
  const std::string frame =
      craft_frame(make_ctx(net::FrameType::kPing, 0, 1), ext, {});
  const auto decoded = net::try_decode_frame(frame);
  EXPECT_EQ(decoded.status, net::DecodeStatus::kCorrupt);
}

TEST(FrameExtension, TruncatedExtensionReportsNeedMore) {
  net::FrameContext ctx = make_ctx(net::FrameType::kMatchQuery, 1, 1);
  ctx.trace = 7;
  const std::string frame = net::encode_frame(ctx, "tail");
  for (std::size_t len = net::kFrameHeaderBytes; len < frame.size(); ++len) {
    const auto decoded =
        net::try_decode_frame(std::string_view(frame.data(), len));
    EXPECT_EQ(decoded.status, net::DecodeStatus::kNeedMore)
        << "prefix of " << len << " bytes";
  }
}

TEST(FrameExtension, NoSingleBitFlipSurvivesInATracedFrame) {
  net::FrameContext ctx = make_ctx(net::FrameType::kMatchQuery, 7, 2);
  ctx.trace = 0x5555AAAA5555AAAAull;
  const std::string frame = net::encode_frame(ctx, "traced payload");
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = frame;
      mutated[i] = static_cast<char>(static_cast<unsigned char>(mutated[i]) ^
                                     (1u << bit));
      const auto decoded = net::try_decode_frame(mutated);
      EXPECT_NE(decoded.status, net::DecodeStatus::kFrame)
          << "bit " << bit << " of byte " << i << " slipped through";
    }
  }
}

TEST(FrameCodec, RejectsImplausibleLength) {
  std::string frame =
      net::encode_frame(make_ctx(net::FrameType::kLinkRequest, 0, 1), "abc");
  const std::uint32_t huge = net::kMaxFramePayloadBytes + 1;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  const auto decoded = net::try_decode_frame(frame);
  EXPECT_EQ(decoded.status, net::DecodeStatus::kCorrupt);
}

TEST(FrameCodec, DecodesExactlyOneFrameFromAStream) {
  const std::string first =
      net::encode_frame(make_ctx(net::FrameType::kLinkRequest, 1, 1), "one");
  const std::string second =
      net::encode_frame(make_ctx(net::FrameType::kLinkReply, 2, 4), "two");
  const std::string stream = first + second;
  const auto a = net::try_decode_frame(stream);
  ASSERT_EQ(a.status, net::DecodeStatus::kFrame);
  EXPECT_EQ(a.payload, "one");
  EXPECT_EQ(a.consumed, first.size());
  const auto b =
      net::try_decode_frame(std::string_view(stream).substr(a.consumed));
  ASSERT_EQ(b.status, net::DecodeStatus::kFrame);
  EXPECT_EQ(b.payload, "two");
  EXPECT_EQ(b.ctx.attempt, 4u);
}

}  // namespace
