#include "core/comparators.hpp"

#include <gtest/gtest.h>

#include "core/match_join.hpp"
#include "datagen/dataset.hpp"

namespace {

namespace c = fbf::core;
namespace dg = fbf::datagen;

TEST(Comparators, EveryMethodConstructs) {
  for (const c::Method method : c::all_methods()) {
    const auto compare = c::make_comparator(method);
    ASSERT_TRUE(static_cast<bool>(compare)) << c::method_name(method);
    // Identical strings match under every method (at default params).
    EXPECT_TRUE(compare("SMITH", "SMITH")) << c::method_name(method);
  }
}

TEST(Comparators, FpdlBehaviour) {
  c::ComparatorParams params;
  params.k = 1;
  const auto compare = c::make_comparator(c::Method::kFpdl, params);
  EXPECT_TRUE(compare("SMITH", "SMYTH"));
  EXPECT_TRUE(compare("SMITH", "SMIHT"));  // transposition
  EXPECT_FALSE(compare("SMITH", "JONES"));
  EXPECT_FALSE(compare("SMITH", "SMITHSON"));
}

TEST(Comparators, NumericFieldClass) {
  c::ComparatorParams params;
  params.k = 1;
  params.field_class = c::FieldClass::kNumeric;
  const auto compare = c::make_comparator(c::Method::kFpdl, params);
  EXPECT_TRUE(compare("123456789", "123456798"));
  EXPECT_FALSE(compare("123456789", "987654321"));
}

TEST(Comparators, JaroThresholdRespected) {
  c::ComparatorParams strict;
  strict.sim_threshold = 0.99;
  EXPECT_FALSE(c::make_comparator(c::Method::kJaro, strict)("SMITH",
                                                            "SMYTH"));
  c::ComparatorParams loose;
  loose.sim_threshold = 0.5;
  EXPECT_TRUE(c::make_comparator(c::Method::kJaro, loose)("SMITH", "SMYTH"));
}

TEST(Comparators, FilterOnlyMethodsAcceptSurvivors) {
  const auto fbf_only = c::make_comparator(c::Method::kFbfOnly);
  EXPECT_TRUE(fbf_only("SMITH", "SMIHT"));  // same multiset: 0 diff bits
  EXPECT_FALSE(fbf_only("SMITH", "JONES"));
  const auto lf_only = c::make_comparator(c::Method::kLengthOnly);
  EXPECT_TRUE(lf_only("ABC", "XYZ"));   // same length
  EXPECT_FALSE(lf_only("A", "ABC"));    // length diff 2 > k=1
}

TEST(Comparators, AgreesWithJoinEngine) {
  // The facade must make the exact decisions the join engine makes.
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 60, 17).value();
  for (const c::Method method :
       {c::Method::kDl, c::Method::kFpdl, c::Method::kLfpdl,
        c::Method::kJaro, c::Method::kSoundex, c::Method::kHamming}) {
    c::ComparatorParams params;
    const auto compare = c::make_comparator(method, params);
    c::JoinConfig join;
    join.method = method;
    join.k = params.k;
    join.sim_threshold = params.sim_threshold;
    join.field_class = params.field_class;
    join.collect_matches = true;
    const auto stats =
        c::match_strings(dataset.clean, dataset.error, join);
    std::uint64_t facade_matches = 0;
    for (const auto& s : dataset.clean) {
      for (const auto& t : dataset.error) {
        facade_matches += compare(s, t) ? 1u : 0u;
      }
    }
    EXPECT_EQ(facade_matches, stats.matches) << c::method_name(method);
  }
}

}  // namespace
