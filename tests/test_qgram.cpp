#include "metrics/qgram.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "datagen/errors.hpp"
#include "metrics/damerau.hpp"
#include "metrics/levenshtein.hpp"
#include "util/rng.hpp"

namespace {

using fbf::metrics::dl_distance;
using fbf::metrics::QgramProfile;
using fbf::metrics::qgram_count_bound;
using fbf::metrics::qgram_filter_pass;

TEST(QgramProfile, GramCounts) {
  EXPECT_EQ(QgramProfile("SMITH", 2).size(), 4u);  // SM MI IT TH
  EXPECT_EQ(QgramProfile("SMITH", 3).size(), 3u);
  EXPECT_EQ(QgramProfile("AB", 2).size(), 1u);
  // Shorter than q: one padded gram keeps the profile non-empty.
  EXPECT_EQ(QgramProfile("A", 2).size(), 1u);
  EXPECT_EQ(QgramProfile("", 2).size(), 1u);
}

TEST(QgramProfile, IdenticalStringsShareAllGrams) {
  const QgramProfile a("JOHNSON", 2);
  const QgramProfile b("JOHNSON", 2);
  EXPECT_EQ(a.common_grams(b), 6);
}

TEST(QgramProfile, DisjointStringsShareNone) {
  const QgramProfile a("AAAA", 2);
  const QgramProfile b("BBBB", 2);
  EXPECT_EQ(a.common_grams(b), 0);
}

TEST(QgramProfile, MultisetSemantics) {
  // "AAA" has two AA grams; "AA" has one: intersection is one, not two.
  const QgramProfile a("AAA", 2);
  const QgramProfile b("AA", 2);
  EXPECT_EQ(a.common_grams(b), 1);
}

TEST(QgramBound, KnownValues) {
  // max(5,5) - 2 + 1 - 1*2 = 2 shared bigrams needed for k=1 on 5-char
  // strings.
  EXPECT_EQ(qgram_count_bound(5, 5, 2, 1), 2);
  EXPECT_EQ(qgram_count_bound(9, 9, 2, 1), 6);
  // Vacuous for short strings / large k.
  EXPECT_LE(qgram_count_bound(3, 3, 2, 2), 0);
}

TEST(QgramFilter, ObviousCases) {
  EXPECT_TRUE(qgram_filter_pass("SMITH", "SMITH", 2, 1));
  EXPECT_TRUE(qgram_filter_pass("SMITH", "SMYTH", 2, 1));
  EXPECT_FALSE(qgram_filter_pass("JOHNSON", "WILLIAMS", 2, 1));
}

TEST(QgramFilter, VacuousBoundNeverRejects) {
  // k*q >= longer-q+1: the filter must pass everything rather than
  // reject valid pairs.
  EXPECT_TRUE(qgram_filter_pass("AB", "ZX", 2, 2));
}

TEST(QgramFilter, LevenshteinBoundUnsafeAgainstTranspositions) {
  // The documented counterexample: one transposition (DL = 1) but the
  // Levenshtein-k bound rejects; the DL-safe bound must pass.
  ASSERT_EQ(dl_distance("ABCDE", "ABDCE"), 1);
  EXPECT_FALSE(qgram_filter_pass("ABCDE", "ABDCE", 2, 1));
  EXPECT_TRUE(fbf::metrics::qgram_filter_pass_dl("ABCDE", "ABDCE", 2, 1));
}

// Safety properties: the Levenshtein bound against Levenshtein distance,
// and the DL bound against DL distance.
class QgramSafety
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QgramSafety, NoFalseNegativesLevenshtein) {
  const auto [q, k] = GetParam();
  fbf::util::Rng rng(fbf::util::fnv1a64("qgram") +
                     static_cast<std::uint64_t>(q * 10 + k));
  for (int iter = 0; iter < 2000; ++iter) {
    std::string s(2 + rng.below(13), '\0');
    for (auto& ch : s) {
      ch = static_cast<char>('A' + rng.below(12));
    }
    std::string t = s;
    for (int e = 0; e < k; ++e) {
      t = fbf::datagen::inject_single_edit(
          t, fbf::datagen::Alphabet::kUpperAlpha, rng);
    }
    if (fbf::metrics::levenshtein_distance(s, t) <= k) {
      EXPECT_TRUE(qgram_filter_pass(s, t, q, k))
          << "s=" << s << " t=" << t << " q=" << q << " k=" << k;
    }
  }
}

TEST_P(QgramSafety, NoFalseNegativesDamerau) {
  const auto [q, k] = GetParam();
  fbf::util::Rng rng(fbf::util::fnv1a64("qgram-dl") +
                     static_cast<std::uint64_t>(q * 10 + k));
  for (int iter = 0; iter < 2000; ++iter) {
    std::string s(2 + rng.below(13), '\0');
    for (auto& ch : s) {
      ch = static_cast<char>('A' + rng.below(12));
    }
    std::string t = s;
    for (int e = 0; e < k; ++e) {
      t = fbf::datagen::inject_single_edit(
          t, fbf::datagen::Alphabet::kUpperAlpha, rng);
    }
    if (dl_distance(s, t) <= k) {
      EXPECT_TRUE(fbf::metrics::qgram_filter_pass_dl(s, t, q, k))
          << "s=" << s << " t=" << t << " q=" << q << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(QK, QgramSafety,
                         ::testing::Combine(::testing::Values(2, 3),
                                            ::testing::Values(1, 2)));

TEST(QgramFilter, SelectivityOnRandomPairs) {
  // The filter must reject a decent share of random unrelated name pairs
  // (otherwise it is useless as a pre-filter).
  fbf::util::Rng rng(99);
  int rejected = 0;
  constexpr int kPairs = 2000;
  for (int i = 0; i < kPairs; ++i) {
    std::string s(6 + rng.below(6), '\0');
    std::string t(6 + rng.below(6), '\0');
    for (auto& ch : s) ch = static_cast<char>('A' + rng.below(20));
    for (auto& ch : t) ch = static_cast<char>('A' + rng.below(20));
    if (!qgram_filter_pass(s, t, 2, 1)) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, kPairs / 2);
}

}  // namespace
