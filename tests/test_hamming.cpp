#include "metrics/hamming.hpp"

#include <gtest/gtest.h>

#include "metrics/damerau.hpp"
#include "util/rng.hpp"

namespace {

using fbf::metrics::hamming_distance;
using fbf::metrics::hamming_within;

TEST(Hamming, EqualLengthBasics) {
  EXPECT_EQ(hamming_distance("KAROLIN", "KATHRIN"), 3);
  EXPECT_EQ(hamming_distance("1011101", "1001001"), 2);
  EXPECT_EQ(hamming_distance("SMITH", "SMITH"), 0);
}

TEST(Hamming, LengthPaddedExtension) {
  EXPECT_EQ(hamming_distance("ABC", "ABCDE"), 2);
  EXPECT_EQ(hamming_distance("", "XY"), 2);
  EXPECT_EQ(hamming_distance("ABC", ""), 3);
}

TEST(Hamming, ShiftBlindness) {
  // The failure mode behind the paper's Type 2 errors for Ham: a single
  // insertion shifts everything, inflating positional mismatches.
  EXPECT_EQ(fbf::metrics::dl_distance("SMITH", "SMITHS"), 1);
  EXPECT_EQ(hamming_distance("SMITH", "XSMITH"), 6);
}

TEST(Hamming, NeverBelowDl) {
  // Hamming counts a specific edit script (positional substitutions plus
  // tail), so it upper-bounds the optimal DL script.
  fbf::util::Rng rng(55);
  for (int i = 0; i < 1500; ++i) {
    std::string s(rng.below(10), '\0');
    std::string t(rng.below(10), '\0');
    for (auto& ch : s) ch = static_cast<char>('0' + rng.below(4));
    for (auto& ch : t) ch = static_cast<char>('0' + rng.below(4));
    EXPECT_GE(hamming_distance(s, t), fbf::metrics::dl_distance(s, t))
        << s << " " << t;
  }
}

TEST(Hamming, WithinThreshold) {
  EXPECT_TRUE(hamming_within("123456789", "123456780", 1));
  EXPECT_FALSE(hamming_within("123456789", "023456780", 1));
}

TEST(Hamming, Symmetric) {
  fbf::util::Rng rng(56);
  for (int i = 0; i < 500; ++i) {
    std::string s(rng.below(8), '\0');
    std::string t(rng.below(8), '\0');
    for (auto& ch : s) ch = static_cast<char>('A' + rng.below(3));
    for (auto& ch : t) ch = static_cast<char>('A' + rng.below(3));
    EXPECT_EQ(hamming_distance(s, t), hamming_distance(t, s));
  }
}

}  // namespace
