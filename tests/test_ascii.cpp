#include "util/ascii.hpp"

#include <gtest/gtest.h>

namespace {

using namespace fbf::util;

TEST(Ascii, Classification) {
  EXPECT_TRUE(is_ascii_digit('0'));
  EXPECT_TRUE(is_ascii_digit('9'));
  EXPECT_FALSE(is_ascii_digit('a'));
  EXPECT_FALSE(is_ascii_digit('/'));  // char before '0'
  EXPECT_FALSE(is_ascii_digit(':'));  // char after '9'
  EXPECT_TRUE(is_ascii_alpha('A'));
  EXPECT_TRUE(is_ascii_alpha('z'));
  EXPECT_FALSE(is_ascii_alpha('@'));  // char before 'A'
  EXPECT_FALSE(is_ascii_alpha('['));  // char after 'Z'
  EXPECT_FALSE(is_ascii_alpha('`'));  // char before 'a'
  EXPECT_FALSE(is_ascii_alpha('{'));  // char after 'z'
  EXPECT_TRUE(is_ascii_alnum('5'));
  EXPECT_TRUE(is_ascii_alnum('G'));
  EXPECT_FALSE(is_ascii_alnum(' '));
}

TEST(Ascii, CaseFolding) {
  EXPECT_EQ(to_ascii_upper('a'), 'A');
  EXPECT_EQ(to_ascii_upper('z'), 'Z');
  EXPECT_EQ(to_ascii_upper('A'), 'A');
  EXPECT_EQ(to_ascii_upper('5'), '5');
  EXPECT_EQ(to_ascii_lower('A'), 'a');
  EXPECT_EQ(to_ascii_lower('m'), 'm');
}

TEST(Ascii, NegativeCharSafe) {
  // High-bit bytes (e.g. UTF-8 continuation bytes) must classify as
  // nothing rather than trip UB as std::toupper would.
  const char high = static_cast<char>(0xE9);
  EXPECT_FALSE(is_ascii_alpha(high));
  EXPECT_FALSE(is_ascii_digit(high));
  EXPECT_EQ(to_ascii_upper(high), high);
  EXPECT_EQ(alpha_index(high), -1);
}

TEST(Ascii, AlphaIndex) {
  EXPECT_EQ(alpha_index('A'), 0);
  EXPECT_EQ(alpha_index('Z'), 25);
  EXPECT_EQ(alpha_index('a'), 0);
  EXPECT_EQ(alpha_index('z'), 25);
  EXPECT_EQ(alpha_index('3'), -1);
}

TEST(Ascii, DigitIndex) {
  EXPECT_EQ(digit_index('0'), 0);
  EXPECT_EQ(digit_index('9'), 9);
  EXPECT_EQ(digit_index('A'), -1);
}

TEST(Ascii, ToUpperCopy) {
  EXPECT_EQ(to_upper_copy("Smith-O'Brien 42"), "SMITH-O'BRIEN 42");
  EXPECT_EQ(to_upper_copy(""), "");
}

TEST(Ascii, DigitsOnly) {
  EXPECT_EQ(digits_only("213-333-3333"), "2133333333");
  EXPECT_EQ(digits_only("no digits"), "");
  EXPECT_EQ(digits_only("a1b2c3"), "123");
}

TEST(Ascii, LettersOnlyUpper) {
  EXPECT_EQ(letters_only_upper("1801 N Broad St"), "NBROADST");
  EXPECT_EQ(letters_only_upper("12345"), "");
}

}  // namespace
