// fbf::Client transport equivalence (DESIGN.md §15): the same request
// against the same service state returns fingerprint-equal responses
// from the in-process and TCP backends — under fault injection included,
// because retries re-deliver until a clean attempt lands.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/dataset.hpp"
#include "linkage/person_gen.hpp"
#include "net/tcp.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "storage/mem_object.hpp"
#include "util/rng.hpp"

namespace c = fbf::core;
namespace d = fbf::datagen;
namespace l = fbf::linkage;
namespace s = fbf::serve;
namespace u = fbf::util;

namespace {

/// One service seeded with strings + records, shared by both transports.
struct ServeFixture {
  std::shared_ptr<fbf::storage::MemObjectBackend> backend =
      std::make_shared<fbf::storage::MemObjectBackend>();
  s::MatchService service{s::ServiceOptions{}, backend};
  d::PairedDataset dataset;
  std::vector<l::PersonRecord> clean;
  std::vector<l::PersonRecord> error;

  explicit ServeFixture(std::uint64_t seed) {
    auto built = d::build_paired_dataset(d::FieldKind::kLastName, 400, seed);
    EXPECT_TRUE(built.ok());
    dataset = std::move(built.value());
    service.index_strings(dataset.clean);
    u::Rng rng(seed + 1);
    clean = l::generate_people(60, rng);
    l::RecordErrorModel model;
    error = l::make_error_records(clean, model, rng);
    fbf::Client seeder = fbf::Client::in_process(service);
    EXPECT_TRUE(seeder.ingest(clean).ok());
  }
};

}  // namespace

TEST(ServeClient, InProcessAndTcpBackendsAnswerIdentically) {
  ServeFixture fixture(41);
  fbf::Client local = fbf::Client::in_process(fixture.service);
  fbf::net::ShardServer server(fixture.service.handler());
  fbf::net::TcpTransportOptions transport_options;
  transport_options.port = server.port();
  fbf::Client remote(
      std::make_shared<fbf::net::TcpTransport>(transport_options));
  EXPECT_STREQ(local.backend_name(), "inprocess");
  EXPECT_STREQ(remote.backend_name(), "tcp");
  ASSERT_TRUE(remote.ping().ok());

  for (std::size_t i = 0; i < 24; ++i) {
    const u::Result<fbf::MatchResponse> a =
        local.match_string(fixture.dataset.error[i]);
    const u::Result<fbf::MatchResponse> b =
        remote.match_string(fixture.dataset.error[i]);
    ASSERT_TRUE(a.ok()) << a.status().to_string();
    ASSERT_TRUE(b.ok()) << b.status().to_string();
    EXPECT_EQ(s::match_response_fingerprint(*a),
              s::match_response_fingerprint(*b))
        << "string query " << i;
  }
  for (std::size_t i = 0; i < 12; ++i) {
    const u::Result<fbf::MatchResponse> a =
        local.match_record(fixture.error[i]);
    const u::Result<fbf::MatchResponse> b =
        remote.match_record(fixture.error[i]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(s::match_response_fingerprint(*a),
              s::match_response_fingerprint(*b))
        << "record probe " << i;
  }
}

TEST(ServeClient, BackendsStayEquivalentUnderFaultInjection) {
  ServeFixture fixture(42);
  // ~35% of attempts fail; the client's retry loop bumps the attempt
  // number, and fault draws are pure in (shard, attempt), so a retry can
  // land.  Both transports draw from the same decision function.
  u::FaultConfig faults;
  faults.seed = 97;
  faults.shard_fail_rate = 0.35;

  const auto in_process_transport =
      std::make_shared<fbf::net::InProcessTransport>(
          fixture.service.handler(), faults);

  fbf::net::ShardServerOptions server_options;
  server_options.faults = faults;
  server_options.injected_delay_ms = 100.0;
  fbf::net::ShardServer server(fixture.service.handler(), server_options);
  fbf::net::TcpTransportOptions transport_options;
  transport_options.port = server.port();
  transport_options.deadline_ms = 50.0;  // injected stalls expire quickly
  transport_options.faults = faults;
  const auto tcp_transport =
      std::make_shared<fbf::net::TcpTransport>(transport_options);

  for (std::size_t i = 0; i < 16; ++i) {
    // Fault draws are pure in (shard, attempt): give each query its own
    // shard id so every query faces a fresh failure pattern, identical
    // across the two transports.
    fbf::ClientOptions client_options;
    client_options.max_attempts = 8;
    client_options.shard = i;
    fbf::Client local(in_process_transport, client_options);
    fbf::Client remote(tcp_transport, client_options);
    const u::Result<fbf::MatchResponse> a =
        local.match_string(fixture.dataset.error[i]);
    const u::Result<fbf::MatchResponse> b =
        remote.match_string(fixture.dataset.error[i]);
    ASSERT_TRUE(a.ok()) << a.status().to_string();
    ASSERT_TRUE(b.ok()) << b.status().to_string();
    EXPECT_EQ(s::match_response_fingerprint(*a),
              s::match_response_fingerprint(*b))
        << "faulted string query " << i;
  }
  // Faults actually fired on both transports and the totals agree (same
  // seed, same decision function, same shard/attempt numbering).
  EXPECT_GT(in_process_transport->stats().total_failures(), 0u);
  EXPECT_GT(tcp_transport->stats().total_failures(), 0u);
  EXPECT_EQ(in_process_transport->stats().total_failures(),
            tcp_transport->stats().total_failures());
}

TEST(ServeClient, IngestAndAdminWorkOverBothBackends) {
  ServeFixture fixture(43);
  fbf::Client local = fbf::Client::in_process(fixture.service);
  fbf::net::ShardServer server(fixture.service.handler());
  fbf::net::TcpTransportOptions transport_options;
  transport_options.port = server.port();
  fbf::Client remote(
      std::make_shared<fbf::net::TcpTransport>(transport_options));

  u::Rng rng(99);
  const std::vector<l::PersonRecord> more = l::generate_people(10, rng);
  const u::Result<s::IngestReply> via_tcp =
      remote.ingest(std::span<const l::PersonRecord>(more.data(), 5));
  ASSERT_TRUE(via_tcp.ok()) << via_tcp.status().to_string();
  EXPECT_EQ(via_tcp->accepted, 5u);
  const u::Result<s::IngestReply> via_local =
      local.ingest(std::span<const l::PersonRecord>(more.data() + 5, 5));
  ASSERT_TRUE(via_local.ok());
  EXPECT_EQ(via_local->seq, via_tcp->seq + 1)
      << "both backends commit through the same journal";

  const u::Result<fbf::telemetry::MetricsSnapshot> a = local.metrics();
  const u::Result<fbf::telemetry::MetricsSnapshot> b = remote.metrics();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->gauge("serve.store_size"), b->gauge("serve.store_size"));
  EXPECT_EQ(a->gauge("serve.corpus_size"), b->gauge("serve.corpus_size"));
  EXPECT_EQ(a->info, b->info);

  // The one-release deprecated fixed-field view is a pure rendering of
  // the same registry rows the kMetrics snapshot ships.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const u::Result<s::ServiceStats> legacy = remote.stats();
#pragma GCC diagnostic pop
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(static_cast<std::int64_t>(legacy->store_size),
            b->gauge("serve.store_size"));
  EXPECT_EQ(legacy->queries, b->counter("serve.queries"));
  EXPECT_EQ(legacy->ingests, b->counter("serve.ingests"));
}

TEST(ServeClient, DeprecatedEntryPointsAndClientAgreeOnMatches) {
  // Consolidation check: a lookup through the request-level client finds
  // the same corpus neighbors as the batch join over the same options.
  ServeFixture fixture(44);
  fbf::Client client = fbf::Client::in_process(fixture.service);
  const std::string& query = fixture.dataset.error[3];
  const u::Result<fbf::MatchResponse> served = client.match_string(query, 0);
  ASSERT_TRUE(served.ok());

  const c::MatchCorpus corpus(c::QueryOptions{}, fixture.dataset.clean);
  const c::CorpusResult direct = corpus.query(query);
  ASSERT_EQ(served->matches.size(), direct.matches.size());
  for (std::size_t i = 0; i < direct.matches.size(); ++i) {
    EXPECT_EQ(served->matches[i].id, direct.matches[i]);
    EXPECT_EQ(served->matches[i].value,
              fixture.dataset.clean[direct.matches[i]]);
  }
  EXPECT_EQ(served->counters.fbf_pass, direct.counters.fbf_pass);
  EXPECT_EQ(served->counters.verify_calls, direct.counters.verify_calls);
}
