#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/dataset.hpp"
#include "metrics/damerau.hpp"
#include "search/bk_tree.hpp"
#include "search/trie_search.hpp"
#include "util/rng.hpp"

namespace {

namespace dg = fbf::datagen;
using fbf::metrics::dl_distance;
using fbf::metrics::true_dl_distance;
using fbf::search::BkTree;
using fbf::search::TrieSearch;

// ------------------------------------------------------------- BK-tree --

TEST(BkTree, EmptyTree) {
  BkTree tree;
  std::vector<std::uint32_t> out;
  EXPECT_EQ(tree.query("SMITH", 1, out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(BkTree, ExactLookup) {
  const std::vector<std::string> strings = {"SMITH", "JONES", "BROWN"};
  const BkTree tree(strings);
  std::vector<std::uint32_t> out;
  tree.query("JONES", 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);
}

TEST(BkTree, DuplicateStringsAllReturned) {
  const std::vector<std::string> strings = {"SMITH", "SMITH", "SMITH"};
  const BkTree tree(strings);
  std::vector<std::uint32_t> out;
  tree.query("SMITH", 0, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 2}));
}

class BkTreeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BkTreeEquivalence, MatchesBruteForceTrueDl) {
  const int k = GetParam();
  const auto dataset = dg::build_paired_dataset(dg::FieldKind::kLastName,
                                                250, 77).value();
  const BkTree tree(dataset.error);
  std::vector<std::uint32_t> out;
  for (const std::string& query : dataset.clean) {
    out.clear();
    tree.query(query, k, out);
    std::set<std::uint32_t> from_tree(out.begin(), out.end());
    EXPECT_EQ(from_tree.size(), out.size()) << "duplicates for " << query;
    std::set<std::uint32_t> brute;
    for (std::uint32_t j = 0; j < dataset.error.size(); ++j) {
      if (true_dl_distance(query, dataset.error[j]) <= k) {
        brute.insert(j);
      }
    }
    EXPECT_EQ(from_tree, brute) << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, BkTreeEquivalence, ::testing::Values(0, 1, 2));

TEST(BkTree, PruningDoesWork) {
  // A range query must evaluate far fewer distances than the tree size
  // on clustered name data at radius 1.
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 2000, 3).value();
  const BkTree tree(dataset.error);
  std::vector<std::uint32_t> out;
  const std::size_t evals = tree.query(dataset.clean[0], 1, out);
  EXPECT_LT(evals, tree.size() / 2);
}

TEST(BkTree, SupersetOfOsaMatches) {
  // true_dl <= OSA, so radius-k BK results cover every OSA-within-k pair
  // — the property that makes the tree a safe OSA candidate generator.
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 300, 12).value();
  const BkTree tree(dataset.error);
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out.clear();
    tree.query(dataset.clean[i], 1, out);
    const std::set<std::uint32_t> candidates(out.begin(), out.end());
    for (std::uint32_t j = 0; j < dataset.size(); ++j) {
      if (dl_distance(dataset.clean[i], dataset.error[j]) <= 1) {
        EXPECT_TRUE(candidates.count(j)) << i << "," << j;
      }
    }
  }
}

// ---------------------------------------------------------------- trie --

TEST(TrieSearch, EmptyAndExact) {
  TrieSearch empty;
  std::vector<std::uint32_t> out;
  EXPECT_EQ(empty.query("X", 1, out), 0u);

  const std::vector<std::string> strings = {"SMITH", "SMYTH", "JONES"};
  const TrieSearch trie(strings);
  out.clear();
  trie.query("SMITH", 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(TrieSearch, PrefixSharingVisitsFewNodes) {
  // 1000 strings sharing prefixes: visited rows far below total chars.
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 1000, 8).value();
  const TrieSearch trie(dataset.error);
  EXPECT_LT(trie.node_count(),
            1000u * 8u);  // prefix sharing compresses the dictionary
  std::vector<std::uint32_t> out;
  const std::size_t rows = trie.query(dataset.clean[0], 1, out);
  EXPECT_LT(rows, trie.node_count() / 2);
}

TEST(TrieSearch, EmptyQueryMatchesShortStrings) {
  const std::vector<std::string> strings = {"A", "AB", "ABC"};
  const TrieSearch trie(strings);
  std::vector<std::uint32_t> out;
  trie.query("", 1, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));  // only "A" within 1
}

TEST(TrieSearch, TranspositionCountsAsOne) {
  const std::vector<std::string> strings = {"SMIHT"};
  const TrieSearch trie(strings);
  std::vector<std::uint32_t> out;
  trie.query("SMITH", 1, out);
  ASSERT_EQ(out.size(), 1u);  // OSA semantics: transposition = 1 edit
}

TEST(TrieSearch, DuplicatesAllReported) {
  const std::vector<std::string> strings = {"SMITH", "SMITH"};
  const TrieSearch trie(strings);
  std::vector<std::uint32_t> out;
  trie.query("SMYTH", 1, out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
}

class TrieEquivalence
    : public ::testing::TestWithParam<std::tuple<dg::FieldKind, int>> {};

TEST_P(TrieEquivalence, MatchesBruteForceOsa) {
  const auto [kind, k] = GetParam();
  const auto dataset = dg::build_paired_dataset(kind, 220, 41).value();
  const TrieSearch trie(dataset.error);
  std::vector<std::uint32_t> out;
  for (const std::string& query : dataset.clean) {
    out.clear();
    trie.query(query, k, out);
    std::set<std::uint32_t> from_trie(out.begin(), out.end());
    EXPECT_EQ(from_trie.size(), out.size());
    std::set<std::uint32_t> brute;
    for (std::uint32_t j = 0; j < dataset.error.size(); ++j) {
      if (dl_distance(query, dataset.error[j]) <= k) {
        brute.insert(j);
      }
    }
    EXPECT_EQ(from_trie, brute) << query << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FieldsAndRadii, TrieEquivalence,
    ::testing::Combine(::testing::Values(dg::FieldKind::kLastName,
                                         dg::FieldKind::kSsn,
                                         dg::FieldKind::kAddress),
                       ::testing::Values(0, 1, 2)),
    [](const auto& param_info) {
      return std::string(dg::field_kind_name(std::get<0>(param_info.param))) +
             "_k" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
