#include "linkage/incremental.hpp"

#include <gtest/gtest.h>

#include "datagen/errors.hpp"
#include "linkage/person_gen.hpp"
#include "util/rng.hpp"

namespace {

namespace lk = fbf::linkage;
using fbf::util::Rng;

lk::ComparatorConfig fpdl_config() {
  return lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
}

TEST(EntityStore, FirstBatchFoundsEntities) {
  Rng rng(1);
  const auto people = lk::generate_people(50, rng);
  lk::EntityStore store(fpdl_config());
  const auto stats = store.ingest(people);
  EXPECT_EQ(stats.batch_size, 50u);
  EXPECT_EQ(stats.comparisons, 0u);  // empty store: nothing to compare
  EXPECT_EQ(stats.new_entities, 50u);
  EXPECT_EQ(stats.merged, 0u);
  EXPECT_EQ(store.size(), 50u);
  EXPECT_EQ(store.entity_count(), 50u);
}

TEST(EntityStore, ExactDuplicatesMerge) {
  Rng rng(2);
  const auto people = lk::generate_people(40, rng);
  lk::EntityStore store(fpdl_config());
  store.ingest(people);
  const auto stats = store.ingest(people);  // same records again
  EXPECT_EQ(stats.merged, 40u);
  EXPECT_EQ(stats.new_entities, 0u);
  EXPECT_EQ(store.entity_count(), 40u);
  EXPECT_EQ(store.size(), 80u);
  // Each duplicate shares its original's entity id.
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(store.entity_of(i), store.entity_of(40 + i));
  }
}

TEST(EntityStore, TypoedDuplicatesStillMerge) {
  Rng rng(3);
  const auto clean = lk::generate_people(60, rng);
  lk::RecordErrorModel model;
  model.field_typo_rate = 0.2;
  const auto error = lk::make_error_records(clean, model, rng);
  lk::EntityStore store(fpdl_config());
  store.ingest(clean);
  const auto stats = store.ingest(error);
  // The comparator threshold tolerates this error model: most merge.
  EXPECT_GE(stats.merged, 55u);
}

TEST(EntityStore, DistinctBatchesStayDistinct) {
  Rng rng1(4);
  Rng rng2(99);
  const auto batch_a = lk::generate_people(30, rng1);
  auto batch_b = lk::generate_people(30, rng2);
  for (auto& r : batch_b) {
    r.id += 1000;  // distinct identities
  }
  lk::EntityStore store(fpdl_config());
  store.ingest(batch_a);
  const auto stats = store.ingest(batch_b);
  // Random distinct people almost never clear the 4.0 threshold.
  EXPECT_GE(stats.new_entities, 28u);
}

TEST(EntityStore, FbfPrunesVerifyCalls) {
  Rng rng(5);
  const auto clean = lk::generate_people(120, rng);
  const auto error = lk::make_error_records(clean, {}, rng);

  lk::EntityStore dl_store(
      lk::make_point_threshold_config(lk::FieldStrategy::kDl));
  dl_store.ingest(clean);
  const auto dl_stats = dl_store.ingest(error);

  lk::EntityStore fpdl_store(fpdl_config());
  fpdl_store.ingest(clean);
  const auto fpdl_stats = fpdl_store.ingest(error);

  EXPECT_EQ(fpdl_stats.comparisons, dl_stats.comparisons);
  EXPECT_LT(fpdl_stats.verify_calls, dl_stats.verify_calls / 5);
  // Same resolution decisions (FBF only removes guaranteed non-matches).
  EXPECT_EQ(fpdl_stats.merged, dl_stats.merged);
  EXPECT_EQ(fpdl_store.entity_count(), dl_store.entity_count());
}

TEST(EntityStore, BatchMembersDoNotMatchEachOther) {
  // Two copies of the same person inside ONE batch found separate
  // entities (store-at-batch-start semantics) — documents the contract.
  Rng rng(6);
  const auto people = lk::generate_people(1, rng);
  std::vector<lk::PersonRecord> batch = {people[0], people[0]};
  lk::EntityStore store(fpdl_config());
  const auto stats = store.ingest(batch);
  EXPECT_EQ(stats.new_entities, 2u);
  EXPECT_NE(store.entity_of(0), store.entity_of(1));
}

TEST(EntityStore, GrowingStoreCostsGrowLinearly) {
  Rng rng(7);
  const auto base = lk::generate_people(100, rng);
  lk::EntityStore store(fpdl_config());
  store.ingest(base);
  const auto more = lk::generate_people(10, rng);
  const auto stats = store.ingest(more);
  EXPECT_EQ(stats.comparisons, 10u * 100u);
}

}  // namespace
