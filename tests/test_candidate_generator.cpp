// Property tests for the generate stage of the generate→filter→verify
// cascade (DESIGN.md §14).  The load-bearing guarantee is zero false
// negatives: every generator must surface a superset of
// { j : OSA(query, t_j) <= k }, so the verifier-final match set is
// *identical* to the dense generator's across layouts, k in {1,2},
// thread counts, and incremental appends.  Also pinned here: the CSR
// bit-packed postings store (round trip, order independence, bit-width
// widening past 2^20 ids), generator selection (FBF_FORCE_GENERATOR),
// and the soundness gates that keep a forced "block" from ever changing
// answers.
#include "core/candidate_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/block_index.hpp"
#include "core/candidate_pipeline.hpp"
#include "core/exec_policy.hpp"
#include "core/match_join.hpp"
#include "core/signature_index.hpp"
#include "datagen/dataset.hpp"
#include "linkage/engine.hpp"
#include "linkage/incremental.hpp"
#include "linkage/person_gen.hpp"
#include "metrics/pdl.hpp"
#include "search/generator_adapters.hpp"
#include "testenv.hpp"
#include "util/rng.hpp"

namespace {

namespace c = fbf::core;
namespace dg = fbf::datagen;
namespace lk = fbf::linkage;
namespace fs = fbf::search;
using fbf::metrics::pdl_within;
using fbf::util::Rng;

using fbf::testenv::ScopedForceGenerator;

// ---------------------------------------------------------------------------
// PackedPostings: the CSR bit-packed store.
// ---------------------------------------------------------------------------

TEST(PackedPostings, RoundTripSortsAndDeduplicates) {
  // Unsorted input with duplicates; the build must produce sorted unique
  // keys, ascending ids per key, and exact entry recovery.
  std::vector<c::PostingEntry> entries = {
      {40, 7}, {10, 3}, {40, 1}, {10, 3}, {25, 0}, {40, 7}, {10, 9},
  };
  c::PackedPostings p;
  p.build(std::move(entries));
  ASSERT_EQ(p.key_count(), 3u);
  EXPECT_EQ(p.entry_count(), 5u);  // two duplicates dropped
  EXPECT_EQ(p.key_at(0), 10u);
  EXPECT_EQ(p.key_at(1), 25u);
  EXPECT_EQ(p.key_at(2), 40u);

  const auto r10 = p.find(10);
  ASSERT_EQ(r10.end - r10.begin, 2u);
  EXPECT_EQ(p.id_at(r10.begin), 3u);
  EXPECT_EQ(p.id_at(r10.begin + 1), 9u);
  const auto r25 = p.find(25);
  ASSERT_EQ(r25.end - r25.begin, 1u);
  EXPECT_EQ(p.id_at(r25.begin), 0u);
  const auto r40 = p.find(40);
  ASSERT_EQ(r40.end - r40.begin, 2u);
  EXPECT_EQ(p.id_at(r40.begin), 1u);
  EXPECT_EQ(p.id_at(r40.begin + 1), 7u);

  const auto missing = p.find(11);
  EXPECT_EQ(missing.begin, missing.end);
}

TEST(PackedPostings, BuildIsInputOrderIndependent) {
  Rng rng(99);
  std::vector<c::PostingEntry> entries;
  for (int i = 0; i < 500; ++i) {
    entries.push_back({rng.next() % 37, static_cast<std::uint32_t>(
                                            rng.next() % 1000)});
  }
  std::vector<c::PostingEntry> shuffled = entries;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.next() % i]);
  }
  c::PackedPostings a;
  c::PackedPostings b;
  a.build(std::move(entries));
  b.build(std::move(shuffled));
  ASSERT_EQ(a.key_count(), b.key_count());
  ASSERT_EQ(a.entry_count(), b.entry_count());
  for (std::size_t i = 0; i < a.key_count(); ++i) {
    ASSERT_EQ(a.key_at(i), b.key_at(i));
    const auto ra = a.range_at(i);
    const auto rb = b.range_at(i);
    ASSERT_EQ(ra.end - ra.begin, rb.end - rb.begin);
    for (std::size_t j = 0; j < ra.end - ra.begin; ++j) {
      ASSERT_EQ(a.id_at(ra.begin + j), b.id_at(rb.begin + j));
    }
  }
}

TEST(PackedPostings, BitWidthWidensPastTwentyBitIds) {
  // ~20 bits per id at a million rows is the design point; the store must
  // widen automatically when ids cross the 2^20 boundary, and ids packed
  // near the boundary (including spills across 64-bit word seams) must
  // round-trip exactly.
  constexpr std::uint32_t kBoundary = 1u << 20;
  {
    c::PackedPostings p;
    p.build({{1, kBoundary - 1}, {1, 12345}});
    EXPECT_EQ(p.bits_per_id(), 20);
    const auto r = p.find(1);
    EXPECT_EQ(p.id_at(r.begin), 12345u);
    EXPECT_EQ(p.id_at(r.begin + 1), kBoundary - 1);
  }
  {
    std::vector<c::PostingEntry> entries;
    // Enough entries at 21 bits that packed positions straddle word
    // boundaries (64 is not a multiple of 21).
    for (std::uint32_t i = 0; i < 200; ++i) {
      entries.push_back({i % 7, kBoundary + i});
    }
    c::PackedPostings p;
    p.build(std::move(entries));
    EXPECT_EQ(p.bits_per_id(), 21);
    for (std::uint64_t key = 0; key < 7; ++key) {
      const auto r = p.find(key);
      std::uint32_t prev = 0;
      for (std::size_t pos = r.begin; pos < r.end; ++pos) {
        const std::uint32_t id = p.id_at(pos);
        EXPECT_GE(id, kBoundary);
        EXPECT_LT(id, kBoundary + 200);
        EXPECT_EQ((id - kBoundary) % 7, key);
        if (pos > r.begin) {
          EXPECT_GT(id, prev);
        }
        prev = id;
      }
    }
  }
}

TEST(PackedPostings, EmptyAndSingleEntry) {
  c::PackedPostings p;
  p.build({});
  EXPECT_EQ(p.key_count(), 0u);
  EXPECT_EQ(p.entry_count(), 0u);
  p.build({{0, 0}});
  EXPECT_EQ(p.bits_per_id(), 1);
  const auto r = p.find(0);
  ASSERT_EQ(r.end - r.begin, 1u);
  EXPECT_EQ(p.id_at(r.begin), 0u);
}

// ---------------------------------------------------------------------------
// Generator selection: names, parsing, FBF_FORCE_GENERATOR.
// ---------------------------------------------------------------------------

TEST(GeneratorSelect, NamesAndParsing) {
  EXPECT_STREQ(c::generator_name(c::GeneratorKind::kDense), "dense");
  EXPECT_STREQ(c::generator_name(c::GeneratorKind::kBlockIndex),
               "block-index");
  EXPECT_EQ(c::generator_from_name("dense"), c::GeneratorKind::kDense);
  EXPECT_EQ(c::generator_from_name("block"), c::GeneratorKind::kBlockIndex);
  EXPECT_EQ(c::generator_from_name("block-index"),
            c::GeneratorKind::kBlockIndex);
  EXPECT_EQ(c::generator_from_name("bogus"), std::nullopt);
  EXPECT_EQ(c::generator_from_name(""), std::nullopt);
}

TEST(GeneratorSelect, EnvOverrideWinsBothWays) {
  {
    ScopedForceGenerator force("block");
    EXPECT_EQ(c::select_generator(c::GeneratorKind::kDense),
              c::GeneratorKind::kBlockIndex);
  }
  {
    ScopedForceGenerator force("dense");
    EXPECT_EQ(c::select_generator(c::GeneratorKind::kBlockIndex),
              c::GeneratorKind::kDense);
  }
  {
    ScopedForceGenerator force(nullptr);
    EXPECT_EQ(c::select_generator(c::GeneratorKind::kDense),
              c::GeneratorKind::kDense);
    EXPECT_EQ(c::select_generator(c::GeneratorKind::kBlockIndex),
              c::GeneratorKind::kBlockIndex);
  }
  {
    // Unknown value: warn (once) and fall back to the request.
    ScopedForceGenerator force("quantum");
    EXPECT_EQ(c::select_generator(c::GeneratorKind::kDense),
              c::GeneratorKind::kDense);
    EXPECT_EQ(c::select_generator(c::GeneratorKind::kBlockIndex),
              c::GeneratorKind::kBlockIndex);
  }
}

TEST(GeneratorSelect, DenseGeneratorEmitsAllIds) {
  c::DenseGenerator gen;
  for (int i = 0; i < 5; ++i) {
    gen.append("x");
  }
  std::vector<std::uint32_t> ids;
  gen.generate("anything", ids);
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(gen.indexed());
}

// ---------------------------------------------------------------------------
// BlockIndexGenerator: soundness and incremental behavior.
// ---------------------------------------------------------------------------

TEST(BlockIndexGenerator, SupportedRange) {
  EXPECT_TRUE(c::BlockIndexGenerator::supported(0));
  EXPECT_TRUE(c::BlockIndexGenerator::supported(1));
  EXPECT_TRUE(c::BlockIndexGenerator::supported(2));
  EXPECT_FALSE(c::BlockIndexGenerator::supported(3));
  EXPECT_FALSE(c::BlockIndexGenerator::supported(-1));
}

/// Every stored j with OSA(query, t_j) <= k must appear in generate()'s
/// output (zero false negatives); output must be sorted unique.
void expect_sound_superset(const c::CandidateGenerator& gen,
                           std::span<const std::string> stored,
                           std::span<const std::string> queries, int k) {
  std::vector<std::uint32_t> ids;
  for (const std::string& q : queries) {
    ids.clear();
    gen.generate(q, ids);
    ASSERT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    ASSERT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
    for (std::size_t j = 0; j < stored.size(); ++j) {
      if (pdl_within(q, stored[j], k)) {
        ASSERT_TRUE(std::binary_search(ids.begin(), ids.end(),
                                       static_cast<std::uint32_t>(j)))
            << gen.name() << " missed stored[" << j << "]='" << stored[j]
            << "' for query '" << q << "' at k=" << k;
      }
    }
  }
}

TEST(BlockIndexGenerator, ZeroFalseNegativesAcrossFieldsAndK) {
  for (const dg::FieldKind kind :
       {dg::FieldKind::kLastName, dg::FieldKind::kSsn,
        dg::FieldKind::kAddress}) {
    for (const int k : {1, 2}) {
      const auto dataset = dg::build_paired_dataset(kind, 250, 311).value();
      const c::BlockIndexGenerator gen(k, dataset.error);
      EXPECT_EQ(gen.size(), dataset.error.size());
      expect_sound_superset(gen, dataset.error, dataset.clean, k);
    }
  }
}

TEST(BlockIndexGenerator, EmptyStringsAreCovered) {
  // OSA("", t) = |t|, so "" must surface as a candidate for short queries
  // and short strings must surface for an empty query.  (The linkage
  // bank's missing-field rule post-filters empties; the *generator* may
  // never drop them.)
  const std::vector<std::string> stored = {"", "a", "ab", "abc"};
  const c::BlockIndexGenerator gen(1, stored);
  std::vector<std::uint32_t> ids;
  gen.generate("a", ids);
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 0u));  // ""
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 1u));  // "a"
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 2u));  // "ab"
  ids.clear();
  gen.generate("", ids);
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 0u));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 1u));
}

TEST(BlockIndexGenerator, LongStringsAreUnconditionalCandidates) {
  // Strings past the deletion-enumeration cap can't be keyed; they must
  // surface for every query (sound), and an over-long query must surface
  // every stored id (the dense fallback).
  const std::string longish(100, 'z');
  const std::vector<std::string> stored = {"alpha", longish, "beta"};
  const c::BlockIndexGenerator gen(1, stored);
  EXPECT_EQ(gen.stats().long_strings, 1u);
  std::vector<std::uint32_t> ids;
  gen.generate("alphq", ids);
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 0u));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 1u));
  ids.clear();
  gen.generate(std::string(90, 'q'), ids);
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(BlockIndexGenerator, IncrementalAppendsMatchBulkBuild) {
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 300, 47).value();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const c::BlockIndexGenerator bulk(1, dataset.error, threads);
    c::BlockIndexGenerator incremental(1);
    // First half in one bulk append, second half one record at a time —
    // the overflow tier takes the singles.
    const std::size_t half = dataset.error.size() / 2;
    incremental.append(
        std::span<const std::string>(dataset.error).subspan(0, half),
        threads);
    for (std::size_t i = half; i < dataset.error.size(); ++i) {
      incremental.append(dataset.error[i]);
    }
    ASSERT_EQ(bulk.size(), incremental.size());
    std::vector<std::uint32_t> a;
    std::vector<std::uint32_t> b;
    for (std::size_t i = 0; i < dataset.clean.size(); i += 3) {
      a.clear();
      b.clear();
      bulk.generate(dataset.clean[i], a);
      incremental.generate(dataset.clean[i], b);
      ASSERT_EQ(a, b) << "threads=" << threads << " query i=" << i;
    }
  }
}

TEST(BlockIndexGenerator, CompactionPreservesGeneration) {
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 200, 53).value();
  c::BlockIndexGenerator gen(1);
  for (const std::string& s : dataset.error) {
    gen.append(s);
  }
  std::vector<std::vector<std::uint32_t>> before(dataset.clean.size());
  for (std::size_t i = 0; i < dataset.clean.size(); ++i) {
    gen.generate(dataset.clean[i], before[i]);
  }
  const auto pre = gen.stats();
  gen.compact();
  const auto post = gen.stats();
  EXPECT_EQ(post.overflow_entries, 0u);
  EXPECT_GE(post.compactions, pre.compactions);
  EXPECT_GT(post.entries, 0u);
  for (std::size_t i = 0; i < dataset.clean.size(); ++i) {
    std::vector<std::uint32_t> after;
    gen.generate(dataset.clean[i], after);
    ASSERT_EQ(before[i], after) << "query i=" << i;
  }
  // Idempotent once the overflow is empty.
  gen.compact();
  EXPECT_EQ(gen.stats().compactions, post.compactions);
}

TEST(BlockIndexGenerator, AutomaticCompactionTriggersAndStaysSound) {
  // Enough single appends to outgrow the overflow tier and fold into the
  // CSR base at least once mid-stream.
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kAddress, 900, 61).value();
  c::BlockIndexGenerator gen(1);
  for (const std::string& s : dataset.error) {
    gen.append(s);
  }
  EXPECT_GT(gen.stats().compactions, 0u);
  std::vector<std::string> queries;
  for (std::size_t i = 0; i < dataset.clean.size(); i += 9) {
    queries.push_back(dataset.clean[i]);
  }
  expect_sound_superset(gen, dataset.error, queries, 1);
}

// ---------------------------------------------------------------------------
// Adapter generators: BK-tree, trie, signature probes.
// ---------------------------------------------------------------------------

TEST(GeneratorAdapters, AllGeneratorsAreSoundSupersets) {
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 200, 77).value();
  const int k = 1;
  std::vector<std::string> queries;
  for (std::size_t i = 0; i < dataset.clean.size(); i += 4) {
    queries.push_back(dataset.clean[i]);
  }

  const c::BlockIndexGenerator block(k, dataset.error);
  expect_sound_superset(block, dataset.error, queries, k);

  const fs::BkTreeGenerator bk(k, dataset.error);
  EXPECT_EQ(bk.size(), dataset.error.size());
  expect_sound_superset(bk, dataset.error, queries, k);

  const fs::TrieGenerator trie(k, dataset.error);
  EXPECT_EQ(trie.size(), dataset.error.size());
  expect_sound_superset(trie, dataset.error, queries, k);

  auto probe = c::SignatureProbeGenerator::create(c::FieldClass::kAlpha,
                                                  /*alpha_words=*/2, k);
  ASSERT_TRUE(probe.has_value());
  for (const std::string& s : dataset.error) {
    probe->append(s);
  }
  EXPECT_EQ(probe->size(), dataset.error.size());
  expect_sound_superset(*probe, dataset.error, queries, k);
}

TEST(GeneratorAdapters, SigProbeRefusesUnsupportedLayouts) {
  // Alphanumeric signatures are wider than one 64-bit key; alpha at k=3
  // blows the probe budget.  create() must refuse exactly where
  // SignatureIndex::build does.
  EXPECT_FALSE(c::SignatureProbeGenerator::create(
                   c::FieldClass::kAlphanumeric, 2, 1)
                   .has_value());
  EXPECT_FALSE(
      c::SignatureProbeGenerator::create(c::FieldClass::kAlpha, 2, 3)
          .has_value());
  EXPECT_TRUE(
      c::SignatureProbeGenerator::create(c::FieldClass::kNumeric, 2, 2)
          .has_value());
}

// ---------------------------------------------------------------------------
// filter_ids: the generate→filter seam.
// ---------------------------------------------------------------------------

/// One query's verified match set via generate → filter_ids → verify.
std::vector<std::uint32_t> indexed_matches(
    const c::CandidateGenerator& gen, const c::CandidatePipeline& pipe,
    std::span<const std::string> stored, const std::string& query,
    c::PipelineCounters& pc) {
  std::vector<std::uint32_t> ids;
  std::vector<std::uint32_t> survivors;
  gen.generate(query, ids);
  pipe.filter_ids(pipe.make_query(query), ids, survivors, pc);
  std::vector<std::uint32_t> matches;
  for (const std::uint32_t j : survivors) {
    if (pipe.verify(query, stored[j], pc)) {
      matches.push_back(j);
    }
  }
  return matches;
}

TEST(FilterIds, MatchSetsAreGeneratorIndependent) {
  // The contract the whole PR hangs on: dense and every indexed generator
  // produce the same verified match set, which equals the brute-force
  // PDL ground truth.  Ladder counters stay monotone per generator but
  // legitimately differ across generators.
  struct LayoutCase {
    dg::FieldKind kind;
    c::FieldClass cls;
    int alpha_words;
  };
  const LayoutCase layouts[] = {
      {dg::FieldKind::kSsn, c::FieldClass::kNumeric, 2},
      {dg::FieldKind::kLastName, c::FieldClass::kAlpha, 2},
      {dg::FieldKind::kAddress, c::FieldClass::kAlphanumeric, 2},
      // alpha l=3 exercises the per-pair fallback inside filter_ids.
      {dg::FieldKind::kLastName, c::FieldClass::kAlpha, 3},
  };
  for (const auto& layout : layouts) {
    for (const int k : {1, 2}) {
      const auto dataset =
          dg::build_paired_dataset(layout.kind, 180, 131).value();
      c::PipelineConfig cfg;
      cfg.field_class = layout.cls;
      cfg.alpha_words = layout.alpha_words;
      cfg.k = k;
      cfg.use_length = true;
      const c::CandidatePipeline pipe(cfg, dataset.error);

      const c::DenseGenerator dense = [&dataset] {
        c::DenseGenerator g;
        for (const std::string& s : dataset.error) {
          g.append(s);
        }
        return g;
      }();
      const c::BlockIndexGenerator block(k, dataset.error);

      for (std::size_t i = 0; i < dataset.clean.size(); i += 5) {
        const std::string& q = dataset.clean[i];
        c::PipelineCounters pc_dense;
        c::PipelineCounters pc_block;
        const auto m_dense =
            indexed_matches(dense, pipe, dataset.error, q, pc_dense);
        const auto m_block =
            indexed_matches(block, pipe, dataset.error, q, pc_block);
        ASSERT_EQ(m_dense, m_block)
            << dg::field_kind_name(layout.kind) << " l=" << layout.alpha_words
            << " k=" << k << " i=" << i;
        // Ground truth: brute-force PDL.
        std::vector<std::uint32_t> truth;
        for (std::size_t j = 0; j < dataset.error.size(); ++j) {
          if (pdl_within(q, dataset.error[j], k)) {
            truth.push_back(static_cast<std::uint32_t>(j));
          }
        }
        ASSERT_EQ(m_dense, truth) << "dense vs brute force at i=" << i;
        // Ladder monotonicity within each run.
        EXPECT_GE(pc_dense.candidates_generated, pc_dense.fbf_evaluated);
        EXPECT_GE(pc_dense.fbf_evaluated, pc_dense.fbf_pass);
        EXPECT_GE(pc_block.candidates_generated, pc_block.fbf_evaluated);
        EXPECT_GE(pc_block.fbf_evaluated, pc_block.fbf_pass);
        // The index admits no more than the dense sweep.
        EXPECT_LE(pc_block.candidates_generated, pc_dense.candidates_generated);
      }
    }
  }
}

TEST(FilterIds, EmptyIdListIsANoOp) {
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 64, 5).value();
  c::PipelineConfig cfg;
  cfg.field_class = c::FieldClass::kAlpha;
  cfg.alpha_words = 2;
  const c::CandidatePipeline pipe(cfg, dataset.error);
  std::vector<std::uint32_t> survivors;
  c::PipelineCounters pc;
  const auto q = pipe.make_query(dataset.clean[0]);
  EXPECT_EQ(pipe.filter_ids(q, {}, survivors, pc), 0u);
  EXPECT_TRUE(survivors.empty());
  EXPECT_EQ(pc.candidates_generated, 0u);
  EXPECT_EQ(pc.fbf_evaluated, 0u);
}

// ---------------------------------------------------------------------------
// Consumer equivalence: the join, the indexed join, linkage, the store.
// ---------------------------------------------------------------------------

TEST(GeneratorEquivalence, MatchJoinBlockEqualsDense) {
  // Pin the env: this test asserts the *requested* generator is honored,
  // so it must not inherit a CI leg's FBF_FORCE_GENERATOR override.
  const ScopedForceGenerator clear_env(nullptr);
  for (const dg::FieldKind kind :
       {dg::FieldKind::kLastName, dg::FieldKind::kSsn}) {
    for (const int k : {1, 2}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const auto dataset = dg::build_paired_dataset(kind, 300, 211).value();
        c::JoinConfig cfg;
        cfg.method = c::Method::kFpdl;
        cfg.k = k;
        cfg.field_class = dg::field_class_of(kind);
        cfg.threads = threads;
        cfg.collect_matches = true;

        cfg.generator = c::GeneratorKind::kDense;
        const auto dense =
            c::match_strings(dataset.clean, dataset.error, cfg);
        cfg.generator = c::GeneratorKind::kBlockIndex;
        const auto block =
            c::match_strings(dataset.clean, dataset.error, cfg);

        EXPECT_STREQ(dense.generator, "dense");
        EXPECT_STREQ(block.generator, "block-index");
        EXPECT_EQ(dense.matches, block.matches);
        EXPECT_EQ(dense.diagonal_matches, block.diagonal_matches);
        ASSERT_EQ(dense.match_pairs, block.match_pairs)
            << dg::field_kind_name(kind) << " k=" << k
            << " threads=" << threads;
        // The index must narrow generation, never widen it.
        EXPECT_LE(block.candidates_generated, dense.candidates_generated);
        EXPECT_EQ(dense.candidates_generated, dense.pairs);
      }
    }
  }
}

TEST(GeneratorEquivalence, FilterOnlyMethodStaysDense) {
  // Method::kFbf scores the filter verdict directly (Verifier::kNone), so
  // block generation would change answers; the soundness gate must hold
  // the join on the dense path even when the block index is requested —
  // or forced through the environment.
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 200, 17).value();
  c::JoinConfig cfg;
  cfg.method = c::Method::kFbfOnly;
  cfg.k = 1;
  cfg.field_class = c::FieldClass::kAlpha;
  cfg.collect_matches = true;
  const auto dense = c::match_strings(dataset.clean, dataset.error, cfg);
  cfg.generator = c::GeneratorKind::kBlockIndex;
  const auto requested = c::match_strings(dataset.clean, dataset.error, cfg);
  EXPECT_STREQ(requested.generator, "dense");
  EXPECT_EQ(dense.match_pairs, requested.match_pairs);
  {
    ScopedForceGenerator force("block");
    cfg.generator = c::GeneratorKind::kDense;
    const auto forced = c::match_strings(dataset.clean, dataset.error, cfg);
    EXPECT_STREQ(forced.generator, "dense");
    EXPECT_EQ(dense.match_pairs, forced.match_pairs);
  }
}

TEST(GeneratorEquivalence, UnsupportedKFallsBackToDense) {
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 150, 29).value();
  c::JoinConfig cfg;
  cfg.method = c::Method::kFpdl;
  cfg.k = 3;  // past BlockIndexGenerator::supported
  cfg.field_class = c::FieldClass::kAlpha;
  cfg.collect_matches = true;
  const auto dense = c::match_strings(dataset.clean, dataset.error, cfg);
  cfg.generator = c::GeneratorKind::kBlockIndex;
  const auto block = c::match_strings(dataset.clean, dataset.error, cfg);
  EXPECT_STREQ(block.generator, "dense");
  EXPECT_EQ(dense.match_pairs, block.match_pairs);
}

TEST(GeneratorEquivalence, ForcedBlockMatchesDenseJoin) {
  // The CI forced-generator leg in miniature: FBF_FORCE_GENERATOR=block
  // reroutes a default-config join, and the match set must not move.
  const ScopedForceGenerator clear_env(nullptr);  // dense baseline first
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 250, 83).value();
  c::JoinConfig cfg;
  cfg.method = c::Method::kFpdl;
  cfg.k = 1;
  cfg.field_class = c::FieldClass::kAlpha;
  cfg.collect_matches = true;
  const auto dense = c::match_strings(dataset.clean, dataset.error, cfg);
  ScopedForceGenerator force("block");
  const auto forced = c::match_strings(dataset.clean, dataset.error, cfg);
  EXPECT_STREQ(forced.generator, "block-index");
  EXPECT_EQ(dense.matches, forced.matches);
  ASSERT_EQ(dense.match_pairs, forced.match_pairs);
}

TEST(GeneratorEquivalence, IndexedJoinBlockPathMatchesScan) {
  // match_strings_indexed with the block generator must agree with the
  // scan join on every layout — including alphanumeric, which the probe
  // index refuses.
  struct LayoutCase {
    dg::FieldKind kind;
    c::FieldClass cls;
  };
  const LayoutCase layouts[] = {
      {dg::FieldKind::kLastName, c::FieldClass::kAlpha},
      {dg::FieldKind::kSsn, c::FieldClass::kNumeric},
      {dg::FieldKind::kAddress, c::FieldClass::kAlphanumeric},
  };
  const ScopedForceGenerator clear_env(nullptr);  // asserts the block path
  for (const auto& layout : layouts) {
    for (const int k : {1, 2}) {
      const auto dataset =
          dg::build_paired_dataset(layout.kind, 220, 139).value();
      c::JoinConfig scan_cfg;
      scan_cfg.method = c::Method::kFpdl;
      scan_cfg.k = k;
      scan_cfg.field_class = layout.cls;
      const auto scan =
          c::match_strings(dataset.clean, dataset.error, scan_cfg);
      c::QueryOptions options;
      options.field_class = layout.cls;
      options.k = k;
      options.exec.generator = c::GeneratorKind::kBlockIndex;
      const auto indexed =
          c::match_strings_indexed(dataset.clean, dataset.error, options);
      ASSERT_TRUE(indexed.has_value())
          << dg::field_kind_name(layout.kind) << " k=" << k;
      EXPECT_STREQ(indexed->path, "block-index");
      EXPECT_EQ(indexed->matches, scan.matches);
      EXPECT_EQ(indexed->diagonal_matches, scan.diagonal_matches);
    }
  }
}

TEST(GeneratorEquivalence, LinkageBlockEqualsDense) {
  // Pin the env so the dense and block runs actually take different
  // generation paths even under a forced CI leg.
  const ScopedForceGenerator clear_env(nullptr);
  Rng rng(907);
  const auto right = lk::generate_people(200, rng);
  const auto left = lk::make_error_records(right, {}, rng);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    lk::LinkConfig cfg;
    cfg.comparator = lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
    cfg.collect_matches = true;
    cfg.exec.threads = threads;
    cfg.exec.generator = fbf::core::GeneratorKind::kDense;
    const auto dense = lk::link_exhaustive(left, right, cfg);
    cfg.exec.generator = fbf::core::GeneratorKind::kBlockIndex;
    const auto block = lk::link_exhaustive(left, right, cfg);
    EXPECT_EQ(dense.matches, block.matches);
    EXPECT_EQ(dense.true_positives, block.true_positives);
    EXPECT_EQ(dense.false_positives, block.false_positives);
    ASSERT_EQ(dense.match_pairs, block.match_pairs)
        << "threads=" << threads;
    // Generation narrowed; verification decisions unchanged.
    EXPECT_LE(block.counters.candidates_generated,
              dense.counters.candidates_generated);
  }
}

TEST(GeneratorEquivalence, PrebuiltContextInheritsGenerator) {
  const ScopedForceGenerator clear_env(nullptr);
  Rng rng(911);
  const auto right = lk::generate_people(150, rng);
  const auto left = lk::make_error_records(right, {}, rng);
  lk::LinkConfig cfg;
  cfg.comparator = lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  cfg.collect_matches = true;
  const auto dense = lk::link_exhaustive(left, right, cfg);

  lk::LinkConfig block_cfg = cfg;
  block_cfg.exec.generator = fbf::core::GeneratorKind::kBlockIndex;
  const lk::LinkageContext ctx(right, block_cfg.comparator, block_cfg.exec);
  const auto block = lk::link_exhaustive(left, ctx, block_cfg);
  EXPECT_EQ(dense.matches, block.matches);
  ASSERT_EQ(dense.match_pairs, block.match_pairs);
}

TEST(GeneratorEquivalence, EntityStoreBlockEqualsDense) {
  const ScopedForceGenerator clear_env(nullptr);
  Rng rng(419);
  const auto clean = lk::generate_people(120, rng);
  const auto errors = lk::make_error_records(clean, {}, rng);

  lk::EntityStoreOptions dense_opts;
  lk::EntityStoreOptions block_opts;
  block_opts.exec.generator = fbf::core::GeneratorKind::kBlockIndex;

  const auto comparator =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  lk::EntityStore dense(comparator, dense_opts);
  lk::EntityStore block(comparator, block_opts);
  // Two batches so the second probes overflow-tier entries appended by
  // the first (the incremental-index path).
  const std::size_t half = clean.size() / 2;
  const std::span<const lk::PersonRecord> all(clean);
  dense.ingest(all.subspan(0, half));
  block.ingest(all.subspan(0, half));
  dense.ingest(errors);
  block.ingest(errors);
  dense.ingest(all.subspan(half));
  block.ingest(all.subspan(half));

  ASSERT_EQ(dense.size(), block.size());
  EXPECT_EQ(dense.entity_count(), block.entity_count());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_EQ(dense.entity_of(i), block.entity_of(i)) << "record " << i;
  }
}

}  // namespace
