#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using fbf::util::fixed;
using fbf::util::speedup;
using fbf::util::Table;
using fbf::util::with_commas;

TEST(Formatting, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(12369182), "12,369,182");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(Formatting, FixedMatchesPaperStyle) {
  EXPECT_EQ(fixed(52807.2, 1), "52,807.2");
  EXPECT_EQ(fixed(0.6, 1), "0.6");
  EXPECT_EQ(fixed(135098.8, 1), "135,098.8");
  EXPECT_EQ(fixed(-12.345, 2), "-12.35");
}

TEST(Formatting, Speedup) {
  EXPECT_EQ(speedup(62.239), "62.24");
  EXPECT_EQ(speedup(1.0), "1.00");
}

TEST(Table, RendersAlignedColumns) {
  Table table({"SSN", "Time ms"});
  table.add_row({"DL", "52,807.2"});
  table.add_row({"FPDL", "848.4"});
  std::ostringstream os;
  table.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("SSN"), std::string::npos);
  EXPECT_NE(out.find("FPDL"), std::string::npos);
  EXPECT_NE(out.find("848.4"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table table({"name", "value"});
  table.add_row({"has,comma", "has\"quote"});
  std::ostringstream os;
  table.render_csv(os);
  EXPECT_EQ(os.str(), "name,value\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream os;
  table.render_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

}  // namespace
