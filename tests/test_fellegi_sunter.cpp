#include "linkage/fellegi_sunter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linkage/person_gen.hpp"
#include "util/rng.hpp"

namespace {

namespace lk = fbf::linkage;
using fbf::util::Rng;

lk::FsModel uniform_model(double m, double u) {
  lk::FsModel model;
  for (auto& field : model.fields) {
    field.m = m;
    field.u = u;
  }
  return model;
}

TEST(FsModel, WeightSigns) {
  const auto model = uniform_model(0.9, 0.05);
  // Agreement on a discriminating field carries positive log2 weight;
  // disagreement negative.
  EXPECT_GT(model.weight(lk::RecordField::kSsn, true), 0.0);
  EXPECT_LT(model.weight(lk::RecordField::kSsn, false), 0.0);
  // Known value: log2(0.9 / 0.05) = log2(18).
  EXPECT_NEAR(model.weight(lk::RecordField::kSsn, true), std::log2(18.0),
              1e-9);
}

TEST(FsModel, NonDiscriminatingFieldNearZeroWeight) {
  const auto model = uniform_model(0.5, 0.5);
  EXPECT_NEAR(model.weight(lk::RecordField::kGender, true), 0.0, 1e-9);
  EXPECT_NEAR(model.weight(lk::RecordField::kGender, false), 0.0, 1e-9);
}

TEST(FsModel, ExtremeProbabilitiesClamped) {
  const auto model = uniform_model(1.0, 0.0);
  EXPECT_TRUE(std::isfinite(model.weight(lk::RecordField::kSsn, true)));
  EXPECT_TRUE(std::isfinite(model.weight(lk::RecordField::kSsn, false)));
}

TEST(FsAgreement, MissingFieldsMarkedInvalid) {
  lk::PersonRecord a;
  a.last_name = "SMITH";
  lk::PersonRecord b;
  b.last_name = "SMITH";
  b.first_name = "MARY";  // a.first_name missing
  const auto gamma = lk::fs_agreement(a, b, nullptr, nullptr,
                                      {lk::FieldStrategy::kExact, 0});
  EXPECT_TRUE(gamma.valid[static_cast<std::size_t>(lk::RecordField::kLastName)]);
  EXPECT_TRUE(gamma.agree[static_cast<std::size_t>(lk::RecordField::kLastName)]);
  EXPECT_FALSE(
      gamma.valid[static_cast<std::size_t>(lk::RecordField::kFirstName)]);
}

TEST(FsAgreement, ApproximateStrategyToleratesTypos) {
  lk::PersonRecord a;
  a.last_name = "JOHNSON";
  lk::PersonRecord b;
  b.last_name = "JOHNSONN";  // one insertion
  const auto exact = lk::fs_agreement(a, b, nullptr, nullptr,
                                      {lk::FieldStrategy::kExact, 0});
  const auto sa = lk::build_record_signatures(a);
  const auto sb = lk::build_record_signatures(b);
  const auto fuzzy =
      lk::fs_agreement(a, b, &sa, &sb, {lk::FieldStrategy::kFpdl, 1});
  const auto idx = static_cast<std::size_t>(lk::RecordField::kLastName);
  EXPECT_FALSE(exact.agree[idx]);
  EXPECT_TRUE(fuzzy.agree[idx]);
}

TEST(FsScore, SumsOnlyValidFields) {
  const auto model = uniform_model(0.9, 0.1);
  lk::FsAgreement gamma;
  gamma.valid[0] = true;
  gamma.agree[0] = true;
  gamma.valid[1] = true;
  gamma.agree[1] = false;
  const double expected = model.weight(lk::RecordField::kFirstName, true) +
                          model.weight(lk::RecordField::kLastName, false);
  EXPECT_NEAR(lk::fs_score(gamma, model), expected, 1e-12);
}

TEST(FsClassify, ThreeWayThresholds) {
  lk::FsModel model;
  model.upper_threshold = 5.0;
  model.lower_threshold = 0.0;
  EXPECT_EQ(lk::fs_classify(7.0, model), lk::FsDecision::kMatch);
  EXPECT_EQ(lk::fs_classify(5.0, model), lk::FsDecision::kMatch);
  EXPECT_EQ(lk::fs_classify(2.0, model), lk::FsDecision::kPossible);
  EXPECT_EQ(lk::fs_classify(-1.0, model), lk::FsDecision::kNonMatch);
  EXPECT_STREQ(lk::fs_decision_name(lk::FsDecision::kPossible), "possible");
}

class FsEmFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    clean_ = lk::generate_people(150, rng);
    lk::RecordErrorModel model;
    model.field_typo_rate = 0.25;
    error_ = lk::make_error_records(clean_, model, rng);
    // Training sample: all diagonal (true) pairs + a slice of random
    // non-pairs — unlabeled, as EM expects.
    for (std::uint32_t i = 0; i < clean_.size(); ++i) {
      sample_.emplace_back(i, i);
    }
    for (int draw = 0; draw < 3000; ++draw) {
      const auto i = static_cast<std::uint32_t>(rng.below(clean_.size()));
      const auto j = static_cast<std::uint32_t>(rng.below(error_.size()));
      if (i != j) {
        sample_.emplace_back(i, j);
      }
    }
  }

  std::vector<lk::PersonRecord> clean_;
  std::vector<lk::PersonRecord> error_;
  std::vector<lk::CandidatePair> sample_;
};

TEST_F(FsEmFixture, EmLearnsDiscriminatingParameters) {
  lk::FsEmOptions options;
  options.agreement = {lk::FieldStrategy::kFpdl, 1};
  const auto model = lk::fs_estimate_em(clean_, error_, sample_, options);
  // Every field must discriminate: m > u, decisively for SSN/phone.
  for (const auto field :
       {lk::RecordField::kSsn, lk::RecordField::kPhone,
        lk::RecordField::kBirthDate, lk::RecordField::kLastName}) {
    const auto& p = model.fields[static_cast<std::size_t>(field)];
    EXPECT_GT(p.m, p.u) << lk::record_field_name(field);
    EXPECT_GT(p.m, 0.5) << lk::record_field_name(field);
    EXPECT_LT(p.u, 0.2) << lk::record_field_name(field);
  }
  // Gender agrees half the time for non-matches: u near 0.5.
  const auto& gender =
      model.fields[static_cast<std::size_t>(lk::RecordField::kGender)];
  EXPECT_NEAR(gender.u, 0.5, 0.15);
}

TEST_F(FsEmFixture, FittedModelSeparatesPairs) {
  lk::FsEmOptions options;
  options.agreement = {lk::FieldStrategy::kFpdl, 1};
  const auto model = lk::fs_estimate_em(clean_, error_, sample_, options);
  const auto stats = lk::fs_link_exhaustive(clean_, error_, model,
                                            options.agreement);
  EXPECT_EQ(stats.pairs, 150u * 150u);
  // High recall on the 150 true pairs, near-zero false positives.
  EXPECT_GE(stats.true_positives, 140u);
  EXPECT_LE(stats.false_positives, 5u);
  EXPECT_EQ(stats.matches + stats.possibles + stats.non_matches,
            stats.pairs);
}

TEST_F(FsEmFixture, EmIsDeterministic) {
  lk::FsEmOptions options;
  options.agreement = {lk::FieldStrategy::kExact, 0};
  const auto a = lk::fs_estimate_em(clean_, error_, sample_, options);
  const auto b = lk::fs_estimate_em(clean_, error_, sample_, options);
  for (std::size_t f = 0; f < lk::kRecordFieldCount; ++f) {
    EXPECT_DOUBLE_EQ(a.fields[f].m, b.fields[f].m);
    EXPECT_DOUBLE_EQ(a.fields[f].u, b.fields[f].u);
  }
}

TEST(FsLink, HandModelOnPerfectDuplicates) {
  Rng rng(21);
  const auto people = lk::generate_people(60, rng);
  const auto model = uniform_model(0.95, 0.05);
  const auto stats = lk::fs_link_exhaustive(
      people, people, model, {lk::FieldStrategy::kExact, 0});
  // Self-join: diagonal scores are maximal -> all 60 matched.
  EXPECT_GE(stats.true_positives, 60u);
}

}  // namespace
