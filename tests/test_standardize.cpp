#include "linkage/standardize.hpp"

#include <gtest/gtest.h>

#include "datagen/dates.hpp"

namespace {

namespace lk = fbf::linkage;

TEST(StandardizeName, CaseAndPunctuation) {
  EXPECT_EQ(lk::standardize_name("  Smith-O'Brien "), "SMITH OBRIEN");
  EXPECT_EQ(lk::standardize_name("mary"), "MARY");
  EXPECT_EQ(lk::standardize_name("VAN  DER   BERG"), "VAN DER BERG");
  EXPECT_EQ(lk::standardize_name(""), "");
  EXPECT_EQ(lk::standardize_name("123"), "");
}

TEST(StandardizeAddress, SuffixAndDirectionalCanonicalization) {
  EXPECT_EQ(lk::standardize_address("1801 North Broad Street"),
            "1801 N BROAD ST");
  EXPECT_EQ(lk::standardize_address("42 west ELM Avenue"), "42 W ELM AVE");
  EXPECT_EQ(lk::standardize_address("7 Oak Blvd."), "7 OAK BLVD");
  // Already-standard input is a fixed point.
  EXPECT_EQ(lk::standardize_address("1801 N BROAD ST"), "1801 N BROAD ST");
}

TEST(StandardizeAddress, SuffixOnlyRewrittenInFinalPosition) {
  // "STREET" as a street *name* (not the last word) must survive.
  EXPECT_EQ(lk::standardize_address("12 STREET ROAD"), "12 STREET RD");
}

TEST(StandardizePhone, FormatsAndCountryCode) {
  EXPECT_EQ(lk::standardize_phone("(215) 555-1212"), "2155551212");
  EXPECT_EQ(lk::standardize_phone("+1 215 555 1212"), "2155551212");
  EXPECT_EQ(lk::standardize_phone("215.555.1212"), "2155551212");
  EXPECT_EQ(lk::standardize_phone("2155551212"), "2155551212");
  // A bare leading-1 ten-digit number is NOT a country code.
  EXPECT_EQ(lk::standardize_phone("1155551212"), "1155551212");
}

TEST(StandardizeSsn, DigitsOnly) {
  EXPECT_EQ(lk::standardize_ssn("123-12-1234"), "123121234");
  EXPECT_EQ(lk::standardize_ssn("123 12 1234"), "123121234");
}

TEST(StandardizeBirthdate, AcceptedSpellings) {
  EXPECT_EQ(lk::standardize_birthdate("02/25/1912"), "02251912");
  EXPECT_EQ(lk::standardize_birthdate("2/5/1980"), "02051980");
  EXPECT_EQ(lk::standardize_birthdate("1980-02-05"), "02051980");
  EXPECT_EQ(lk::standardize_birthdate("02251912"), "02251912");
  EXPECT_EQ(lk::standardize_birthdate("19800205"), "02051980");  // YYYYMMDD
}

TEST(StandardizeBirthdate, RejectsGarbage) {
  EXPECT_FALSE(lk::standardize_birthdate("").has_value());
  EXPECT_FALSE(lk::standardize_birthdate("not a date").has_value());
  EXPECT_FALSE(lk::standardize_birthdate("13/45/1990").has_value());
  EXPECT_FALSE(lk::standardize_birthdate("02/25").has_value());
  EXPECT_FALSE(lk::standardize_birthdate("1/2/3/4").has_value());
}

TEST(StandardizeBirthdate, OutputValidatesWhenInWindow) {
  const auto date = lk::standardize_birthdate("06/15/1975");
  ASSERT_TRUE(date.has_value());
  EXPECT_TRUE(fbf::datagen::is_valid_birthdate(*date));
}

TEST(StandardizeGender, Spellings) {
  EXPECT_EQ(lk::standardize_gender("male"), "M");
  EXPECT_EQ(lk::standardize_gender("F"), "F");
  EXPECT_EQ(lk::standardize_gender("Female"), "F");
  EXPECT_EQ(lk::standardize_gender("unknown"), "");
  EXPECT_EQ(lk::standardize_gender(""), "");
}

TEST(StandardizeRecord, EndToEnd) {
  lk::PersonRecord r;
  r.first_name = " mary ";
  r.last_name = "O'Brien";
  r.address = "1801 north broad street";
  r.phone = "+1 (215) 555-1212";
  r.gender = "female";
  r.ssn = "123-12-1234";
  r.birth_date = "2/25/1980";
  lk::standardize_record(r);
  EXPECT_EQ(r.first_name, "MARY");
  EXPECT_EQ(r.last_name, "OBRIEN");
  EXPECT_EQ(r.address, "1801 N BROAD ST");
  EXPECT_EQ(r.phone, "2155551212");
  EXPECT_EQ(r.gender, "F");
  EXPECT_EQ(r.ssn, "123121234");
  EXPECT_EQ(r.birth_date, "02251980");
}

TEST(StandardizeRecord, BadDateBlankedNotKept) {
  lk::PersonRecord r;
  r.birth_date = "99/99/9999";
  lk::standardize_record(r);
  EXPECT_TRUE(r.birth_date.empty());
}

TEST(StandardizeRecord, Idempotent) {
  lk::PersonRecord r;
  r.first_name = "Mary";
  r.last_name = "O'Brien";
  r.address = "1801 North Broad Street";
  r.phone = "(215) 555-1212";
  r.gender = "f";
  r.ssn = "123-12-1234";
  r.birth_date = "02/25/1980";
  lk::standardize_record(r);
  lk::PersonRecord once = r;
  lk::standardize_record(r);
  for (const auto field : lk::all_record_fields()) {
    EXPECT_EQ(r.field(field), once.field(field))
        << lk::record_field_name(field);
  }
}

}  // namespace
