// Telemetry subsystem properties (DESIGN.md §16):
//
//  * histogram merge determinism — all state integral, so merging
//    per-shard snapshots in ANY order or partition is byte-identical;
//  * observation neutrality — match decisions and ladder counters are
//    byte-identical with telemetry enabled, disabled, and across thread
//    counts and kernel/generator pins (mirroring may never disturb what
//    it mirrors);
//  * trace propagation equality — the spans a traced request leaves
//    behind are the same set over the in-process and TCP transports,
//    fault injection included.
#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/match_join.hpp"
#include "datagen/dataset.hpp"
#include "net/tcp.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"
#include "storage/mem_object.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace c = fbf::core;
namespace d = fbf::datagen;
namespace s = fbf::serve;
namespace t = fbf::telemetry;
namespace u = fbf::util;

namespace {

/// Restores the enable gates (and clears the global registry) so one
/// test's toggling never leaks into another suite.
struct TelemetryGuard {
  TelemetryGuard() {
    t::Registry::global().reset();
    t::set_enabled(true);
    t::set_trace_enabled(true);
  }
  ~TelemetryGuard() {
    t::set_enabled(true);
    t::set_trace_enabled(true);
    t::Registry::global().reset();
  }
};

[[nodiscard]] bool snapshots_identical(const t::HistogramSnapshot& a,
                                       const t::HistogramSnapshot& b) {
  return a.buckets == b.buckets && a.count == b.count &&
         a.sum_fp == b.sum_fp && a.max_fp == b.max_fp;
}

}  // namespace

// --- counters -----------------------------------------------------------

TEST(TelemetryCounter, SumsAcrossThreadSlots) {
  t::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter] {
      for (std::uint64_t n = 0; n < kPerThread; ++n) {
        counter.increment();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(TelemetryRegistry, HandlesAreStableAndResetZeroesInPlace) {
  t::Registry registry;
  t::Counter& a = registry.counter("x.a");
  a.add(5);
  EXPECT_EQ(&registry.counter("x.a"), &a);
  registry.gauge("x.g").set(-3);
  registry.histogram("x.h").record(1.5);
  registry.reset();
  EXPECT_EQ(a.value(), 0u) << "cached handles must survive reset()";
  EXPECT_EQ(registry.gauge("x.g").value(), 0);
  EXPECT_EQ(registry.histogram("x.h").count(), 0u);
}

// --- histogram determinism ----------------------------------------------

TEST(TelemetryHistogram, MergeIsOrderAndPartitionInvariant) {
  // One fixed multiset of samples, recorded into shards three different
  // ways; every merge order must produce byte-identical state.
  u::Rng rng(123);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(rng.uniform() * 100.0 + 0.001);
  }
  t::Histogram serial;
  for (const double v : samples) {
    serial.record(v);
  }
  const t::HistogramSnapshot want = serial.snapshot();

  constexpr std::size_t kShards = 7;
  std::vector<t::HistogramSnapshot> shards(kShards);
  {
    std::vector<t::Histogram> hist(kShards);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      hist[i % kShards].record(samples[i]);
    }
    for (std::size_t i = 0; i < kShards; ++i) {
      shards[i] = hist[i].snapshot();
    }
  }
  // Forward merge, reverse merge, and a pairwise tree must all agree.
  t::HistogramSnapshot forward = shards[0];
  for (std::size_t i = 1; i < kShards; ++i) {
    forward.merge(shards[i]);
  }
  t::HistogramSnapshot reverse = shards[kShards - 1];
  for (std::size_t i = kShards - 1; i-- > 0;) {
    reverse.merge(shards[i]);
  }
  std::vector<t::HistogramSnapshot> tree = shards;
  while (tree.size() > 1) {
    std::vector<t::HistogramSnapshot> next;
    for (std::size_t i = 0; i < tree.size(); i += 2) {
      t::HistogramSnapshot merged = tree[i];
      if (i + 1 < tree.size()) {
        merged.merge(tree[i + 1]);
      }
      next.push_back(std::move(merged));
    }
    tree = std::move(next);
  }
  EXPECT_TRUE(snapshots_identical(forward, want));
  EXPECT_TRUE(snapshots_identical(reverse, want));
  EXPECT_TRUE(snapshots_identical(tree[0], want));
  EXPECT_EQ(forward.count, samples.size());
  EXPECT_DOUBLE_EQ(forward.max(), want.max());
}

TEST(TelemetryHistogram, ConcurrentRecordingMatchesSerial) {
  // A fixed multiset recorded from 8 threads lands byte-identical to the
  // serial recording — integer adds commute, no float accumulation.
  u::Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 8000; ++i) {
    samples.push_back(rng.uniform() * 10.0 + 1e-4);
  }
  t::Histogram serial;
  for (const double v : samples) {
    serial.record(v);
  }
  t::Histogram concurrent;
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  for (std::size_t thread = 0; thread < kThreads; ++thread) {
    threads.emplace_back([&concurrent, &samples, thread] {
      for (std::size_t i = thread; i < samples.size(); i += kThreads) {
        concurrent.record(samples[i]);
      }
    });
  }
  for (std::thread& worker : threads) {
    worker.join();
  }
  EXPECT_TRUE(
      snapshots_identical(serial.snapshot(), concurrent.snapshot()));
}

TEST(TelemetryHistogram, PercentilesInterpolateTheBucketCdf) {
  t::Histogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.record(static_cast<double>(i));
  }
  const t::HistogramSnapshot snap = hist.snapshot();
  // Log buckets are ≤ 9% wide: percentiles land near the exact ranks.
  EXPECT_NEAR(snap.percentile(0.50), 500.0, 500.0 * 0.10);
  EXPECT_NEAR(snap.percentile(0.99), 990.0, 990.0 * 0.10);
  EXPECT_LE(snap.percentile(0.999), snap.max());
  EXPECT_DOUBLE_EQ(snap.max(), 1000.0);
  EXPECT_NEAR(snap.mean(), 500.5, 0.5);  // fixed-point sum: 1/1024 units
}

// --- snapshot plumbing --------------------------------------------------

TEST(TelemetrySnapshot, CaptureDiffAndWireCodecRoundTrip) {
  t::Registry registry;
  registry.counter("a.hits").add(10);
  registry.gauge("a.size").set(-5);
  registry.histogram("a.lat").record(2.0);
  t::MetricsSnapshot before = t::capture(registry);
  registry.counter("a.hits").add(7);
  registry.histogram("a.lat").record(4.0);
  t::MetricsSnapshot after = t::capture(registry);
  after.info.emplace_back("kernel", "tile-test");

  const t::MetricsSnapshot delta = t::diff(before, after);
  EXPECT_EQ(delta.counter("a.hits"), 7u);
  ASSERT_NE(delta.histogram("a.lat"), nullptr);
  EXPECT_EQ(delta.histogram("a.lat")->count, 1u);

  const auto decoded = t::decode_metrics_snapshot(
      t::encode_metrics_snapshot(after));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->counters, after.counters);
  EXPECT_EQ(decoded->gauges, after.gauges);
  EXPECT_EQ(decoded->info, after.info);
  ASSERT_EQ(decoded->histograms.size(), after.histograms.size());
  EXPECT_EQ(decoded->histograms[0].count, after.histograms[0].count);

  // Truncation never decodes.
  const std::string wire = t::encode_metrics_snapshot(after);
  for (const std::size_t cut : {wire.size() - 1, wire.size() / 2}) {
    EXPECT_FALSE(
        t::decode_metrics_snapshot(std::string_view(wire.data(), cut)).ok());
  }

  // merge_into: disjoint rows union, base wins collisions, sorted output.
  t::Registry other;
  other.counter("b.hits").add(3);
  other.counter("a.hits").add(999);
  t::MetricsSnapshot merged = after;
  t::merge_into(merged, t::capture(other));
  EXPECT_EQ(merged.counter("a.hits"), 17u) << "base row wins";
  EXPECT_EQ(merged.counter("b.hits"), 3u);
  EXPECT_TRUE(std::is_sorted(
      merged.counters.begin(), merged.counters.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
}

// --- observation neutrality ---------------------------------------------

TEST(TelemetryNeutrality, MatchResultsAndLaddersAreIdenticalOnAndOff) {
  const TelemetryGuard guard;
  auto built = d::build_paired_dataset(d::FieldKind::kLastName, 600, 19);
  ASSERT_TRUE(built.ok());
  const d::PairedDataset& dataset = built.value();

  const auto run = [&](std::size_t threads) {
    c::JoinConfig config;
    config.threads = threads;
    return c::match_strings(dataset.clean, dataset.error, config);
  };

  t::set_enabled(true);
  const c::JoinStats on = run(1);
  const c::JoinStats on4 = run(4);
  t::set_enabled(false);
  const c::JoinStats off = run(1);
  t::set_enabled(true);

  for (const c::JoinStats* other : {&on4, &off}) {
    EXPECT_EQ(on.matches, other->matches);
    EXPECT_EQ(on.candidates_generated, other->candidates_generated);
    EXPECT_EQ(on.length_pass, other->length_pass);
    EXPECT_EQ(on.fbf_evaluated, other->fbf_evaluated);
    EXPECT_EQ(on.fbf_pass, other->fbf_pass);
    EXPECT_EQ(on.verify_calls, other->verify_calls);
  }
}

TEST(TelemetryNeutrality, GlobalLadderMirrorsJoinDeltasExactly) {
  const TelemetryGuard guard;
  auto built = d::build_paired_dataset(d::FieldKind::kLastName, 400, 23);
  ASSERT_TRUE(built.ok());
  const d::PairedDataset& dataset = built.value();

  // Run the same join at several thread counts: after each run the
  // global pipeline.* counters must have moved by EXACTLY the ladder the
  // join reports, independent of threading.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    t::Registry& global = t::Registry::global();
    const t::MetricsSnapshot before = t::capture(global);
    c::JoinConfig config;
    config.threads = threads;
    const c::JoinStats stats =
        c::match_strings(dataset.clean, dataset.error, config);
    const t::MetricsSnapshot after = t::capture(global);
    const t::MetricsSnapshot delta = t::diff(before, after);
    EXPECT_EQ(delta.counter("pipeline.candidates_generated"),
              stats.candidates_generated)
        << threads << " threads";
    EXPECT_EQ(delta.counter("pipeline.length_pass"), stats.length_pass);
    EXPECT_EQ(delta.counter("pipeline.fbf_evaluated"), stats.fbf_evaluated);
    EXPECT_EQ(delta.counter("pipeline.fbf_pass"), stats.fbf_pass);
    EXPECT_EQ(delta.counter("pipeline.verify_calls"), stats.verify_calls);
    EXPECT_EQ(delta.counter("join.runs"), 1u);
    EXPECT_EQ(delta.counter("join.matches"), stats.matches);
  }
}

TEST(TelemetryNeutrality, MirrorTracksTheLadderUnderKernelAndGeneratorPins) {
  const TelemetryGuard guard;
  auto built = d::build_paired_dataset(d::FieldKind::kLastName, 300, 29);
  ASSERT_TRUE(built.ok());
  const d::PairedDataset& dataset = built.value();

  // Under every pin the match count is invariant (the dispatch contract)
  // and the global mirror moves by EXACTLY the ladder that run reports —
  // the generator pin legitimately changes the ladder itself (an indexed
  // generator admits fewer candidates), never the mirror's fidelity.
  const auto run_and_check = [&](const char* label) {
    const t::MetricsSnapshot before = t::capture(t::Registry::global());
    const c::JoinStats stats =
        c::match_strings(dataset.clean, dataset.error, c::JoinConfig{});
    const t::MetricsSnapshot delta =
        t::diff(before, t::capture(t::Registry::global()));
    EXPECT_EQ(delta.counter("pipeline.candidates_generated"),
              stats.candidates_generated)
        << label;
    EXPECT_EQ(delta.counter("pipeline.length_pass"), stats.length_pass)
        << label;
    EXPECT_EQ(delta.counter("pipeline.fbf_evaluated"), stats.fbf_evaluated)
        << label;
    EXPECT_EQ(delta.counter("pipeline.fbf_pass"), stats.fbf_pass) << label;
    EXPECT_EQ(delta.counter("pipeline.verify_calls"), stats.verify_calls)
        << label;
    return stats.matches;
  };

  const std::uint64_t baseline = run_and_check("auto-dispatch");
  ASSERT_EQ(setenv("FBF_FORCE_KERNEL", "scalar64", 1), 0);
  EXPECT_EQ(run_and_check("FBF_FORCE_KERNEL=scalar64"), baseline);
  ASSERT_EQ(unsetenv("FBF_FORCE_KERNEL"), 0);
  ASSERT_EQ(setenv("FBF_FORCE_GENERATOR", "block", 1), 0);
  EXPECT_EQ(run_and_check("FBF_FORCE_GENERATOR=block"), baseline);
  ASSERT_EQ(unsetenv("FBF_FORCE_GENERATOR"), 0);
}

// --- tracing ------------------------------------------------------------

TEST(TelemetryTrace, DerivedIdsAreDeterministicAndNeverZero) {
  const std::uint64_t a = t::derive_trace_id(10, "payload");
  EXPECT_EQ(a, t::derive_trace_id(10, "payload"));
  EXPECT_NE(a, t::derive_trace_id(11, "payload"));
  EXPECT_NE(a, t::derive_trace_id(10, "payloae"));
  EXPECT_NE(t::derive_trace_id(0, ""), 0u);
}

TEST(TelemetryTrace, ScopedTraceNestsAndRestores) {
  EXPECT_EQ(t::current_trace(), 0u);
  {
    const t::ScopedTrace outer(7);
    EXPECT_EQ(t::current_trace(), 7u);
    {
      const t::ScopedTrace inner(9);
      EXPECT_EQ(t::current_trace(), 9u);
    }
    EXPECT_EQ(t::current_trace(), 7u);
  }
  EXPECT_EQ(t::current_trace(), 0u);
}

namespace {

/// Issues an identical request mix through `transport`, then returns the
/// deduped (trace, span-name) set the run left in the global registry.
/// Each query gets its own shard id (fault draws are pure in
/// (shard, attempt)) so every query faces a fresh failure pattern,
/// identical across the two transports.  Dedup matters: retry counts and
/// batch shapes differ legitimately between transports (a TCP reply-side
/// fault runs the handler, an injected in-process fault does not) — what
/// must be transport-equal is WHICH spans each trace produced, not how
/// many times.
std::set<std::pair<std::uint64_t, std::string>> traced_span_set(
    const std::shared_ptr<fbf::net::ShardTransport>& transport,
    const std::vector<std::string>& queries) {
  t::Registry::global().clear_spans();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    fbf::ClientOptions client_options;
    client_options.max_attempts = 8;
    client_options.shard = i;
    fbf::Client client(transport, client_options);
    const auto reply = client.match_string(queries[i]);
    EXPECT_TRUE(reply.ok()) << reply.status().to_string();
  }
  fbf::ClientOptions admin_options;
  admin_options.max_attempts = 8;
  fbf::Client admin(transport, admin_options);
  const std::string csv =
      "9001,ann,abel,12 oak st,5550001111,f,123456789,01021990\n";
  EXPECT_TRUE(admin.ingest_csv(csv).ok());
  EXPECT_TRUE(admin.metrics().ok());
  std::set<std::pair<std::uint64_t, std::string>> out;
  for (const t::SpanRecord& span : t::Registry::global().spans()) {
    EXPECT_NE(span.trace, 0u);
    out.emplace(span.trace, span.name);
  }
  return out;
}

}  // namespace

TEST(TelemetryTrace, SpanSetsAreTransportEqualUnderFaultInjection) {
  const TelemetryGuard guard;
  auto built = d::build_paired_dataset(d::FieldKind::kLastName, 300, 31);
  ASSERT_TRUE(built.ok());
  const d::PairedDataset& dataset = built.value();
  auto backend = std::make_shared<fbf::storage::MemObjectBackend>();
  s::MatchService service(s::ServiceOptions{}, backend);
  service.index_strings(dataset.clean);
  const std::vector<std::string> queries(dataset.error.begin(),
                                         dataset.error.begin() + 8);

  // Both transports draw delivery faults from the same decision
  // function, and the clients retry until an attempt lands.
  u::FaultConfig faults;
  faults.seed = 97;
  faults.shard_fail_rate = 0.35;

  const auto in_process_transport =
      std::make_shared<fbf::net::InProcessTransport>(service.handler(),
                                                     faults);
  const auto in_process_spans = traced_span_set(in_process_transport, queries);

  fbf::net::ShardServerOptions server_options;
  server_options.faults = faults;
  server_options.injected_delay_ms = 100.0;
  fbf::net::ShardServer server(service.handler(), server_options);
  fbf::net::TcpTransportOptions transport_options;
  transport_options.port = server.port();
  transport_options.deadline_ms = 50.0;  // injected stalls expire quickly
  transport_options.faults = faults;
  const auto tcp_transport =
      std::make_shared<fbf::net::TcpTransport>(transport_options);
  const auto tcp_spans = traced_span_set(tcp_transport, queries);
  server.stop();

  // The injection was live on both sides, with the same failure totals.
  EXPECT_GT(in_process_transport->stats().total_failures(), 0u);
  EXPECT_EQ(in_process_transport->stats().total_failures(),
            tcp_transport->stats().total_failures());
  ASSERT_FALSE(in_process_spans.empty());
  EXPECT_EQ(in_process_spans, tcp_spans)
      << "a traced request must leave the same span set over both backends";

  // Every query trace reached all three layers: client delivery, the
  // serve handler, and the coalesced batch dispatch.
  for (const std::string& query : queries) {
    fbf::MatchRequest request;
    request.kind = fbf::MatchRequest::Kind::kString;
    request.text = query;
    const std::uint64_t trace = t::derive_trace_id(
        static_cast<std::uint16_t>(fbf::net::FrameType::kMatchQuery),
        s::encode_match_request(request));
    for (const char* layer : {"net.call", "serve.query", "serve.batch"}) {
      EXPECT_TRUE(tcp_spans.contains({trace, layer}))
          << layer << " span missing for traced query '" << query << "'";
    }
  }
}

TEST(TelemetryTrace, DisablingTracingStampsNoExtensionAndNoSpans) {
  const TelemetryGuard guard;
  t::set_trace_enabled(false);
  auto backend = std::make_shared<fbf::storage::MemObjectBackend>();
  s::MatchService service(s::ServiceOptions{}, backend);
  service.index_strings(std::vector<std::string>{"alpha", "beta"});
  fbf::Client client = fbf::Client::in_process(service);
  t::Registry::global().clear_spans();
  ASSERT_TRUE(client.match_string("alpha").ok());
  EXPECT_TRUE(t::Registry::global().spans().empty());
}
