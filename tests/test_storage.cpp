// Contract tests for the pluggable storage backends: every behavior the
// durability layer leans on (atomic whole-object put, kNotFound gets,
// sorted prefix list, buffered append-until-sync, keyed fault injection)
// must hold identically for LocalDirBackend and MemObjectBackend — the
// same suite runs against both.
#include "storage/backend.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "storage/local_dir.hpp"
#include "storage/mem_object.hpp"
#include "util/fault.hpp"

namespace {

namespace st = fbf::storage;
namespace u = fbf::util;
namespace fs = std::filesystem;

/// Factory owning one LocalDirBackend's scratch directory.  The name
/// embeds the pid: ctest runs each test in its own process, so a
/// per-process counter alone collides when two LocalDir tests run
/// concurrently under -j (both would claim scratch dir 0 and
/// remove_all each other's files).
struct LocalDirFactory {
  LocalDirFactory() {
    static int counter = 0;
    dir = fs::path(::testing::TempDir()) /
          ("fbf_storage_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    fs::remove_all(dir);
  }
  ~LocalDirFactory() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  [[nodiscard]] std::unique_ptr<st::StorageBackend> make(
      u::FaultInjector* faults = nullptr) const {
    return std::make_unique<st::LocalDirBackend>(dir.string(), faults);
  }
  fs::path dir;
};

struct MemFactory {
  [[nodiscard]] std::unique_ptr<st::StorageBackend> make(
      u::FaultInjector* faults = nullptr) const {
    return std::make_unique<st::MemObjectBackend>(faults);
  }
};

template <typename Factory>
class BackendContract : public ::testing::Test {
 protected:
  Factory factory_;
};

using BackendTypes = ::testing::Types<LocalDirFactory, MemFactory>;
TYPED_TEST_SUITE(BackendContract, BackendTypes);

TYPED_TEST(BackendContract, PutGetExistsRemoveRoundTrip) {
  auto backend = this->factory_.make();
  const st::BlobRef ref{"chunk"};
  EXPECT_EQ(backend->get(ref).status().code(), u::StatusCode::kNotFound);
  EXPECT_FALSE(backend->exists(ref).value());

  ASSERT_TRUE(backend->put(ref, "first").ok());
  EXPECT_TRUE(backend->exists(ref).value());
  EXPECT_EQ(backend->get(ref).value(), "first");

  ASSERT_TRUE(backend->put(ref, "second, longer").ok());  // whole replace
  EXPECT_EQ(backend->get(ref).value(), "second, longer");

  ASSERT_TRUE(backend->remove(ref).ok());
  EXPECT_FALSE(backend->exists(ref).value());
  EXPECT_EQ(backend->get(ref).status().code(), u::StatusCode::kNotFound);
  ASSERT_TRUE(backend->remove(ref).ok());  // idempotent
  EXPECT_FALSE(backend->description().empty());
}

TYPED_TEST(BackendContract, ListFiltersByPrefixAndSorts) {
  auto backend = this->factory_.make();
  ASSERT_TRUE(backend->put(st::BlobRef{"delta-3-5.seg"}, "b").ok());
  ASSERT_TRUE(backend->put(st::BlobRef{"base-3.snap"}, "a").ok());
  ASSERT_TRUE(backend->put(st::BlobRef{"delta-1-3.seg"}, "c").ok());
  ASSERT_TRUE(backend->put(st::BlobRef{"journal"}, "d").ok());

  const auto deltas = backend->list("delta-");
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), 2u);
  EXPECT_EQ(deltas->at(0).name, "delta-1-3.seg");
  EXPECT_EQ(deltas->at(1).name, "delta-3-5.seg");

  const auto all = backend->list("");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 4u);
  EXPECT_TRUE(std::is_sorted(all->begin(), all->end()));

  EXPECT_TRUE(backend->list("nope-")->empty());
}

TYPED_TEST(BackendContract, AppendsBufferUntilSync) {
  auto backend = this->factory_.make();
  const st::BlobRef ref{"journal"};
  auto handle = backend->open_append(ref, /*truncate=*/false);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE((*handle)->append("frame-one|").ok());
  ASSERT_TRUE((*handle)->append("frame-two|").ok());
  EXPECT_EQ((*handle)->pending_bytes(), 20u);
  // Nothing is durable before sync: the blob reads empty/absent.
  const auto before = backend->get(ref);
  EXPECT_TRUE(!before.ok() || before.value().empty());

  ASSERT_TRUE((*handle)->sync().ok());
  EXPECT_EQ((*handle)->pending_bytes(), 0u);
  EXPECT_EQ(backend->get(ref).value(), "frame-one|frame-two|");

  // An abandoned handle with pending bytes IS the kill -9: the suffix
  // never reaches the blob.
  ASSERT_TRUE((*handle)->append("frame-three|").ok());
  handle->reset();
  EXPECT_EQ(backend->get(ref).value(), "frame-one|frame-two|");
}

TYPED_TEST(BackendContract, AppendContinuesAcrossHandlesAndTruncates) {
  auto backend = this->factory_.make();
  const st::BlobRef ref{"journal"};
  {
    auto handle = backend->open_append(ref, /*truncate=*/false);
    ASSERT_TRUE(handle.ok());
    ASSERT_TRUE((*handle)->append("aaa").ok());
    ASSERT_TRUE((*handle)->sync().ok());
  }
  {
    auto handle = backend->open_append(ref, /*truncate=*/false);
    ASSERT_TRUE(handle.ok());
    ASSERT_TRUE((*handle)->append("bbb").ok());
    ASSERT_TRUE((*handle)->sync().ok());
  }
  EXPECT_EQ(backend->get(ref).value(), "aaabbb");
  {
    auto handle = backend->open_append(ref, /*truncate=*/true);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(backend->get(ref).value(), "");
    ASSERT_TRUE((*handle)->append("ccc").ok());
    ASSERT_TRUE((*handle)->sync().ok());
  }
  EXPECT_EQ(backend->get(ref).value(), "ccc");
}

TYPED_TEST(BackendContract, InjectedPutFailureLeavesTheOldObject) {
  u::FaultConfig config;
  config.seed = 7;
  config.put_fail_rate = 1.0;
  u::FaultInjector faults(config);
  auto backend = this->factory_.make();
  const st::BlobRef ref{"victim"};
  ASSERT_TRUE(backend->put(ref, "intact").ok());

  backend->set_faults(&faults);
  const auto failed = backend->put(ref, "replacement");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), u::StatusCode::kIoError);
  EXPECT_GT(faults.counters().put_failures, 0u);

  backend->set_faults(nullptr);  // detaching restores clean behavior
  EXPECT_EQ(backend->get(ref).value(), "intact");
  ASSERT_TRUE(backend->put(ref, "replacement").ok());
  EXPECT_EQ(backend->get(ref).value(), "replacement");
}

TYPED_TEST(BackendContract, InjectedLostObjectAcksThenVanishes) {
  u::FaultConfig config;
  config.seed = 9;
  config.lost_object_rate = 1.0;
  u::FaultInjector faults(config);
  auto backend = this->factory_.make(&faults);
  const st::BlobRef ref{"ghost"};
  ASSERT_TRUE(backend->put(ref, "acked").ok());  // the put "succeeds"...
  EXPECT_FALSE(backend->exists(ref).value());    // ...the object is gone
  EXPECT_GT(faults.counters().lost_objects, 0u);
}

TYPED_TEST(BackendContract, InjectedTornPutLeavesAnObservablePrefix) {
  u::FaultConfig config;
  config.seed = 11;
  config.torn_write_rate = 1.0;
  u::FaultInjector faults(config);
  auto backend = this->factory_.make(&faults);
  const st::BlobRef ref{"torn"};
  const std::string payload = "0123456789abcdef0123456789abcdef";
  const auto torn = backend->put(ref, payload);
  EXPECT_FALSE(torn.ok());
  EXPECT_EQ(torn.code(), u::StatusCode::kUnavailable);
  EXPECT_GT(faults.counters().torn_writes, 0u);

  backend->set_faults(nullptr);
  const auto landed = backend->get(ref);
  ASSERT_TRUE(landed.ok());  // the partial object IS observable
  EXPECT_LT(landed.value().size(), payload.size());
  EXPECT_EQ(landed.value(), payload.substr(0, landed.value().size()));
}

TYPED_TEST(BackendContract, InjectedTornSyncKillsTheHandle) {
  u::FaultConfig config;
  config.seed = 13;
  config.torn_write_rate = 1.0;
  u::FaultInjector faults(config);
  auto backend = this->factory_.make(&faults);
  const st::BlobRef ref{"journal"};
  auto handle = backend->open_append(ref, /*truncate=*/false);
  ASSERT_TRUE(handle.ok());
  const std::string frame(64, 'x');
  ASSERT_TRUE((*handle)->append(frame).ok());
  const auto synced = (*handle)->sync();
  EXPECT_FALSE(synced.ok());
  EXPECT_EQ(synced.code(), u::StatusCode::kUnavailable);
  // The modeled process died mid-sync: the handle refuses further use.
  EXPECT_FALSE((*handle)->append("more").ok());
  EXPECT_FALSE((*handle)->sync().ok());

  backend->set_faults(nullptr);
  const auto landed = backend->get(ref);
  ASSERT_TRUE(landed.ok());
  EXPECT_LT(landed.value().size(), frame.size());  // a strict prefix landed
}

TYPED_TEST(BackendContract, SlowBackendOpsAreTallied) {
  u::FaultConfig config;
  config.seed = 15;
  config.slow_backend_rate = 1.0;  // slow_backend_ms stays 0: tally only
  u::FaultInjector faults(config);
  auto backend = this->factory_.make(&faults);
  ASSERT_TRUE(backend->put(st::BlobRef{"a"}, "x").ok());
  EXPECT_GT(faults.counters().slow_ops, 0u);
}

TEST(LocalDirBackend, BlobsAreFilesAndLegacyFilesAreBlobs) {
  LocalDirFactory scratch;
  auto backend = scratch.make();
  ASSERT_TRUE(backend->put(st::BlobRef{"store.snap"}, "snapshot-bytes").ok());
  // The blob is exactly the file the pre-storage layer would have written.
  EXPECT_EQ(fs::file_size(scratch.dir / "store.snap"), 14u);
  // And a file dropped in by an old writer is readable as a blob.
  std::ofstream(scratch.dir / "old.journal", std::ios::binary) << "legacy";
  EXPECT_EQ(backend->get(st::BlobRef{"old.journal"}).value(), "legacy");
}

TEST(LocalDirBackend, NoTmpFilesSurviveAPut) {
  LocalDirFactory scratch;
  auto backend = scratch.make();
  ASSERT_TRUE(backend->put(st::BlobRef{"a"}, "x").ok());
  ASSERT_TRUE(backend->put(st::BlobRef{"b"}, "y").ok());
  for (const auto& entry : fs::directory_iterator(scratch.dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  EXPECT_EQ(backend->list("").value().size(), 2u);
}

TEST(MemObjectBackend, PokeAndObjectCountSupportByteSurgery) {
  st::MemObjectBackend backend;
  ASSERT_TRUE(backend.put(st::BlobRef{"blob"}, "original").ok());
  EXPECT_EQ(backend.object_count(), 1u);
  backend.poke(st::BlobRef{"blob"}, "surgery");
  EXPECT_EQ(backend.get(st::BlobRef{"blob"}).value(), "surgery");
}

}  // namespace
