#include "metrics/levenshtein.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "util/rng.hpp"

namespace {

using fbf::metrics::levenshtein_distance;
using fbf::metrics::levenshtein_within;

TEST(Levenshtein, ClassicExamples) {
  EXPECT_EQ(levenshtein_distance("SATURDAY", "SUNDAY"), 3);  // paper §2.1
  EXPECT_EQ(levenshtein_distance("KITTEN", "SITTING"), 3);
  EXPECT_EQ(levenshtein_distance("FLAW", "LAWN"), 2);
}

TEST(Levenshtein, EmptyStrings) {
  EXPECT_EQ(levenshtein_distance("", ""), 0);
  EXPECT_EQ(levenshtein_distance("ABC", ""), 3);
  EXPECT_EQ(levenshtein_distance("", "ABCD"), 4);
}

TEST(Levenshtein, IdenticalStringsZero) {
  EXPECT_EQ(levenshtein_distance("SMITH", "SMITH"), 0);
}

TEST(Levenshtein, SingleEdits) {
  EXPECT_EQ(levenshtein_distance("SMITH", "SMYTH"), 1);   // substitution
  EXPECT_EQ(levenshtein_distance("SMITH", "SMITHS"), 1);  // insertion
  EXPECT_EQ(levenshtein_distance("SMITH", "SMIH"), 1);    // deletion
  EXPECT_EQ(levenshtein_distance("SMITH", "SMIHT"), 2);   // transposition = 2
}

class LevenshteinProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static std::string random_string(fbf::util::Rng& rng, std::size_t max_len) {
    const auto len = static_cast<std::size_t>(rng.below(max_len + 1));
    std::string s(len, '\0');
    for (auto& ch : s) {
      ch = static_cast<char>('A' + rng.below(6));  // small alphabet: collisions
    }
    return s;
  }
};

TEST_P(LevenshteinProperties, SymmetryAndIdentity) {
  fbf::util::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const std::string s = random_string(rng, 12);
    const std::string t = random_string(rng, 12);
    EXPECT_EQ(levenshtein_distance(s, t), levenshtein_distance(t, s));
    EXPECT_EQ(levenshtein_distance(s, s), 0);
  }
}

TEST_P(LevenshteinProperties, TriangleInequality) {
  fbf::util::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 300; ++i) {
    const std::string a = random_string(rng, 10);
    const std::string b = random_string(rng, 10);
    const std::string c = random_string(rng, 10);
    EXPECT_LE(levenshtein_distance(a, c),
              levenshtein_distance(a, b) + levenshtein_distance(b, c));
  }
}

TEST_P(LevenshteinProperties, BoundedByLongerLength) {
  fbf::util::Rng rng(GetParam() + 2000);
  for (int i = 0; i < 500; ++i) {
    const std::string s = random_string(rng, 12);
    const std::string t = random_string(rng, 12);
    const int d = levenshtein_distance(s, t);
    EXPECT_GE(d, static_cast<int>(std::max(s.size(), t.size()) -
                                  std::min(s.size(), t.size())));
    EXPECT_LE(d, static_cast<int>(std::max(s.size(), t.size())));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinProperties,
                         ::testing::Values(1, 2, 3, 4));

TEST(LevenshteinWithin, AgreesWithDistance) {
  EXPECT_TRUE(levenshtein_within("SMITH", "SMYTH", 1));
  EXPECT_FALSE(levenshtein_within("SMITH", "JONES", 3));
}

}  // namespace
