#include "util/status.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace {

using fbf::util::Result;
using fbf::util::Status;
using fbf::util::StatusCode;

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::data_loss("checksum mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "checksum mismatch");
  EXPECT_EQ(s.to_string(), "data-loss: checksum mismatch");
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::io_error("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::invalid_argument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::failed_precondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(Status, EveryCodeHasAName) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kDataLoss, StatusCode::kFailedPrecondition,
        StatusCode::kUnavailable, StatusCode::kIoError}) {
    EXPECT_STRNE(fbf::util::status_code_name(code), "?");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  const Result<int> r(Status::io_error("disk gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(r.status().message(), "disk gone");
}

TEST(Result, SupportsMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
  const std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

TEST(Result, ArrowAccessesMembers) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
