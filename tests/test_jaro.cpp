#include "metrics/jaro.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace {

using fbf::metrics::jaro;
using fbf::metrics::jaro_winkler;

TEST(Jaro, PaperWorkedExample) {
  // §2.3 computes jaro("SMITH", "SMIHT") = 0.967 by subtracting r/2 with
  // r = 1 — i.e. halving the transposition penalty twice.  The standard
  // definition (Jaro 1989, and every reference implementation) subtracts
  // t = (#out-of-order matches)/2 = 1 whole, giving (1 + 1 + 4/5)/3 =
  // 0.9333.  We implement the standard metric; the canonical MARTHA /
  // DIXON / DWAYNE vectors below pin it down.
  EXPECT_NEAR(jaro("SMITH", "SMIHT"), 0.9333, 5e-4);
}

TEST(Jaro, PaperDisjointExample) {
  // §2.3: SMITH vs JONES = 0.0 (the S's are more than one position apart —
  // window n = floor(5/2) - 1 = 1).
  EXPECT_DOUBLE_EQ(jaro("SMITH", "JONES"), 0.0);
}

TEST(Jaro, IdenticalStringsAreOne) {
  EXPECT_DOUBLE_EQ(jaro("MARTHA", "MARTHA"), 1.0);
  EXPECT_DOUBLE_EQ(jaro("A", "A"), 1.0);
}

TEST(Jaro, ClassicReferencePairs) {
  // Winkler's canonical examples.
  EXPECT_NEAR(jaro("MARTHA", "MARHTA"), 0.9444, 5e-4);
  EXPECT_NEAR(jaro("DIXON", "DICKSONX"), 0.7667, 5e-4);
  EXPECT_NEAR(jaro("DWAYNE", "DUANE"), 0.8222, 5e-4);
}

TEST(Jaro, EmptyStringConventions) {
  EXPECT_DOUBLE_EQ(jaro("", ""), 1.0);
  EXPECT_DOUBLE_EQ(jaro("ABC", ""), 0.0);
  EXPECT_DOUBLE_EQ(jaro("", "ABC"), 0.0);
}

TEST(Jaro, NoCommonCharactersIsZero) {
  EXPECT_DOUBLE_EQ(jaro("AAA", "BBB"), 0.0);
}

TEST(JaroWinkler, PaperWorkedExample) {
  // §2.4's 0.977 builds on the paper's non-standard 0.967 Jaro (see
  // above).  Standard: 0.9333 + 3*0.1*(1 - 0.9333) = 0.9533.
  EXPECT_NEAR(jaro_winkler("SMITH", "SMIHT"), 0.9533, 1e-3);
}

TEST(JaroWinkler, ClassicReferencePairs) {
  EXPECT_NEAR(jaro_winkler("MARTHA", "MARHTA"), 0.9611, 5e-4);
  EXPECT_NEAR(jaro_winkler("DIXON", "DICKSONX"), 0.8133, 5e-4);
  EXPECT_NEAR(jaro_winkler("DWAYNE", "DUANE"), 0.8400, 5e-4);
}

TEST(JaroWinkler, PrefixCappedAtFour) {
  // Identical 6-char prefix, difference at the end: only 4 prefix chars
  // may boost.
  const double base = jaro("PREFIXA", "PREFIXB");
  EXPECT_NEAR(jaro_winkler("PREFIXA", "PREFIXB"), base + 4 * 0.1 * (1 - base),
              1e-12);
}

TEST(JaroWinkler, NeverBelowJaro) {
  fbf::util::Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    std::string s(1 + rng.below(10), '\0');
    std::string t(1 + rng.below(10), '\0');
    for (auto& ch : s) ch = static_cast<char>('A' + rng.below(6));
    for (auto& ch : t) ch = static_cast<char>('A' + rng.below(6));
    EXPECT_GE(jaro_winkler(s, t) + 1e-12, jaro(s, t)) << s << " " << t;
  }
}

TEST(JaroProperties, SymmetricAndBounded) {
  fbf::util::Rng rng(78);
  for (int i = 0; i < 1000; ++i) {
    std::string s(rng.below(9), '\0');
    std::string t(rng.below(9), '\0');
    for (auto& ch : s) ch = static_cast<char>('A' + rng.below(5));
    for (auto& ch : t) ch = static_cast<char>('A' + rng.below(5));
    const double st = jaro(s, t);
    EXPECT_DOUBLE_EQ(st, jaro(t, s)) << s << " " << t;
    EXPECT_GE(st, 0.0);
    EXPECT_LE(st, 1.0);
  }
}

}  // namespace
