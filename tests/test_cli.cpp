#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace {

using fbf::util::CliArgs;

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> args = {"prog"};
  args.insert(args.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(args.size()), args.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const auto args = parse({"--n", "5000"});
  EXPECT_EQ(args.get_int("n", 0), 5000);
}

TEST(Cli, EqualsSeparatedValue) {
  const auto args = parse({"--seed=42"});
  EXPECT_EQ(args.get_int("seed", 0), 42);
}

TEST(Cli, DefaultWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get_int("n", 1000), 1000);
  EXPECT_EQ(args.get_string("out", "table"), "table");
  EXPECT_DOUBLE_EQ(args.get_double("thr", 0.8), 0.8);
  EXPECT_FALSE(args.get_bool("full"));
}

TEST(Cli, BareBooleanFlag) {
  const auto args = parse({"--full"});
  EXPECT_TRUE(args.get_bool("full"));
  EXPECT_TRUE(args.has("full"));
}

TEST(Cli, ExplicitBooleanValues) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x"));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x"));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x"));
}

TEST(Cli, DoubleParsing) {
  const auto args = parse({"--thr", "0.75"});
  EXPECT_DOUBLE_EQ(args.get_double("thr", 0.0), 0.75);
}

TEST(Cli, PositionalArguments) {
  const auto args = parse({"input.txt", "--n", "10", "more"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "more");
}

TEST(Cli, FlagFollowedByFlagHasEmptyValue) {
  const auto args = parse({"--csv", "--n", "7"});
  EXPECT_TRUE(args.get_bool("csv"));
  EXPECT_EQ(args.get_int("n", 0), 7);
}

TEST(Cli, UnknownFlagsReported) {
  const auto args = parse({"--typo", "3", "--n", "5"});
  (void)args.get_int("n", 0);
  const auto unknown = args.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Cli, QueriedFlagsNotReportedUnknown) {
  const auto args = parse({"--n", "5"});
  (void)args.get_int("n", 0);
  EXPECT_TRUE(args.unknown_flags().empty());
}

}  // namespace
