// Serve-layer properties (DESIGN.md §15): the coalescing contract
// (batched Q>1 byte-identical to sequential Q=1), overload/backpressure,
// kill-mid-ingest durability, and quarantine triage over the protocol.
#include <atomic>
#include <barrier>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/corpus.hpp"
#include "datagen/dataset.hpp"
#include "linkage/person_gen.hpp"
#include "net/tcp.hpp"
#include "serve/client.hpp"
#include "serve/coalescer.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "storage/mem_object.hpp"
#include "util/rng.hpp"

namespace c = fbf::core;
namespace d = fbf::datagen;
namespace l = fbf::linkage;
namespace s = fbf::serve;
namespace t = fbf::telemetry;
namespace u = fbf::util;

namespace {

void expect_result_eq(const c::CorpusResult& got, const c::CorpusResult& want,
                      const std::string& label) {
  EXPECT_EQ(got.matches, want.matches) << label;
  EXPECT_EQ(got.counters.candidates_generated,
            want.counters.candidates_generated)
      << label;
  EXPECT_EQ(got.counters.length_pass, want.counters.length_pass) << label;
  EXPECT_EQ(got.counters.fbf_evaluated, want.counters.fbf_evaluated) << label;
  EXPECT_EQ(got.counters.fbf_pass, want.counters.fbf_pass) << label;
  EXPECT_EQ(got.counters.verify_calls, want.counters.verify_calls) << label;
}

d::PairedDataset make_dataset(std::size_t n, std::uint64_t seed) {
  auto built = d::build_paired_dataset(d::FieldKind::kLastName, n, seed);
  EXPECT_TRUE(built.ok());
  return std::move(built.value());
}

}  // namespace

// --- MatchCorpus: query_batch == sequential query ----------------------

TEST(MatchCorpus, BatchedIdenticalToSequentialAcrossMethodsAndSizes) {
  const d::PairedDataset dataset = make_dataset(700, 11);
  for (const c::Method method :
       {c::Method::kFpdl, c::Method::kFbfOnly, c::Method::kLfpdl}) {
    c::QueryOptions options;
    options.method = method;
    const c::MatchCorpus corpus(options, dataset.clean);
    // Q spanning: lone query, partial block, full block, several blocks.
    for (const std::size_t q : {std::size_t{1}, std::size_t{3},
                                std::size_t{8}, std::size_t{21}}) {
      const std::span<const std::string> queries(dataset.error.data(), q);
      const std::vector<c::CorpusResult> batched = corpus.query_batch(queries);
      ASSERT_EQ(batched.size(), q);
      for (std::size_t i = 0; i < q; ++i) {
        expect_result_eq(batched[i], corpus.query(queries[i]),
                         "method=" + std::to_string(static_cast<int>(method)) +
                             " q=" + std::to_string(q) +
                             " i=" + std::to_string(i));
      }
    }
  }
}

TEST(MatchCorpus, BatchedIdenticalInPerPairFallbackMode) {
  const d::PairedDataset dataset = make_dataset(300, 12);
  c::QueryOptions options;
  options.exec.use_pipeline = false;  // force the per-pair fallback
  const c::MatchCorpus corpus(options, dataset.clean);
  const std::span<const std::string> queries(dataset.error.data(), 13);
  const std::vector<c::CorpusResult> batched = corpus.query_batch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_result_eq(batched[i], corpus.query(queries[i]),
                     "fallback i=" + std::to_string(i));
  }
}

TEST(MatchCorpus, BatchedIdenticalAcrossExecThreads) {
  // exec-policy invariance (exec_policy.hpp): fanning a batch across a
  // worker pool partitions the queries but cannot change any query's
  // matches or counters — the parallel batch must equal the serial
  // corpus query for query, bit for bit.
  const d::PairedDataset dataset = make_dataset(600, 14);
  c::QueryOptions serial;
  const c::MatchCorpus reference(serial, dataset.clean);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    c::QueryOptions options;
    options.exec.threads = threads;
    const c::MatchCorpus corpus(options, dataset.clean);
    for (const std::size_t q : {std::size_t{1}, std::size_t{5},
                                std::size_t{8}, std::size_t{26}}) {
      const std::span<const std::string> queries(dataset.error.data(), q);
      const std::vector<c::CorpusResult> batched = corpus.query_batch(queries);
      ASSERT_EQ(batched.size(), q);
      for (std::size_t i = 0; i < q; ++i) {
        expect_result_eq(batched[i], reference.query(queries[i]),
                         "threads=" + std::to_string(threads) +
                             " q=" + std::to_string(q) +
                             " i=" + std::to_string(i));
      }
    }
  }
}

TEST(MatchCorpus, FindsInjectedErrorNeighbor) {
  const d::PairedDataset dataset = make_dataset(400, 13);
  const c::MatchCorpus corpus(c::QueryOptions{}, dataset.clean);
  // error[i] is clean[i] + one edit: with k=1 the true neighbor must
  // survive filter + verify.
  std::size_t found = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    const c::CorpusResult result = corpus.query(dataset.error[i]);
    for (const std::uint32_t id : result.matches) {
      found += id == i ? 1u : 0u;
    }
  }
  EXPECT_EQ(found, 50u);
}

// --- BatchCoalescer ----------------------------------------------------

TEST(Coalescer, ConcurrentSubmissionsMatchSoloQueries) {
  const d::PairedDataset dataset = make_dataset(500, 21);
  const c::MatchCorpus corpus(c::QueryOptions{}, dataset.clean);
  s::CoalescerOptions options;
  options.max_linger_ms = 0.5;
  options.max_inflight = 1024;
  s::BatchCoalescer coalescer(
      [&corpus](std::span<const std::string> queries) {
        return corpus.query_batch(queries);
      },
      options);

  // Fuzzed arrival order: 6 threads x 24 queries with per-thread jitter.
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 24;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kThreads);
  std::barrier start(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 jitter(static_cast<unsigned>(t) * 7919u + 1u);
      start.arrive_and_wait();
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::string& query =
            dataset.error[(t * kPerThread + i) % dataset.error.size()];
        if (jitter() % 3 == 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(jitter() % 400));
        }
        u::Result<c::CorpusResult> got = coalescer.submit(query);
        if (!got.ok()) {
          failures[t] = got.status().to_string();
          return;
        }
        const c::CorpusResult want = corpus.query(query);
        if (got->matches != want.matches ||
            got->counters.candidates_generated !=
                want.counters.candidates_generated ||
            got->counters.fbf_pass != want.counters.fbf_pass ||
            got->counters.verify_calls != want.counters.verify_calls) {
          failures[t] = "batched result diverged for query " + query;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
  const s::CoalescerStats stats = coalescer.stats();
  EXPECT_EQ(stats.queries, kThreads * kPerThread);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.queries, stats.batches);  // never more batches than queries
  EXPECT_LE(stats.max_batch, c::kMaxBlockQueries);
}

TEST(Coalescer, OverloadFailsFastWithResourceExhausted) {
  // A deliberately slow batch function with a tiny admission bound: the
  // flood must split into served and kResourceExhausted, nothing lost.
  s::CoalescerOptions options;
  options.max_batch = 1;
  options.max_linger_ms = 0.0;
  options.max_inflight = 2;
  s::BatchCoalescer coalescer(
      [](std::span<const std::string> queries) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return std::vector<c::CorpusResult>(queries.size());
      },
      options);
  constexpr std::size_t kThreads = 12;
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> other{0};
  std::vector<std::thread> threads;
  std::barrier start(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      start.arrive_and_wait();
      const u::Result<c::CorpusResult> got = coalescer.submit("q");
      if (got.ok()) {
        ++served;
      } else if (got.status().code() == u::StatusCode::kResourceExhausted) {
        ++rejected;
      } else {
        ++other;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(served + rejected, kThreads);
  EXPECT_EQ(other, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_GT(rejected, 0u);  // 12 near-simultaneous vs bound 2 must reject
  EXPECT_EQ(coalescer.stats().rejected, rejected);
}

// --- overload over the wire --------------------------------------------

TEST(ServeOverload, ResourceExhaustedSurvivesTheTcpRoundTrip) {
  // kResourceExhausted maps to a kOverloaded frame server-side and back
  // to the same code client-side, so remote callers can tell "retry
  // later" from "request broken" — and the client never blind-retries it.
  std::atomic<int> calls{0};
  fbf::net::ShardServer server(
      [&calls](const fbf::net::FrameContext&,
               std::string_view) -> u::Result<std::string> {
        ++calls;
        return u::Status::resource_exhausted("service at capacity");
      });
  fbf::net::TcpTransportOptions transport_options;
  transport_options.port = server.port();
  fbf::Client client(
      std::make_shared<fbf::net::TcpTransport>(transport_options));
  const u::Result<fbf::MatchResponse> reply = client.match_string("abc");
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), u::StatusCode::kResourceExhausted);
  EXPECT_EQ(calls.load(), 1) << "overload must not be retried";
}

TEST(ServeOverload, ServiceInflightBudgetRejectsFloods) {
  auto backend = std::make_shared<fbf::storage::MemObjectBackend>();
  s::ServiceOptions options;
  options.max_inflight = 2;
  options.coalescer.max_inflight = 2;
  s::MatchService service(options, backend);
  const std::vector<std::string> corpus{"alpha", "beta", "gamma"};
  service.index_strings(corpus);

  constexpr std::size_t kThreads = 16;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::vector<std::thread> threads;
  std::barrier start(kThreads);
  fbf::MatchRequest request;
  request.text = "alpha";
  const std::string payload = s::encode_match_request(request);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      fbf::net::FrameContext ctx;
      ctx.type = fbf::net::FrameType::kMatchQuery;
      start.arrive_and_wait();
      for (int i = 0; i < 50; ++i) {
        const u::Result<std::string> reply = service.handle(ctx, payload);
        if (reply.ok()) {
          ++ok;
        } else {
          ASSERT_EQ(reply.status().code(),
                    u::StatusCode::kResourceExhausted);
          ++overloaded;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_GT(ok.load(), 0u);
  EXPECT_GT(overloaded.load(), 0u)
      << "16 threads against an in-flight budget of 2 must trip admission";
  EXPECT_EQ(service.metrics_snapshot().counter("serve.overloaded"),
            overloaded.load());
}

// --- durability: kill mid-ingest ---------------------------------------

TEST(ServeDurability, AcknowledgedIngestsSurviveAKill) {
  auto backend = std::make_shared<fbf::storage::MemObjectBackend>();
  s::ServiceOptions options;
  u::Rng rng(31);
  const std::vector<l::PersonRecord> people = l::generate_people(30, rng);
  std::uint64_t acked_records = 0;
  std::uint64_t last_seq = 0;
  {
    s::MatchService service(options, backend);
    ASSERT_TRUE(service.recover().ok());
    fbf::Client client = fbf::Client::in_process(service);
    for (std::size_t batch = 0; batch < 3; ++batch) {
      const std::span<const l::PersonRecord> slice(people.data() + batch * 10,
                                                   10);
      const u::Result<s::IngestReply> reply = client.ingest(slice);
      ASSERT_TRUE(reply.ok()) << reply.status().to_string();
      acked_records += reply->accepted;
      last_seq = reply->seq;
    }
    service.simulate_crash();  // kill -9: no destructor-time journal sync
  }
  s::MatchService recovered(options, backend);
  const u::Result<l::RecoveryReport> report = recovered.recover();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(recovered.durable_store().store().size(), acked_records)
      << "every acknowledged write must survive the kill";
  EXPECT_EQ(recovered.durable_store().batches_ingested(), last_seq);
  // The recovered store answers probes over the recovered records.
  fbf::Client client = fbf::Client::in_process(recovered);
  const u::Result<fbf::MatchResponse> probe = client.match_record(people[0]);
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->matches.empty());
}

// --- quarantine triage over the protocol -------------------------------

TEST(ServeQuarantine, DrainRepairsDoubledDelimitersAndKeepsTheRest) {
  auto backend = std::make_shared<fbf::storage::MemObjectBackend>();
  s::MatchService service(s::ServiceOptions{}, backend);
  fbf::Client client = fbf::Client::in_process(service);

  // One clean row, one repairable (doubled delimiter -> shifted cells,
  // empty id), one genuinely bad (short row): ingest commits the clean
  // row and quarantines the other two intact.
  const std::string csv =
      "1,ann,abel,12 oak st,5550001111,f,123456789,01021990\n"
      ",2,bob,baker,34 elm st,5550002222,m,987654321,03041985\n"
      "3,carol,chase\n";
  const u::Result<s::IngestReply> ingest = client.ingest_csv(csv);
  ASSERT_TRUE(ingest.ok()) << ingest.status().to_string();
  EXPECT_EQ(ingest->accepted, 1u);
  EXPECT_EQ(ingest->quarantined, 2u);
  EXPECT_EQ(ingest->store_size, 1u);
  EXPECT_EQ(service.quarantine_size(), 2u);

  const u::Result<s::DrainReply> drain = client.drain_quarantine();
  ASSERT_TRUE(drain.ok()) << drain.status().to_string();
  EXPECT_EQ(drain->repaired, 1u);
  EXPECT_EQ(drain->doubled_delimiter, 1u);
  EXPECT_EQ(drain->shifted_column, 0u);
  EXPECT_EQ(drain->still_bad, 1u);
  EXPECT_EQ(service.quarantine_size(), 1u);
  EXPECT_EQ(service.durable_store().store().size(), 2u);

  // Draining again re-triages only the leftover; nothing double-ingests.
  const u::Result<s::DrainReply> again = client.drain_quarantine();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->repaired, 0u);
  EXPECT_EQ(again->still_bad, 1u);
  EXPECT_EQ(service.durable_store().store().size(), 2u);

  const u::Result<t::MetricsSnapshot> metrics = client.metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->gauge("serve.quarantined"), 1);
  EXPECT_EQ(metrics->counter("serve.ingests"), 1u);
  EXPECT_EQ(metrics->counter("quarantine.repaired.doubled_delimiter"), 1u);
  EXPECT_EQ(metrics->counter("quarantine.repaired.shifted_column"), 0u);
}

TEST(ServeQuarantine, DrainRepairsShiftedColumnsWhenTheSplitIsUnambiguous) {
  auto backend = std::make_shared<fbf::storage::MemObjectBackend>();
  s::MatchService service(s::ServiceOptions{}, backend);
  fbf::Client client = fbf::Client::in_process(service);

  // A dropped delimiter fused gender+ssn ("m,123456780" -> "m123456780"):
  // only one (cell, split) candidate satisfies the format-constrained
  // shapes, so the repair is decidable.  The fused first+last name row is
  // free text — many plausible splits — and must stay parked.
  const std::string csv =
      "10,carl,cole,56 pine st,5550003333,m123456780,05061980\n"
      "11,danadoe,78 fir st,5550004444,f,111223333,07081975\n";
  const u::Result<s::IngestReply> ingest = client.ingest_csv(csv);
  ASSERT_TRUE(ingest.ok()) << ingest.status().to_string();
  EXPECT_EQ(ingest->accepted, 0u);
  EXPECT_EQ(ingest->quarantined, 2u);

  const u::Result<s::DrainReply> drain = client.drain_quarantine();
  ASSERT_TRUE(drain.ok()) << drain.status().to_string();
  EXPECT_EQ(drain->repaired, 1u);
  EXPECT_EQ(drain->doubled_delimiter, 0u);
  EXPECT_EQ(drain->shifted_column, 1u);
  EXPECT_EQ(drain->still_bad, 1u)
      << "a free-text merge admits many splits and must not be guessed";
  EXPECT_EQ(service.durable_store().store().size(), 1u);

  const u::Result<t::MetricsSnapshot> metrics = client.metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->counter("quarantine.repaired.shifted_column"), 1u);
}

// --- protocol codecs ---------------------------------------------------

TEST(ServeProtocol, RequestAndReplyCodecsRoundTrip) {
  fbf::MatchRequest match;
  match.kind = fbf::MatchRequest::Kind::kString;
  match.text = "kowalski";
  match.max_matches = 3;
  const u::Result<fbf::MatchRequest> match_rt =
      s::decode_match_request(s::encode_match_request(match));
  ASSERT_TRUE(match_rt.ok());
  EXPECT_EQ(match_rt->text, match.text);
  EXPECT_EQ(match_rt->max_matches, 3u);

  fbf::MatchResponse response;
  response.matches.push_back({7, 2, 0.5, "value"});
  response.counters.fbf_pass = 9;
  response.comparisons = 100;
  const u::Result<fbf::MatchResponse> response_rt =
      s::decode_match_response(s::encode_match_response(response));
  ASSERT_TRUE(response_rt.ok());
  EXPECT_EQ(s::match_response_fingerprint(*response_rt),
            s::match_response_fingerprint(response));

  s::IngestRequest ingest;
  ingest.format = s::IngestRequest::Format::kCsv;
  ingest.csv = "1,a,b,c,d,e,f,g\n";
  const u::Result<s::IngestRequest> ingest_rt =
      s::decode_ingest_request(s::encode_ingest_request(ingest));
  ASSERT_TRUE(ingest_rt.ok());
  EXPECT_EQ(ingest_rt->csv, ingest.csv);

  s::AdminReply admin;
  admin.command = s::AdminCommand::kStats;
  admin.stats.kernel = "tile-avx2";
  admin.stats.p999_ms = 1.25;
  const u::Result<s::AdminReply> admin_rt =
      s::decode_admin_reply(s::encode_admin_reply(admin));
  ASSERT_TRUE(admin_rt.ok());
  EXPECT_EQ(admin_rt->stats.kernel, "tile-avx2");
  EXPECT_EQ(admin_rt->stats.p999_ms, 1.25);
}

TEST(ServeProtocol, TruncatedPayloadsDecodeToInvalidArgument) {
  fbf::MatchRequest match;
  match.text = "abcdef";
  const std::string encoded = s::encode_match_request(match);
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                encoded.size() - 1}) {
    const u::Result<fbf::MatchRequest> decoded =
        s::decode_match_request(std::string_view(encoded).substr(0, cut));
    EXPECT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), u::StatusCode::kInvalidArgument);
  }
  // Trailing garbage is rejected too.
  const u::Result<fbf::MatchRequest> padded =
      s::decode_match_request(encoded + "x");
  EXPECT_FALSE(padded.ok());
}
