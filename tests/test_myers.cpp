#include "metrics/myers.hpp"

#include <gtest/gtest.h>

#include <string>

#include "metrics/levenshtein.hpp"
#include "util/rng.hpp"

namespace {

using fbf::metrics::levenshtein_distance;
using fbf::metrics::myers_distance;
using fbf::metrics::myers_within;

TEST(Myers, KnownValues) {
  EXPECT_EQ(myers_distance("KITTEN", "SITTING"), 3);
  EXPECT_EQ(myers_distance("SATURDAY", "SUNDAY"), 3);
  EXPECT_EQ(myers_distance("SMITH", "SMITH"), 0);
}

TEST(Myers, EmptyStrings) {
  EXPECT_EQ(myers_distance("", ""), 0);
  EXPECT_EQ(myers_distance("ABC", ""), 3);
  EXPECT_EQ(myers_distance("", "ABCD"), 4);
}

TEST(Myers, MatchesDpOnRandomPairs) {
  fbf::util::Rng rng(4242);
  for (int i = 0; i < 3000; ++i) {
    std::string s(rng.below(16), '\0');
    std::string t(rng.below(16), '\0');
    for (auto& ch : s) ch = static_cast<char>('A' + rng.below(5));
    for (auto& ch : t) ch = static_cast<char>('A' + rng.below(5));
    EXPECT_EQ(myers_distance(s, t), levenshtein_distance(s, t))
        << "s=" << s << " t=" << t;
  }
}

TEST(Myers, ExactlySixtyFourCharPattern) {
  const std::string s(64, 'A');
  std::string t = s;
  t[10] = 'B';
  t[63] = 'C';
  EXPECT_EQ(myers_distance(s, t), 2);
  EXPECT_EQ(myers_distance(s, s), 0);
}

TEST(Myers, FallsBackBeyondSixtyFour) {
  const std::string s(70, 'A');
  std::string t = s + "BB";
  EXPECT_EQ(myers_distance(s, t), 2);
}

TEST(Myers, WithinThreshold) {
  EXPECT_TRUE(myers_within("SMITH", "SMYTH", 1));
  EXPECT_FALSE(myers_within("SMITH", "SMIHT", 1));  // plain Lev: transposition = 2
  EXPECT_TRUE(myers_within("SMITH", "SMIHT", 2));
}

}  // namespace
