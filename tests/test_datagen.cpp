#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <unordered_set>

#include "datagen/address.hpp"
#include "datagen/dates.hpp"
#include "datagen/errors.hpp"
#include "datagen/name_pools.hpp"
#include "datagen/names.hpp"
#include "datagen/phone.hpp"
#include "datagen/ssn.hpp"
#include "metrics/damerau.hpp"
#include "util/ascii.hpp"
#include "util/rng.hpp"

namespace {

namespace dg = fbf::datagen;
using fbf::util::Rng;

// ---------------------------------------------------------------- names --

TEST(NamePools, NonEmptyAndUpperCase) {
  EXPECT_GT(dg::male_first_names().size(), 100u);
  EXPECT_GT(dg::female_first_names().size(), 100u);
  EXPECT_GT(dg::last_names().size(), 400u);
  for (const auto name : dg::last_names()) {
    for (const char ch : name) {
      EXPECT_TRUE(fbf::util::is_ascii_upper(ch) || ch == ' ')
          << name;
    }
  }
}

TEST(Names, PoolReachesRequestedSizeUnique) {
  Rng rng(1);
  const auto pool = dg::build_last_name_pool(5000, rng);
  EXPECT_EQ(pool.size(), 5000u);
  const std::unordered_set<std::string> unique(pool.begin(), pool.end());
  EXPECT_EQ(unique.size(), pool.size());
}

TEST(Names, LastNameLengthsWithinPaperBounds) {
  Rng rng(2);
  const auto pool = dg::build_last_name_pool(20000, rng);
  double total = 0;
  for (const auto& name : pool) {
    EXPECT_GE(name.size(), 2u) << name;
    EXPECT_LE(name.size(), 15u) << name;
    total += static_cast<double>(name.size());
  }
  // Paper: mean last-name length 6.89.  Synthetic tail dominates at 20k;
  // the Table 13 calibration should land near the paper's mean.
  EXPECT_NEAR(total / static_cast<double>(pool.size()), 6.89, 0.6);
}

TEST(Names, FirstNameLengthsWithinPaperBounds) {
  Rng rng(3);
  const auto pool = dg::build_first_name_pool(5163, rng);
  double total = 0;
  for (const auto& name : pool) {
    EXPECT_GE(name.size(), 2u) << name;
    EXPECT_LE(name.size(), 11u) << name;
    total += static_cast<double>(name.size());
  }
  EXPECT_NEAR(total / static_cast<double>(pool.size()), 5.96, 0.7);
}

TEST(Names, SynthesizeNameHitsExactLength) {
  Rng rng(4);
  for (int len = 2; len <= 15; ++len) {
    const std::string name = dg::synthesize_name(len, rng);
    EXPECT_EQ(name.size(), static_cast<std::size_t>(len));
    for (const char ch : name) {
      EXPECT_TRUE(fbf::util::is_ascii_upper(ch)) << name;
    }
  }
}

TEST(Names, SampleWithoutReplacementUnique) {
  Rng rng(5);
  const auto pool = dg::build_last_name_pool(1000, rng);
  const auto sample = dg::sample_from_pool(pool, 500, rng);
  EXPECT_EQ(sample.size(), 500u);
  const std::unordered_set<std::string> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), sample.size());
}

TEST(Names, SampleLargerThanPoolAllowed) {
  Rng rng(6);
  const auto pool = dg::build_last_name_pool(100, rng);
  const auto sample = dg::sample_from_pool(pool, 250, rng);
  EXPECT_EQ(sample.size(), 250u);
}

TEST(Names, LengthHistogramSamplesInRange) {
  Rng rng(7);
  const auto& hist = dg::last_name_length_histogram();
  for (int i = 0; i < 2000; ++i) {
    const int len = dg::sample_length(hist, rng);
    EXPECT_GE(len, 2);
    EXPECT_LE(len, 15);
  }
}

// ------------------------------------------------------------- addresses --

TEST(Addresses, FormatAndLength) {
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const std::string addr = dg::generate_address(rng);
    EXPECT_LE(addr.size(), dg::kMaxAddressLength);
    // NUMBER [DIR] NAME SUFFIX: at least two spaces, leading digits.
    EXPECT_TRUE(fbf::util::is_ascii_digit(addr.front())) << addr;
    EXPECT_GE(std::count(addr.begin(), addr.end(), ' '), 2) << addr;
  }
}

TEST(Addresses, UniqueBatch) {
  Rng rng(9);
  const auto addrs = dg::generate_addresses(2000, rng);
  EXPECT_EQ(addrs.size(), 2000u);
  const std::unordered_set<std::string> unique(addrs.begin(), addrs.end());
  EXPECT_EQ(unique.size(), addrs.size());
}

// ---------------------------------------------------------------- phones --

TEST(Phones, AllGeneratedNumbersAreValidNanp) {
  Rng rng(10);
  for (int i = 0; i < 2000; ++i) {
    const std::string phone = dg::generate_phone(rng);
    EXPECT_TRUE(dg::is_valid_nanp(phone)) << phone;
  }
}

TEST(Phones, ValidatorRejectsBadNumbers) {
  EXPECT_FALSE(dg::is_valid_nanp("123456789"));    // 9 digits
  EXPECT_FALSE(dg::is_valid_nanp("12345678901"));  // 11 digits
  EXPECT_FALSE(dg::is_valid_nanp("1235551212"));   // NPA starts with 1
  EXPECT_FALSE(dg::is_valid_nanp("0235551212"));   // NPA starts with 0
  EXPECT_FALSE(dg::is_valid_nanp("2905551212"));   // NPA middle digit 9
  EXPECT_FALSE(dg::is_valid_nanp("2151551212"));   // NXX starts with 1
  EXPECT_FALSE(dg::is_valid_nanp("2159111212"));   // N11 service code
  EXPECT_FALSE(dg::is_valid_nanp("215555121A"));   // non-digit
  EXPECT_TRUE(dg::is_valid_nanp("2155551212"));
}

TEST(Phones, UniqueBatch) {
  Rng rng(11);
  const auto phones = dg::generate_phones(3000, rng);
  const std::unordered_set<std::string> unique(phones.begin(), phones.end());
  EXPECT_EQ(unique.size(), phones.size());
}

// ------------------------------------------------------------------ ssns --

TEST(Ssns, AllGeneratedAreValid) {
  Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    const std::string ssn = dg::generate_ssn(rng);
    EXPECT_TRUE(dg::is_valid_ssn(ssn)) << ssn;
  }
}

TEST(Ssns, ValidatorRejectsSsaExclusions) {
  EXPECT_FALSE(dg::is_valid_ssn("000121234"));  // area 000
  EXPECT_FALSE(dg::is_valid_ssn("666121234"));  // area 666
  EXPECT_FALSE(dg::is_valid_ssn("773121234"));  // area > 772
  EXPECT_FALSE(dg::is_valid_ssn("123001234"));  // group 00
  EXPECT_FALSE(dg::is_valid_ssn("123120000"));  // serial 0000
  EXPECT_FALSE(dg::is_valid_ssn("12312123"));   // 8 digits
  EXPECT_FALSE(dg::is_valid_ssn("12312123X"));  // non-digit
  EXPECT_TRUE(dg::is_valid_ssn("123121234"));
}

// ----------------------------------------------------------------- dates --

TEST(Dates, WindowSizeMatchesPaper) {
  // Paper: "between 2/25/1912 and 2/24/2012 or 36,525 unique dates".
  EXPECT_EQ(dg::birthdate_window_days(), 36525);
}

TEST(Dates, CivilRoundTrip) {
  for (const std::int64_t day : {-20000, -1, 0, 1, 10000, 15000}) {
    const dg::CivilDate date = dg::civil_from_days(day);
    EXPECT_EQ(dg::days_from_civil(date), day);
  }
}

TEST(Dates, KnownSerials) {
  EXPECT_EQ(dg::days_from_civil({1970, 1, 1}), 0);
  EXPECT_EQ(dg::days_from_civil({1970, 1, 2}), 1);
  EXPECT_EQ(dg::days_from_civil({1969, 12, 31}), -1);
  EXPECT_EQ(dg::days_from_civil({2000, 3, 1}),
            dg::days_from_civil({2000, 2, 29}) + 1);  // leap year
}

TEST(Dates, GeneratedDatesAreValidAndInWindow) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const std::string date = dg::generate_birthdate(rng);
    EXPECT_EQ(date.size(), 8u);
    EXPECT_TRUE(dg::is_valid_birthdate(date)) << date;
  }
}

TEST(Dates, ValidatorRejectsImpossibleDates) {
  EXPECT_FALSE(dg::is_valid_birthdate("02301990"));  // Feb 30
  EXPECT_FALSE(dg::is_valid_birthdate("04311990"));  // Apr 31
  EXPECT_FALSE(dg::is_valid_birthdate("02291995"));  // not a leap year
  EXPECT_TRUE(dg::is_valid_birthdate("02291996"));   // leap year
  EXPECT_FALSE(dg::is_valid_birthdate("13011990"));  // month 13
  EXPECT_FALSE(dg::is_valid_birthdate("00011990"));  // month 0
  EXPECT_FALSE(dg::is_valid_birthdate("02241912"));  // before window
  EXPECT_TRUE(dg::is_valid_birthdate("02251912"));   // window start
  EXPECT_TRUE(dg::is_valid_birthdate("02242012"));   // window end
  EXPECT_FALSE(dg::is_valid_birthdate("02252012"));  // after window
  EXPECT_FALSE(dg::is_valid_birthdate("0225191"));   // 7 chars
}

TEST(Dates, UniqueBatchUpToWindow) {
  Rng rng(14);
  const auto dates = dg::generate_birthdates(5000, rng);
  const std::unordered_set<std::string> unique(dates.begin(), dates.end());
  EXPECT_EQ(unique.size(), dates.size());
}

// ---------------------------------------------------------------- errors --

TEST(Errors, EveryEditKindYieldsSingleDlEdit) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    std::string s(2 + rng.below(10), '\0');
    for (auto& ch : s) {
      ch = static_cast<char>('A' + rng.below(26));
    }
    for (const auto kind :
         {dg::EditKind::kSubstitution, dg::EditKind::kInsertion,
          dg::EditKind::kDeletion, dg::EditKind::kTransposition}) {
      const std::string t =
          dg::apply_edit(s, kind, dg::Alphabet::kUpperAlpha, rng);
      EXPECT_EQ(fbf::metrics::dl_distance(s, t), 1)
          << dg::edit_kind_name(kind) << " s=" << s << " t=" << t;
    }
  }
}

TEST(Errors, AlphabetRespected) {
  Rng rng(16);
  for (int i = 0; i < 500; ++i) {
    const std::string t =
        dg::inject_single_edit("123456789", dg::Alphabet::kDigits, rng);
    for (const char ch : t) {
      EXPECT_TRUE(fbf::util::is_ascii_digit(ch)) << t;
    }
  }
}

TEST(Errors, DeletionOnSingleCharFallsBackToSubstitution) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const std::string t = dg::apply_edit("A", dg::EditKind::kDeletion,
                                         dg::Alphabet::kUpperAlpha, rng);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_NE(t, "A");
  }
}

TEST(Errors, TranspositionOnUniformStringFallsBack) {
  Rng rng(18);
  const std::string t = dg::apply_edit("AAAA", dg::EditKind::kTransposition,
                                       dg::Alphabet::kUpperAlpha, rng);
  EXPECT_EQ(fbf::metrics::dl_distance("AAAA", t), 1);
}

TEST(Errors, InjectEditsBoundsDistance) {
  // Bound with the unrestricted (true) Damerau–Levenshtein metric: each
  // injected edit is one true-DL operation and true DL satisfies the
  // triangle inequality, so true_dl <= edits.  OSA ("DL" in the paper)
  // violates the triangle inequality, so the same bound does NOT hold for
  // dl_distance when edits stack on adjacent positions.
  Rng rng(19);
  for (int edits = 1; edits <= 4; ++edits) {
    for (int i = 0; i < 200; ++i) {
      const std::string t =
          dg::inject_edits("PHILADELPHIA", edits, dg::Alphabet::kUpperAlpha,
                           rng);
      EXPECT_LE(fbf::metrics::true_dl_distance("PHILADELPHIA", t), edits);
      EXPECT_GE(fbf::metrics::dl_distance("PHILADELPHIA", t), 0);
    }
  }
}

TEST(Errors, MakeErrorCopyPreservesLengthAndIndexes) {
  Rng rng(20);
  const std::vector<std::string> clean = {"SMITH", "JONES", "BROWN"};
  const auto error = dg::make_error_copy(clean, dg::Alphabet::kUpperAlpha, rng);
  ASSERT_EQ(error.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(fbf::metrics::dl_distance(clean[i], error[i]), 1);
  }
}

}  // namespace
