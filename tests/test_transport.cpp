// Transport-layer tests: the shard link protocol codecs, the in-process
// reference transport, the real TCP path (server event loop + frame
// protocol + deadlines), each injected fault kind manifesting as a real
// socket failure, and the headline property — link_sharded produces
// identical counters over InProcessTransport and TcpTransport for the
// same fault seed.
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "linkage/person_gen.hpp"
#include "linkage/shard_service.hpp"
#include "linkage/sharded.hpp"
#include "net/tcp.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace {

namespace lk = fbf::linkage;
namespace net = fbf::net;
namespace u = fbf::util;

net::ShardHandler echo_handler() {
  return [](const net::FrameContext&, std::string_view payload) {
    return u::Result<std::string>(std::string(payload));
  };
}

// --- link protocol codecs ----------------------------------------------

TEST(ShardProtocol, LinkRequestRoundTrips) {
  u::Rng rng(11);
  const auto left = lk::generate_people(7, rng);
  const auto right = lk::generate_people(5, rng);
  const std::string payload = lk::encode_link_request(left, right, false);
  const auto decoded = lk::decode_link_request(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().left.size(), left.size());
  ASSERT_EQ(decoded.value().right.size(), right.size());
  EXPECT_FALSE(decoded.value().broadcast_right);
  for (std::size_t i = 0; i < left.size(); ++i) {
    EXPECT_EQ(decoded.value().left[i].last_name, left[i].last_name);
    EXPECT_EQ(decoded.value().left[i].id, left[i].id);
  }
}

TEST(ShardProtocol, BroadcastRequestShipsNoRightRecords) {
  u::Rng rng(12);
  const auto left = lk::generate_people(4, rng);
  const auto right = lk::generate_people(300, rng);
  const std::string broadcast = lk::encode_link_request(left, right, true);
  const std::string inline_right = lk::encode_link_request(left, right, false);
  EXPECT_LT(broadcast.size(), inline_right.size() / 4)
      << "broadcast flag should replace the right list, not ship it";
  const auto decoded = lk::decode_link_request(broadcast);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().broadcast_right);
  EXPECT_TRUE(decoded.value().right.empty());
}

TEST(ShardProtocol, TruncatedRequestIsRejected) {
  u::Rng rng(13);
  const auto left = lk::generate_people(3, rng);
  const std::string payload = lk::encode_link_request(left, {}, true);
  for (const std::size_t len : {payload.size() - 1, payload.size() / 2,
                                std::size_t{0}}) {
    const auto decoded =
        lk::decode_link_request(std::string_view(payload).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes";
  }
  const auto trailing = lk::decode_link_request(payload + "x");
  EXPECT_FALSE(trailing.ok());
}

TEST(ShardProtocol, ShardReplyRoundTrips) {
  lk::ShardReply reply;
  reply.pairs = 1234;
  reply.matches = 56;
  reply.true_positives = 55;
  reply.link_ms = 7.25;
  const auto decoded = lk::decode_shard_reply(lk::encode_shard_reply(reply));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().pairs, 1234u);
  EXPECT_EQ(decoded.value().matches, 56u);
  EXPECT_EQ(decoded.value().true_positives, 55u);
  EXPECT_DOUBLE_EQ(decoded.value().link_ms, 7.25);
  EXPECT_FALSE(lk::decode_shard_reply("short").ok());
}

// --- in-process transport ----------------------------------------------

TEST(InProcessTransport, RoutesPayloadAndContext) {
  net::FrameContext seen;
  net::InProcessTransport transport(
      [&seen](const net::FrameContext& ctx, std::string_view payload) {
        seen = ctx;
        return u::Result<std::string>(std::string(payload) + "!");
      });
  const auto reply =
      transport.call(3, 2, net::FrameType::kLinkRequest, "ping");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), "ping!");
  EXPECT_EQ(seen.shard, 3u);
  EXPECT_EQ(seen.attempt, 2u);
  EXPECT_FALSE(transport.real_time());
}

TEST(InProcessTransport, InjectedFaultFailsTheAttempt) {
  u::FaultConfig faults;
  faults.fail_shard = 1;
  net::InProcessTransport transport(echo_handler(), faults);
  EXPECT_FALSE(transport.call(1, 1, net::FrameType::kLinkRequest, "x").ok());
  EXPECT_TRUE(transport.call(0, 1, net::FrameType::kLinkRequest, "x").ok());
}

// --- TCP transport ------------------------------------------------------

TEST(TcpTransport, PingPongAndEcho) {
  net::ShardServer server(echo_handler());
  net::TcpTransportOptions opts;
  opts.port = server.port();
  net::TcpTransport transport(opts);
  EXPECT_TRUE(transport.real_time());
  ASSERT_TRUE(transport.ping().ok());
  const auto reply =
      transport.call(4, 1, net::FrameType::kLinkRequest, "over the wire");
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(reply.value(), "over the wire");
  EXPECT_GE(server.counters().requests_served.load(), 1u);
}

TEST(TcpTransport, HandlerErrorComesBackAsStatus) {
  net::ShardServer server(
      [](const net::FrameContext&, std::string_view) {
        return u::Result<std::string>(
            u::Status::invalid_argument("bad request shape"));
      });
  net::TcpTransportOptions opts;
  opts.port = server.port();
  net::TcpTransport transport(opts);
  const auto reply = transport.call(0, 1, net::FrameType::kLinkRequest, "x");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), u::StatusCode::kInvalidArgument);
  EXPECT_NE(reply.status().message().find("bad request shape"),
            std::string::npos);
}

TEST(TcpTransport, ConnectToDeadPortIsRefused) {
  // No server at all: transport pointed at a bound-but-not-listening
  // port must observe a real ECONNREFUSED, quickly.
  net::ShardServer server(echo_handler());
  net::TcpTransportOptions opts;
  opts.port = server.port();
  u::FaultConfig faults;
  faults.fail_shard = 0;  // shard 0 fails every attempt
  faults.seed = 902;
  opts.faults = faults;
  net::TcpTransport transport(opts);
  // Find an attempt whose kind draw is kConnectRefused and call it.
  const u::FaultInjector probe(faults);
  int attempt = -1;
  for (int a = 1; a <= 64; ++a) {
    if (probe.net_fault_kind(0, a) == u::NetFaultKind::kConnectRefused) {
      attempt = a;
      break;
    }
  }
  ASSERT_GT(attempt, 0) << "no refused-kind draw in 64 attempts";
  const auto reply =
      transport.call(0, attempt, net::FrameType::kLinkRequest, "x");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(transport.stats().connect_refused, 1u)
      << reply.status().to_string();
}

// Each server-side fault kind must manifest as its distinct real failure.
TEST(TcpTransport, EachServerFaultKindManifests) {
  u::FaultConfig faults;
  faults.fail_shard = 0;
  faults.seed = 31;
  const u::FaultInjector probe(faults);
  int disconnect_attempt = -1;
  int garble_attempt = -1;
  int delay_attempt = -1;
  for (int a = 1; a <= 128; ++a) {
    const auto kind = probe.net_fault_kind(0, a);
    if (kind == u::NetFaultKind::kMidFrameDisconnect &&
        disconnect_attempt < 0) {
      disconnect_attempt = a;
    } else if (kind == u::NetFaultKind::kGarbledFrame && garble_attempt < 0) {
      garble_attempt = a;
    } else if (kind == u::NetFaultKind::kDeadlineExpiry && delay_attempt < 0) {
      delay_attempt = a;
    }
  }
  ASSERT_GT(disconnect_attempt, 0);
  ASSERT_GT(garble_attempt, 0);
  ASSERT_GT(delay_attempt, 0);

  net::ShardServerOptions server_opts;
  server_opts.faults = faults;
  server_opts.injected_delay_ms = 400.0;
  net::ShardServer server(echo_handler(), server_opts);
  net::TcpTransportOptions opts;
  opts.port = server.port();
  opts.faults = faults;
  opts.deadline_ms = 150.0;  // < injected_delay_ms so the stall expires it
  net::TcpTransport transport(opts);

  const auto cut = transport.call(0, disconnect_attempt,
                                  net::FrameType::kLinkRequest, "payload");
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(transport.stats().disconnects, 1u) << cut.status().to_string();
  EXPECT_GE(server.counters().injected_disconnects.load(), 1u);

  const auto garbled = transport.call(0, garble_attempt,
                                      net::FrameType::kLinkRequest, "payload");
  ASSERT_FALSE(garbled.ok());
  EXPECT_EQ(transport.stats().garbled, 1u) << garbled.status().to_string();
  EXPECT_GE(server.counters().injected_garbles.load(), 1u);

  const auto late = transport.call(0, delay_attempt,
                                   net::FrameType::kLinkRequest, "payload");
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(transport.stats().deadline_expired, 1u)
      << late.status().to_string();
  EXPECT_GE(server.counters().injected_delays.load(), 1u);
}

// --- per-kind delivery stats --------------------------------------------

TEST(TransportStats, InProcessTalliesEachInjectedKind) {
  u::FaultConfig faults;
  faults.fail_shard = 0;
  faults.seed = 31;
  net::InProcessTransport transport(echo_handler(), faults);
  // Drive enough attempts that the kind draw covers all four; the stats
  // must agree with an independent replay of the same pure draws.
  const u::FaultInjector probe(faults);
  net::TransportStats expected;
  const int kAttempts = 64;
  for (int a = 1; a <= kAttempts; ++a) {
    ASSERT_FALSE(transport.call(0, a, net::FrameType::kLinkRequest, "x").ok());
    ++expected.by_kind(probe.net_fault_kind(0, a));
  }
  EXPECT_EQ(transport.stats().calls, static_cast<std::uint64_t>(kAttempts));
  EXPECT_EQ(transport.stats().ok, 0u);
  EXPECT_EQ(transport.stats().connect_refused, expected.connect_refused);
  EXPECT_EQ(transport.stats().disconnects, expected.disconnects);
  EXPECT_EQ(transport.stats().deadline_expired, expected.deadline_expired);
  EXPECT_EQ(transport.stats().garbled, expected.garbled);
  EXPECT_GT(expected.connect_refused, 0u);
  EXPECT_GT(expected.disconnects, 0u);
  EXPECT_GT(expected.deadline_expired, 0u);
  EXPECT_GT(expected.garbled, 0u);
  EXPECT_EQ(transport.stats().total_failures(),
            static_cast<std::uint64_t>(kAttempts));
  // Successful calls land in ok, not in any failure bucket.
  ASSERT_TRUE(transport.call(1, 1, net::FrameType::kLinkRequest, "x").ok());
  EXPECT_EQ(transport.stats().ok, 1u);
}

TEST(TransportStats, ByKindAndFailuresAgree) {
  net::TransportStats stats;
  ++stats.by_kind(u::NetFaultKind::kGarbledFrame);
  ++stats.by_kind(u::NetFaultKind::kGarbledFrame);
  ++stats.by_kind(u::NetFaultKind::kDeadlineExpiry);
  EXPECT_EQ(stats.failures(u::NetFaultKind::kGarbledFrame), 2u);
  EXPECT_EQ(stats.failures(u::NetFaultKind::kDeadlineExpiry), 1u);
  EXPECT_EQ(stats.failures(u::NetFaultKind::kConnectRefused), 0u);
  EXPECT_EQ(stats.total_failures(), 3u);
}

TEST(TransportStats, TcpClassifiesObservedFailuresLikeTheDraw) {
  // The TCP client does not see the injector's kind draw — it sees a
  // refused connect, a cut socket, a stall, a bad checksum — yet its
  // per-kind stats must match the draws, because each kind manifests
  // as its distinct real failure.
  u::FaultConfig faults;
  faults.fail_shard = 0;
  faults.seed = 31;
  net::ShardServerOptions server_opts;
  server_opts.faults = faults;
  server_opts.injected_delay_ms = 400.0;
  net::ShardServer server(echo_handler(), server_opts);
  net::TcpTransportOptions opts;
  opts.port = server.port();
  opts.faults = faults;
  opts.deadline_ms = 150.0;
  net::TcpTransport transport(opts);

  const u::FaultInjector probe(faults);
  net::TransportStats expected;
  const int kAttempts = 12;
  for (int a = 1; a <= kAttempts; ++a) {
    ASSERT_FALSE(transport.call(0, a, net::FrameType::kLinkRequest, "x").ok());
    ++expected.by_kind(probe.net_fault_kind(0, a));
  }
  EXPECT_EQ(transport.stats().connect_refused, expected.connect_refused);
  EXPECT_EQ(transport.stats().disconnects, expected.disconnects);
  EXPECT_EQ(transport.stats().deadline_expired, expected.deadline_expired);
  EXPECT_EQ(transport.stats().garbled, expected.garbled);
  EXPECT_EQ(transport.stats().other_errors, 0u);
  EXPECT_EQ(transport.stats().total_failures(),
            static_cast<std::uint64_t>(kAttempts));
}

// --- the headline property: transport equivalence -----------------------

struct EquivalenceCase {
  const char* name;
  u::FaultConfig faults;
  bool with_fault_policy;
};

void expect_transport_equivalence(const EquivalenceCase& c) {
  u::Rng rng(77);
  const auto left = lk::generate_people(60, rng);
  const auto right = lk::make_error_records(left, {}, rng);

  lk::ShardedConfig config;
  config.n_shards = 4;
  config.scheme = lk::PartitionScheme::kReplicateRight;
  config.link.comparator =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  if (c.with_fault_policy) {
    lk::ShardFaultPolicy policy;
    policy.faults = c.faults;
    policy.retry.max_attempts = 3;
    policy.retry.backoff_base_ms = 0.25;  // real sleeps on TCP: keep tiny
    config.fault = policy;
  }

  // Reference run: driver-owned in-process transport.
  const auto in_process = lk::link_sharded(left, right, config);

  // Socket run: same seed, real frames, real failures.
  lk::ShardLinkService service(config.link, right);
  net::ShardServerOptions server_opts;
  server_opts.faults = c.faults;
  server_opts.injected_delay_ms = 300.0;
  net::ShardServer server(service.handler(), server_opts);
  net::TcpTransportOptions client_opts;
  client_opts.port = server.port();
  client_opts.faults = c.faults;
  client_opts.deadline_ms = 120.0;
  net::TcpTransport transport(client_opts);
  config.transport = &transport;
  const auto tcp = lk::link_sharded(left, right, config);

  EXPECT_EQ(tcp.total_pairs, in_process.total_pairs) << c.name;
  EXPECT_EQ(tcp.total_matches, in_process.total_matches) << c.name;
  EXPECT_EQ(tcp.total_true_positives, in_process.total_true_positives)
      << c.name;
  EXPECT_EQ(tcp.retries, in_process.retries) << c.name;
  EXPECT_EQ(tcp.failed_shards, in_process.failed_shards) << c.name;
  EXPECT_EQ(tcp.dropped_pairs, in_process.dropped_pairs) << c.name;
  EXPECT_EQ(tcp.dropped_shard_ids, in_process.dropped_shard_ids) << c.name;
  ASSERT_EQ(tcp.shards.size(), in_process.shards.size()) << c.name;
  for (std::size_t s = 0; s < tcp.shards.size(); ++s) {
    EXPECT_EQ(tcp.shards[s].attempts, in_process.shards[s].attempts)
        << c.name << " shard " << s;
    EXPECT_EQ(tcp.shards[s].completed, in_process.shards[s].completed)
        << c.name << " shard " << s;
    EXPECT_EQ(tcp.shards[s].straggled, in_process.shards[s].straggled)
        << c.name << " shard " << s;
    EXPECT_EQ(tcp.shards[s].matches, in_process.shards[s].matches)
        << c.name << " shard " << s;
    EXPECT_DOUBLE_EQ(tcp.shards[s].backoff_ms, in_process.shards[s].backoff_ms)
        << c.name << " shard " << s;
  }
}

TEST(TransportEquivalence, FaultFree) {
  expect_transport_equivalence({"fault-free", {}, false});
}

TEST(TransportEquivalence, TransientFaults) {
  EquivalenceCase c{"transient", {}, true};
  c.faults.seed = 404;
  c.faults.shard_fail_rate = 0.4;  // all four kinds get drawn across runs
  expect_transport_equivalence(c);
}

TEST(TransportEquivalence, PermanentShardFailure) {
  EquivalenceCase c{"dead shard", {}, true};
  c.faults.seed = 405;
  c.faults.fail_shard = 2;
  expect_transport_equivalence(c);
}

TEST(TransportEquivalence, Stragglers) {
  EquivalenceCase c{"stragglers", {}, true};
  c.faults.seed = 406;
  c.faults.shard_straggle_rate = 0.5;
  expect_transport_equivalence(c);
}

TEST(TransportEquivalence, HashPartitioningWithFaults) {
  u::Rng rng(52);
  const auto left = lk::generate_people(80, rng);
  const auto right = lk::make_error_records(left, {}, rng);
  lk::ShardedConfig config;
  config.n_shards = 3;
  config.scheme = lk::PartitionScheme::kHashLastName;
  config.link.comparator =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  lk::ShardFaultPolicy policy;
  policy.faults.seed = 9;
  policy.faults.shard_fail_rate = 0.3;
  policy.retry.max_attempts = 2;
  policy.retry.backoff_base_ms = 0.25;
  config.fault = policy;
  const auto in_process = lk::link_sharded(left, right, config);

  lk::ShardLinkService service(config.link, right);
  net::ShardServerOptions server_opts;
  server_opts.faults = policy.faults;
  server_opts.injected_delay_ms = 300.0;
  net::ShardServer server(service.handler(), server_opts);
  net::TcpTransportOptions client_opts;
  client_opts.port = server.port();
  client_opts.faults = policy.faults;
  client_opts.deadline_ms = 120.0;
  net::TcpTransport transport(client_opts);
  config.transport = &transport;
  const auto tcp = lk::link_sharded(left, right, config);

  EXPECT_EQ(tcp.total_matches, in_process.total_matches);
  EXPECT_EQ(tcp.total_true_positives, in_process.total_true_positives);
  EXPECT_EQ(tcp.retries, in_process.retries);
  EXPECT_EQ(tcp.failed_shards, in_process.failed_shards);
}

}  // namespace
