#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using fbf::util::FaultConfig;
using fbf::util::FaultInjector;

TEST(FaultInjector, DefaultConfigInjectsNothing) {
  FaultInjector injector;
  std::string bytes(64, 'x');
  for (std::size_t shard = 0; shard < 16; ++shard) {
    for (int attempt = 1; attempt <= 8; ++attempt) {
      EXPECT_FALSE(injector.shard_attempt_fails(shard, attempt));
      EXPECT_FALSE(injector.shard_attempt_straggles(shard, attempt));
    }
  }
  EXPECT_FALSE(injector.corrupt_bytes(bytes, "snap", 0).has_value());
  EXPECT_EQ(injector.truncated_size(100, "journal", 0), 100u);
  EXPECT_EQ(injector.counters().shard_failures, 0u);
  EXPECT_EQ(injector.counters().bytes_corrupted, 0u);
}

TEST(FaultInjector, DecisionsAreDeterministicAcrossInstances) {
  FaultConfig config;
  config.seed = 99;
  config.shard_fail_rate = 0.5;
  config.shard_straggle_rate = 0.3;
  FaultInjector a(config);
  FaultInjector b(config);
  for (std::size_t shard = 0; shard < 32; ++shard) {
    for (int attempt = 1; attempt <= 4; ++attempt) {
      EXPECT_EQ(a.shard_attempt_fails(shard, attempt),
                b.shard_attempt_fails(shard, attempt));
      EXPECT_EQ(a.shard_attempt_straggles(shard, attempt),
                b.shard_attempt_straggles(shard, attempt));
    }
  }
}

TEST(FaultInjector, DecisionsAreOrderIndependent) {
  // The verdict for (shard, attempt) is a pure function of the key, not
  // of how many draws happened before it.
  FaultConfig config;
  config.seed = 7;
  config.shard_fail_rate = 0.5;
  FaultInjector fresh(config);
  const bool expected = fresh.shard_attempt_fails(5, 2);
  FaultInjector busy(config);
  for (std::size_t shard = 0; shard < 20; ++shard) {
    (void)busy.shard_attempt_fails(shard, 1);
  }
  EXPECT_EQ(busy.shard_attempt_fails(5, 2), expected);
}

TEST(FaultInjector, WriteFaultsAreKeyedBySequenceNotHistory) {
  // corrupt_bytes/truncated_size decisions for a given sequence must not
  // depend on how many earlier faults fired.
  FaultConfig config;
  config.seed = 31;
  config.snapshot_corrupt_rate = 0.5;
  config.journal_truncate_rate = 0.5;
  const std::string original(128, 'y');
  FaultInjector fresh(config);
  std::string fresh_bytes = original;
  const auto expected_offset = fresh.corrupt_bytes(fresh_bytes, "snap", 9);
  const std::size_t expected_size = fresh.truncated_size(777, "journal", 9);
  FaultInjector busy(config);
  for (std::uint64_t seq = 0; seq < 9; ++seq) {
    std::string scratch = original;
    (void)busy.corrupt_bytes(scratch, "snap", seq);
    (void)busy.truncated_size(777, "journal", seq);
  }
  std::string busy_bytes = original;
  EXPECT_EQ(busy.corrupt_bytes(busy_bytes, "snap", 9), expected_offset);
  EXPECT_EQ(busy_bytes, fresh_bytes);
  EXPECT_EQ(busy.truncated_size(777, "journal", 9), expected_size);
}

TEST(FaultInjector, NetFaultKindIsDeterministicAndCoversAllKinds) {
  FaultConfig config;
  config.seed = 321;
  config.shard_fail_rate = 1.0;
  const FaultInjector a(config);
  const FaultInjector b(config);
  bool seen[fbf::util::kNetFaultKindCount] = {};
  for (std::size_t shard = 0; shard < 8; ++shard) {
    for (int attempt = 1; attempt <= 16; ++attempt) {
      const auto kind = a.net_fault_kind(shard, attempt);
      EXPECT_EQ(kind, b.net_fault_kind(shard, attempt));
      seen[static_cast<int>(kind)] = true;
      EXPECT_STRNE(fbf::util::net_fault_kind_name(kind), "?");
    }
  }
  for (const bool kind_seen : seen) {
    EXPECT_TRUE(kind_seen) << "a fault kind never drawn in 128 draws";
  }
}

TEST(FaultInjector, PureDecisionsMatchCountingOnes) {
  FaultConfig config;
  config.seed = 55;
  config.shard_fail_rate = 0.5;
  config.shard_straggle_rate = 0.5;
  const FaultInjector pure(config);
  FaultInjector counting(config);
  for (std::size_t shard = 0; shard < 6; ++shard) {
    for (int attempt = 1; attempt <= 6; ++attempt) {
      EXPECT_EQ(pure.would_fail(shard, attempt),
                counting.shard_attempt_fails(shard, attempt));
      EXPECT_EQ(pure.would_straggle(shard, attempt),
                counting.shard_attempt_straggles(shard, attempt));
    }
  }
}

TEST(FaultInjector, RateOneAlwaysFiresRateZeroNever) {
  FaultConfig always;
  always.shard_fail_rate = 1.0;
  always.shard_straggle_rate = 1.0;
  FaultInjector on(always);
  for (std::size_t shard = 0; shard < 8; ++shard) {
    EXPECT_TRUE(on.shard_attempt_fails(shard, 1));
    EXPECT_TRUE(on.shard_attempt_straggles(shard, 1));
  }
  EXPECT_EQ(on.counters().shard_failures, 8u);
  EXPECT_EQ(on.counters().stragglers, 8u);
}

TEST(FaultInjector, PermanentShardFailsEveryAttempt) {
  FaultConfig config;
  config.fail_shard = 3;
  FaultInjector injector(config);
  for (int attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_TRUE(injector.shard_attempt_fails(3, attempt));
    EXPECT_FALSE(injector.shard_attempt_fails(2, attempt));
  }
}

TEST(FaultInjector, CorruptionFlipsExactlyOneBit) {
  FaultConfig config;
  config.seed = 11;
  config.snapshot_corrupt_rate = 1.0;
  FaultInjector injector(config);
  const std::string original(256, 'a');
  std::string bytes = original;
  const auto offset = injector.corrupt_bytes(bytes, "snap", 0);
  ASSERT_TRUE(offset.has_value());
  ASSERT_LT(*offset, bytes.size());
  EXPECT_NE(bytes, original);
  int differing = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] != original[i]) {
      ++differing;
      EXPECT_EQ(i, *offset);
    }
  }
  EXPECT_EQ(differing, 1);
  EXPECT_EQ(injector.counters().bytes_corrupted, 1u);
}

TEST(FaultInjector, TruncationAlwaysShortensTheWrite) {
  FaultConfig config;
  config.seed = 13;
  config.journal_truncate_rate = 1.0;
  FaultInjector injector(config);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(injector.truncated_size(
                  1000, "journal", static_cast<std::uint64_t>(i)),
              1000u);
  }
  EXPECT_EQ(injector.counters().truncations, 50u);
}

TEST(FaultInjector, RatesAreApproximatelyHonoured) {
  FaultConfig config;
  config.seed = 17;
  config.shard_fail_rate = 0.25;
  FaultInjector injector(config);
  int failures = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (injector.shard_attempt_fails(static_cast<std::size_t>(i), 1)) {
      ++failures;
    }
  }
  const double rate = static_cast<double>(failures) / n;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

}  // namespace
