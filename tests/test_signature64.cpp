#include "core/signature64.hpp"

#include <gtest/gtest.h>

#include <string>

#include "datagen/errors.hpp"
#include "metrics/damerau.hpp"
#include "util/rng.hpp"

namespace {

using fbf::core::fbf_pass64;
using fbf::core::find_diff_bits64;
using fbf::core::make_signature64;
using fbf::core::sig64_has_adjacent_pair;
using fbf::core::sig64_has_triple;

TEST(Signature64, LetterLayout) {
  const std::uint64_t sig = make_signature64("AB");
  EXPECT_EQ(sig & fbf::core::kSig64CountMask, 0b11ull);
}

TEST(Signature64, SecondOccurrenceWindow) {
  const std::uint64_t sig = make_signature64("AA");
  EXPECT_TRUE(sig & (1ull << 0));
  EXPECT_TRUE(sig & (1ull << 26));
  EXPECT_FALSE(sig64_has_triple(sig));
  EXPECT_TRUE(sig64_has_adjacent_pair(sig));
}

TEST(Signature64, TripleFlagForLetters) {
  EXPECT_FALSE(sig64_has_triple(make_signature64("AABB")));
  EXPECT_TRUE(sig64_has_triple(make_signature64("AAA")));
}

TEST(Signature64, DigitLayoutAndOverflow) {
  const std::uint64_t sig = make_signature64("05");
  EXPECT_TRUE(sig & (1ull << 52));
  EXPECT_TRUE(sig & (1ull << 57));
  EXPECT_FALSE(sig64_has_triple(sig));
  EXPECT_TRUE(sig64_has_triple(make_signature64("00")));
}

TEST(Signature64, CaseInsensitive) {
  EXPECT_EQ(make_signature64("Smith"), make_signature64("SMITH"));
  EXPECT_TRUE(sig64_has_adjacent_pair(make_signature64("aA")));
}

TEST(Signature64, AdjacencyFlag) {
  EXPECT_FALSE(sig64_has_adjacent_pair(make_signature64("ABAB")));
  EXPECT_TRUE(sig64_has_adjacent_pair(make_signature64("ABBA")));
  // Adjacency through a separator does not count.
  EXPECT_FALSE(sig64_has_adjacent_pair(make_signature64("ABA")));
}

TEST(Signature64, NonAlnumIgnoredForCounts) {
  EXPECT_EQ(make_signature64("O'BRIEN") & fbf::core::kSig64CountMask,
            make_signature64("OBRIEN") & fbf::core::kSig64CountMask);
}

TEST(Signature64, DiffBitsExcludesFlags) {
  // "ABA" vs "AABB": flags differ (adjacency), counted bits measure only
  // the occurrence changes.
  const std::uint64_t m = make_signature64("AB");
  const std::uint64_t n = make_signature64("ABB");  // adds second B
  EXPECT_EQ(find_diff_bits64(m, n), 1);
  const std::uint64_t p = make_signature64("ABAB");  // has adjacency flag off
  const std::uint64_t q = make_signature64("AABB");  // same multiset, flag on
  EXPECT_EQ(find_diff_bits64(p, q), 0);
}

TEST(Signature64, FilterSafetyProperty) {
  // Same invariant as the 32-bit filter: one injected edit flips at most
  // two counted bits, so j edits keep the diff <= 2j.
  fbf::util::Rng rng(321);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string s(2 + rng.below(14), '\0');
    for (auto& ch : s) {
      // Mixed letters and digits to hit both windows.
      ch = rng.chance(0.7) ? static_cast<char>('A' + rng.below(26))
                           : static_cast<char>('0' + rng.below(10));
    }
    const int edits = 1 + static_cast<int>(rng.below(3));
    const std::string t = fbf::datagen::inject_edits(
        s, edits, fbf::datagen::Alphabet::kAlphanumeric, rng);
    EXPECT_LE(find_diff_bits64(make_signature64(s), make_signature64(t)),
              2 * edits)
        << "s=" << s << " t=" << t;
  }
}

TEST(Signature64, FilterContrapositive) {
  // Reject implies truly farther than k.
  fbf::util::Rng rng(322);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string s(1 + rng.below(10), '\0');
    std::string t(1 + rng.below(10), '\0');
    for (auto& ch : s) ch = static_cast<char>('A' + rng.below(8));
    for (auto& ch : t) ch = static_cast<char>('A' + rng.below(8));
    for (const int k : {1, 2}) {
      if (!fbf_pass64(make_signature64(s), make_signature64(t), k)) {
        EXPECT_GT(fbf::metrics::dl_distance(s, t), k)
            << "s=" << s << " t=" << t << " k=" << k;
      }
    }
  }
}

TEST(Signature64, SharperThanTwoWord32OnSecondOccurrences) {
  // The 64-bit signature carries the same letter information as the
  // 32-bit l=2 vector plus digit bits — one word instead of two or three.
  const std::uint64_t m = make_signature64("1801 N BROAD ST");
  const std::uint64_t n = make_signature64("1801 N BROAD AVE");
  EXPECT_GT(find_diff_bits64(m, n), 0);
  EXPECT_EQ(find_diff_bits64(m, m), 0);
}

}  // namespace
