#include "linkage/sharded.hpp"

#include <gtest/gtest.h>

#include "linkage/person_gen.hpp"
#include "util/rng.hpp"

namespace {

namespace lk = fbf::linkage;
using fbf::util::Rng;

struct Fixture {
  std::vector<lk::PersonRecord> clean;
  std::vector<lk::PersonRecord> error;

  explicit Fixture(std::size_t n, std::uint64_t seed = 5) {
    Rng rng(seed);
    clean = lk::generate_people(n, rng);
    lk::RecordErrorModel model;
    model.field_typo_rate = 0.25;
    error = lk::make_error_records(clean, model, rng);
  }
};

lk::ShardedConfig make_config(std::size_t shards,
                              lk::PartitionScheme scheme) {
  lk::ShardedConfig config;
  config.n_shards = shards;
  config.scheme = scheme;
  config.link.comparator =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  return config;
}

TEST(Sharded, ReplicateRightIsLossless) {
  const Fixture fx(120);
  const auto baseline = lk::link_exhaustive(
      fx.clean, fx.error, make_config(1, lk::PartitionScheme::kReplicateRight).link);
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    const auto result = lk::link_sharded(
        fx.clean, fx.error,
        make_config(shards, lk::PartitionScheme::kReplicateRight));
    EXPECT_EQ(result.total_matches, baseline.matches) << shards;
    EXPECT_EQ(result.total_true_positives, baseline.true_positives);
    // Broadcast: total pair count equals the exhaustive product.
    EXPECT_EQ(result.total_pairs, baseline.candidate_pairs);
  }
}

TEST(Sharded, ReplicateRightSlicesLeftEvenly) {
  const Fixture fx(100);
  const auto result = lk::link_sharded(
      fx.clean, fx.error,
      make_config(4, lk::PartitionScheme::kReplicateRight));
  ASSERT_EQ(result.shards.size(), 4u);
  for (const auto& shard : result.shards) {
    EXPECT_EQ(shard.left_count, 25u);
    EXPECT_EQ(shard.right_count, 100u);
  }
}

TEST(Sharded, HashPartitioningReducesWork) {
  const Fixture fx(150);
  const auto broadcast = lk::link_sharded(
      fx.clean, fx.error,
      make_config(4, lk::PartitionScheme::kReplicateRight));
  const auto hashed = lk::link_sharded(
      fx.clean, fx.error, make_config(4, lk::PartitionScheme::kHashLastName));
  EXPECT_LT(hashed.total_pairs, broadcast.total_pairs / 2);
}

TEST(Sharded, HashOnNoisyKeyLosesRecall) {
  // Typos in the last name move records across shards, so hash(LN)
  // must lose true pairs relative to replicate-right — the failure mode
  // this module exists to measure.
  const Fixture fx(400);
  const auto lossless = lk::link_sharded(
      fx.clean, fx.error,
      make_config(8, lk::PartitionScheme::kReplicateRight));
  const auto hashed = lk::link_sharded(
      fx.clean, fx.error, make_config(8, lk::PartitionScheme::kHashLastName));
  EXPECT_LT(hashed.total_true_positives, lossless.total_true_positives);
}

TEST(Sharded, SoundexKeyRecallAtLeastRawKey) {
  // Soundex canonicalizes many single-edit misspellings to the same code,
  // so its shard assignment survives more typos than raw hashing.
  const Fixture fx(400);
  const auto raw = lk::link_sharded(
      fx.clean, fx.error, make_config(8, lk::PartitionScheme::kHashLastName));
  const auto sdx = lk::link_sharded(
      fx.clean, fx.error,
      make_config(8, lk::PartitionScheme::kHashSoundexLastName));
  EXPECT_GE(sdx.total_true_positives, raw.total_true_positives);
}

TEST(Sharded, StatsAreInternallyConsistent) {
  const Fixture fx(100);
  const auto result = lk::link_sharded(
      fx.clean, fx.error, make_config(4, lk::PartitionScheme::kHashLastName));
  std::uint64_t pairs = 0;
  std::uint64_t matches = 0;
  double sum_ms = 0.0;
  double max_ms = 0.0;
  for (const auto& shard : result.shards) {
    pairs += shard.pairs;
    matches += shard.matches;
    sum_ms += shard.link_ms;
    max_ms = std::max(max_ms, shard.link_ms);
    EXPECT_EQ(shard.pairs,
              static_cast<std::uint64_t>(shard.left_count) *
                  shard.right_count);
  }
  EXPECT_EQ(result.total_pairs, pairs);
  EXPECT_EQ(result.total_matches, matches);
  EXPECT_DOUBLE_EQ(result.sum_ms, sum_ms);
  EXPECT_DOUBLE_EQ(result.makespan_ms, max_ms);
  EXPECT_GE(result.imbalance(), 1.0 - 1e-9);
}

TEST(Sharded, SingleShardEqualsExhaustive) {
  const Fixture fx(80);
  const auto config = make_config(1, lk::PartitionScheme::kHashLastName);
  const auto sharded = lk::link_sharded(fx.clean, fx.error, config);
  const auto exhaustive = lk::link_exhaustive(fx.clean, fx.error, config.link);
  EXPECT_EQ(sharded.total_matches, exhaustive.matches);
  EXPECT_EQ(sharded.total_true_positives, exhaustive.true_positives);
}

TEST(Sharded, FaultFreePolicyChangesNothing) {
  // An armed-but-all-zero fault policy must reproduce the fault-free run.
  const Fixture fx(100);
  const auto config = make_config(4, lk::PartitionScheme::kReplicateRight);
  auto faulty = config;
  faulty.fault = lk::ShardFaultPolicy{};
  const auto plain = lk::link_sharded(fx.clean, fx.error, config);
  const auto armed = lk::link_sharded(fx.clean, fx.error, faulty);
  EXPECT_EQ(armed.total_pairs, plain.total_pairs);
  EXPECT_EQ(armed.total_true_positives, plain.total_true_positives);
  EXPECT_EQ(armed.failed_shards, 0u);
  EXPECT_EQ(armed.retries, 0u);
  EXPECT_EQ(armed.dropped_pairs, 0u);
  for (const auto& shard : armed.shards) {
    EXPECT_EQ(shard.attempts, 1);
    EXPECT_TRUE(shard.completed);
  }
}

TEST(Sharded, PermanentShardFailureDegradesGracefully) {
  // Acceptance scenario: one shard fails every attempt.  The run must
  // complete, retries must be bounded and counted, and the result must
  // report the dropped partition instead of crashing.
  const Fixture fx(200);
  auto config = make_config(4, lk::PartitionScheme::kReplicateRight);
  lk::ShardFaultPolicy policy;
  policy.faults.fail_shard = 2;
  policy.retry.max_attempts = 3;
  config.fault = policy;
  const auto baseline = lk::link_sharded(
      fx.clean, fx.error, make_config(4, lk::PartitionScheme::kReplicateRight));

  const auto result = lk::link_sharded(fx.clean, fx.error, config);
  EXPECT_EQ(result.failed_shards, 1u);
  ASSERT_EQ(result.dropped_shard_ids.size(), 1u);
  EXPECT_EQ(result.dropped_shard_ids[0], 2u);
  EXPECT_EQ(result.retries, 3u);  // every bounded attempt failed
  EXPECT_EQ(result.shards[2].attempts, 3);
  EXPECT_FALSE(result.shards[2].completed);
  EXPECT_GT(result.shards[2].backoff_ms, 0.0);
  // The surviving shards are untouched...
  EXPECT_EQ(result.total_pairs + result.dropped_pairs,
            baseline.total_pairs);
  EXPECT_EQ(result.dropped_pairs,
            static_cast<std::uint64_t>(result.shards[2].left_count) *
                result.shards[2].right_count);
  EXPECT_EQ(result.dropped_left, result.shards[2].left_count);
  // ...and the recall impact is bounded and reported: under
  // replicate-right each left record has at most one true pair, so the
  // true positives lost cannot exceed the dropped left records.
  EXPECT_LE(baseline.total_true_positives - result.total_true_positives,
            result.dropped_left);
  EXPECT_GT(result.dropped_pair_fraction(), 0.0);
  EXPECT_LT(result.dropped_pair_fraction(), 1.0);
}

TEST(Sharded, TransientFailuresRetryWithBoundedBackoff) {
  const Fixture fx(150);
  auto config = make_config(8, lk::PartitionScheme::kReplicateRight);
  lk::ShardFaultPolicy policy;
  policy.faults.seed = 1234;
  policy.faults.shard_fail_rate = 0.5;
  policy.retry.max_attempts = 8;  // transient faults at 0.5 almost always clear
  policy.retry.backoff_base_ms = 2.0;
  policy.retry.backoff_multiplier = 2.0;
  config.fault = policy;
  const auto result = lk::link_sharded(fx.clean, fx.error, config);
  EXPECT_GT(result.retries, 0u);  // seed 1234 draws some failures
  std::uint64_t counted_retries = 0;
  for (const auto& shard : result.shards) {
    ASSERT_LE(shard.attempts, policy.retry.max_attempts);
    if (shard.completed) {
      // A shard that needed a attempts carries the geometric backoff sum.
      counted_retries += static_cast<std::uint64_t>(shard.attempts - 1);
      double expected_backoff = 0.0;
      double step = policy.retry.backoff_base_ms;
      for (int a = 1; a < shard.attempts; ++a) {
        expected_backoff += step;
        step *= policy.retry.backoff_multiplier;
      }
      EXPECT_DOUBLE_EQ(shard.backoff_ms, expected_backoff);
    } else {
      counted_retries += static_cast<std::uint64_t>(shard.attempts);
    }
  }
  EXPECT_EQ(result.retries, counted_retries);
}

TEST(Sharded, StragglersInflateRecordedTimeNotResults) {
  const Fixture fx(120);
  auto config = make_config(4, lk::PartitionScheme::kReplicateRight);
  lk::ShardFaultPolicy policy;
  policy.faults.seed = 5;
  policy.faults.shard_straggle_rate = 1.0;
  policy.faults.straggle_factor = 10.0;
  config.fault = policy;
  const auto result = lk::link_sharded(fx.clean, fx.error, config);
  const auto baseline = lk::link_sharded(
      fx.clean, fx.error, make_config(4, lk::PartitionScheme::kReplicateRight));
  EXPECT_EQ(result.total_true_positives, baseline.total_true_positives);
  EXPECT_EQ(result.failed_shards, 0u);
  for (const auto& shard : result.shards) {
    EXPECT_TRUE(shard.straggled);
    EXPECT_TRUE(shard.completed);
  }
}

TEST(Sharded, AllShardsFailingStillCompletes) {
  // Worst case: nothing survives.  The run must return (zero results,
  // full accounting) rather than crash or hang.
  const Fixture fx(60);
  auto config = make_config(3, lk::PartitionScheme::kReplicateRight);
  lk::ShardFaultPolicy policy;
  policy.faults.shard_fail_rate = 1.0;
  policy.retry.max_attempts = 2;
  config.fault = policy;
  const auto result = lk::link_sharded(fx.clean, fx.error, config);
  EXPECT_EQ(result.failed_shards, 3u);
  EXPECT_EQ(result.total_pairs, 0u);
  EXPECT_EQ(result.total_true_positives, 0u);
  EXPECT_DOUBLE_EQ(result.dropped_pair_fraction(), 1.0);
  EXPECT_EQ(result.retries, 6u);  // 3 shards x 2 bounded attempts
}

TEST(RetryPolicy, FullJitterIsDeterministicAndBounded) {
  fbf::util::RetryPolicy policy;
  policy.backoff_base_ms = 4.0;
  policy.backoff_multiplier = 2.0;
  policy.full_jitter = true;
  policy.jitter_seed = 9;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    for (const std::uint64_t key : {0ull, 1ull, 7ull, 123456789ull}) {
      const double d = policy.delay_ms(attempt, key);
      EXPECT_EQ(d, policy.delay_ms(attempt, key)) << "same draw must replay";
      EXPECT_GE(d, 0.0);
      EXPECT_LT(d, policy.next_delay_ms(attempt))
          << "jittered delay must stay under the nominal schedule";
    }
  }
  // Different keys desynchronize: shards retrying after a common failure
  // must not thunder back in lockstep.
  bool any_differ = false;
  for (std::uint64_t key = 1; key < 8 && !any_differ; ++key) {
    any_differ = policy.delay_ms(3, key) != policy.delay_ms(3, 0);
  }
  EXPECT_TRUE(any_differ);
  // Jitter off: delay_ms is exactly the legacy geometric schedule.
  policy.full_jitter = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_DOUBLE_EQ(policy.delay_ms(attempt, 42),
                     policy.next_delay_ms(attempt));
  }
}

TEST(Sharded, JitteredBackoffKeepsDecisionsAndReplaysExactly) {
  // Turning jitter on changes *when* retries happen, never what they
  // compute — and the jittered schedule is still seeded, so a rerun
  // reproduces the same backoff to the bit.
  const Fixture fx(150);
  auto config = make_config(8, lk::PartitionScheme::kReplicateRight);
  lk::ShardFaultPolicy policy;
  policy.faults.seed = 1234;
  policy.faults.shard_fail_rate = 0.5;
  policy.retry.max_attempts = 8;
  policy.retry.backoff_base_ms = 2.0;
  config.fault = policy;
  const auto plain = lk::link_sharded(fx.clean, fx.error, config);

  policy.retry.full_jitter = true;
  policy.retry.jitter_seed = 77;
  config.fault = policy;
  const auto jittered = lk::link_sharded(fx.clean, fx.error, config);
  EXPECT_EQ(jittered.total_matches, plain.total_matches);
  EXPECT_EQ(jittered.total_true_positives, plain.total_true_positives);
  EXPECT_EQ(jittered.retries, plain.retries);
  double plain_backoff = 0.0;
  double jittered_backoff = 0.0;
  for (std::size_t s = 0; s < plain.shards.size(); ++s) {
    EXPECT_EQ(jittered.shards[s].attempts, plain.shards[s].attempts);
    EXPECT_LE(jittered.shards[s].backoff_ms, plain.shards[s].backoff_ms);
    plain_backoff += plain.shards[s].backoff_ms;
    jittered_backoff += jittered.shards[s].backoff_ms;
  }
  EXPECT_LT(jittered_backoff, plain_backoff)
      << "seed 1234 draws retries; jitter must shave some waiting";

  const auto replay = lk::link_sharded(fx.clean, fx.error, config);
  for (std::size_t s = 0; s < replay.shards.size(); ++s) {
    EXPECT_DOUBLE_EQ(replay.shards[s].backoff_ms,
                     jittered.shards[s].backoff_ms);
  }
}

TEST(Sharded, SchemeNames) {
  EXPECT_STREQ(
      lk::partition_scheme_name(lk::PartitionScheme::kHashLastName),
      "hash(LN)");
  EXPECT_STREQ(
      lk::partition_scheme_name(lk::PartitionScheme::kReplicateRight),
      "replicate-right");
}

}  // namespace
