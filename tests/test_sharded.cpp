#include "linkage/sharded.hpp"

#include <gtest/gtest.h>

#include "linkage/person_gen.hpp"
#include "util/rng.hpp"

namespace {

namespace lk = fbf::linkage;
using fbf::util::Rng;

struct Fixture {
  std::vector<lk::PersonRecord> clean;
  std::vector<lk::PersonRecord> error;

  explicit Fixture(std::size_t n, std::uint64_t seed = 5) {
    Rng rng(seed);
    clean = lk::generate_people(n, rng);
    lk::RecordErrorModel model;
    model.field_typo_rate = 0.25;
    error = lk::make_error_records(clean, model, rng);
  }
};

lk::ShardedConfig make_config(std::size_t shards,
                              lk::PartitionScheme scheme) {
  lk::ShardedConfig config;
  config.n_shards = shards;
  config.scheme = scheme;
  config.link.comparator =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  return config;
}

TEST(Sharded, ReplicateRightIsLossless) {
  const Fixture fx(120);
  const auto baseline = lk::link_exhaustive(
      fx.clean, fx.error, make_config(1, lk::PartitionScheme::kReplicateRight).link);
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    const auto result = lk::link_sharded(
        fx.clean, fx.error,
        make_config(shards, lk::PartitionScheme::kReplicateRight));
    EXPECT_EQ(result.total_matches, baseline.matches) << shards;
    EXPECT_EQ(result.total_true_positives, baseline.true_positives);
    // Broadcast: total pair count equals the exhaustive product.
    EXPECT_EQ(result.total_pairs, baseline.candidate_pairs);
  }
}

TEST(Sharded, ReplicateRightSlicesLeftEvenly) {
  const Fixture fx(100);
  const auto result = lk::link_sharded(
      fx.clean, fx.error,
      make_config(4, lk::PartitionScheme::kReplicateRight));
  ASSERT_EQ(result.shards.size(), 4u);
  for (const auto& shard : result.shards) {
    EXPECT_EQ(shard.left_count, 25u);
    EXPECT_EQ(shard.right_count, 100u);
  }
}

TEST(Sharded, HashPartitioningReducesWork) {
  const Fixture fx(150);
  const auto broadcast = lk::link_sharded(
      fx.clean, fx.error,
      make_config(4, lk::PartitionScheme::kReplicateRight));
  const auto hashed = lk::link_sharded(
      fx.clean, fx.error, make_config(4, lk::PartitionScheme::kHashLastName));
  EXPECT_LT(hashed.total_pairs, broadcast.total_pairs / 2);
}

TEST(Sharded, HashOnNoisyKeyLosesRecall) {
  // Typos in the last name move records across shards, so hash(LN)
  // must lose true pairs relative to replicate-right — the failure mode
  // this module exists to measure.
  const Fixture fx(400);
  const auto lossless = lk::link_sharded(
      fx.clean, fx.error,
      make_config(8, lk::PartitionScheme::kReplicateRight));
  const auto hashed = lk::link_sharded(
      fx.clean, fx.error, make_config(8, lk::PartitionScheme::kHashLastName));
  EXPECT_LT(hashed.total_true_positives, lossless.total_true_positives);
}

TEST(Sharded, SoundexKeyRecallAtLeastRawKey) {
  // Soundex canonicalizes many single-edit misspellings to the same code,
  // so its shard assignment survives more typos than raw hashing.
  const Fixture fx(400);
  const auto raw = lk::link_sharded(
      fx.clean, fx.error, make_config(8, lk::PartitionScheme::kHashLastName));
  const auto sdx = lk::link_sharded(
      fx.clean, fx.error,
      make_config(8, lk::PartitionScheme::kHashSoundexLastName));
  EXPECT_GE(sdx.total_true_positives, raw.total_true_positives);
}

TEST(Sharded, StatsAreInternallyConsistent) {
  const Fixture fx(100);
  const auto result = lk::link_sharded(
      fx.clean, fx.error, make_config(4, lk::PartitionScheme::kHashLastName));
  std::uint64_t pairs = 0;
  std::uint64_t matches = 0;
  double sum_ms = 0.0;
  double max_ms = 0.0;
  for (const auto& shard : result.shards) {
    pairs += shard.pairs;
    matches += shard.matches;
    sum_ms += shard.link_ms;
    max_ms = std::max(max_ms, shard.link_ms);
    EXPECT_EQ(shard.pairs,
              static_cast<std::uint64_t>(shard.left_count) *
                  shard.right_count);
  }
  EXPECT_EQ(result.total_pairs, pairs);
  EXPECT_EQ(result.total_matches, matches);
  EXPECT_DOUBLE_EQ(result.sum_ms, sum_ms);
  EXPECT_DOUBLE_EQ(result.makespan_ms, max_ms);
  EXPECT_GE(result.imbalance(), 1.0 - 1e-9);
}

TEST(Sharded, SingleShardEqualsExhaustive) {
  const Fixture fx(80);
  const auto config = make_config(1, lk::PartitionScheme::kHashLastName);
  const auto sharded = lk::link_sharded(fx.clean, fx.error, config);
  const auto exhaustive = lk::link_exhaustive(fx.clean, fx.error, config.link);
  EXPECT_EQ(sharded.total_matches, exhaustive.matches);
  EXPECT_EQ(sharded.total_true_positives, exhaustive.true_positives);
}

TEST(Sharded, SchemeNames) {
  EXPECT_STREQ(
      lk::partition_scheme_name(lk::PartitionScheme::kHashLastName),
      "hash(LN)");
  EXPECT_STREQ(
      lk::partition_scheme_name(lk::PartitionScheme::kReplicateRight),
      "replicate-right");
}

}  // namespace
