#include <gtest/gtest.h>

#include <sstream>

#include "experiments/curves.hpp"
#include "experiments/ladder.hpp"
#include "experiments/protocol.hpp"

namespace {

namespace ex = fbf::experiments;
namespace c = fbf::core;
namespace dg = fbf::datagen;

ex::ExperimentConfig tiny_config() {
  ex::ExperimentConfig config;
  config.n = 120;
  config.repeats = 3;
  config.seed = 2024;
  return config;
}

TEST(Protocol, DlBaselineHasNoType2Errors) {
  const auto dataset = ex::build_dataset(dg::FieldKind::kSsn, tiny_config());
  const auto row = ex::run_method(dataset, c::Method::kDl, tiny_config());
  EXPECT_EQ(row.type2, 0u);  // every table in the paper: DL misses nothing
  EXPECT_GT(row.time_ms, 0.0);
}

TEST(Protocol, FbfFamilyReproducesDlAccuracyExactly) {
  // The paper's headline claim, at protocol level: FDL/FPDL rows always
  // equal the DL row's Type 1 / Type 2 columns.
  for (const auto kind :
       {dg::FieldKind::kSsn, dg::FieldKind::kLastName,
        dg::FieldKind::kAddress}) {
    const auto config = tiny_config();
    const auto dataset = ex::build_dataset(kind, config);
    const auto dl = ex::run_method(dataset, c::Method::kDl, config);
    for (const auto method :
         {c::Method::kPdl, c::Method::kFdl, c::Method::kFpdl,
          c::Method::kLfdl, c::Method::kLfpdl}) {
      const auto row = ex::run_method(dataset, method, config);
      EXPECT_EQ(row.type1, dl.type1) << c::method_name(method);
      EXPECT_EQ(row.type2, dl.type2) << c::method_name(method);
    }
  }
}

TEST(Protocol, FilterOnlyMethodsHaveNoType2) {
  // Filters are safe: they may over-match (Type 1) but never miss.
  const auto config = tiny_config();
  const auto dataset = ex::build_dataset(dg::FieldKind::kSsn, config);
  for (const auto method : {c::Method::kFbfOnly, c::Method::kLfbfOnly}) {
    const auto row = ex::run_method(dataset, method, config);
    EXPECT_EQ(row.type2, 0u) << c::method_name(method);
  }
}

TEST(Protocol, GenTimeReportedForFbfMethods) {
  const auto config = tiny_config();
  const auto dataset = ex::build_dataset(dg::FieldKind::kSsn, config);
  EXPECT_GT(ex::run_method(dataset, c::Method::kFpdl, config).gen_ms, 0.0);
  EXPECT_EQ(ex::run_method(dataset, c::Method::kDl, config).gen_ms, 0.0);
}

TEST(Protocol, JoinConfigWiring) {
  const auto config = tiny_config();
  const auto join = ex::make_join_config(dg::FieldKind::kAddress,
                                         c::Method::kLfpdl, config);
  EXPECT_EQ(join.field_class, c::FieldClass::kAlphanumeric);
  EXPECT_EQ(join.method, c::Method::kLfpdl);
  EXPECT_EQ(join.k, config.k);
}

TEST(Ladder, StandardLadderShape) {
  const auto methods = ex::standard_ladder();
  ASSERT_EQ(methods.size(), 8u);
  EXPECT_EQ(methods.front(), c::Method::kDl);
  EXPECT_EQ(methods.back(), c::Method::kFbfOnly);
  const auto length = ex::length_ladder();
  ASSERT_EQ(length.size(), 8u);
  EXPECT_EQ(length[4], c::Method::kLengthOnly);
}

TEST(Ladder, RunAndPrint) {
  auto config = tiny_config();
  config.n = 80;
  const auto result =
      ex::run_ladder(dg::FieldKind::kSsn, ex::standard_ladder(), config);
  ASSERT_EQ(result.rows.size(), 8u);
  EXPECT_GT(result.baseline_ms, 0.0);
  ASSERT_NE(result.find(c::Method::kFpdl), nullptr);
  EXPECT_EQ(result.find(c::Method::kFpdl)->type2, 0u);

  std::ostringstream os;
  ex::print_ladder(os, "SSN", result);
  const std::string out = os.str();
  EXPECT_NE(out.find("FPDL"), std::string::npos);
  EXPECT_NE(out.find("Gen"), std::string::npos);
  EXPECT_NE(out.find("Speedup"), std::string::npos);

  std::ostringstream csv;
  ex::print_ladder(csv, "SSN", result, /*csv=*/true);
  EXPECT_NE(csv.str().find("SSN,Type 1,Type 2"), std::string::npos);

  std::ostringstream counters;
  ex::print_counters(counters, *result.find(c::Method::kFpdl),
                     result.rows.front().stats.pairs);
  EXPECT_NE(counters.str().find("fbf_pass"), std::string::npos);
}

TEST(Curves, SweepPointsHelper) {
  const auto points = ex::sweep_points(1000, 4000, 1000);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points.front(), 1000u);
  EXPECT_EQ(points.back(), 4000u);
}

TEST(Curves, RunCurvesProducesMonotoneFbfAdvantage) {
  ex::CurveConfig config;
  config.ns = {50, 100, 200};
  config.datasets_per_n = 1;
  config.repeats = 2;
  config.seed = 7;
  const c::Method methods[] = {c::Method::kDl, c::Method::kFpdl};
  const auto series =
      ex::run_curves(dg::FieldKind::kLastName, methods, config);
  ASSERT_EQ(series.size(), 2u);
  ASSERT_EQ(series[0].points.size(), 3u);
  // Times grow with n for both methods.
  EXPECT_LT(series[0].points[0].time_ms, series[0].points[2].time_ms);
  // FPDL beats DL at the largest n.
  EXPECT_LT(series[1].points[2].time_ms, series[0].points[2].time_ms);
  // A quadratic fit exists for both.
  EXPECT_EQ(series[0].fit.coeffs.size(), 3u);
  EXPECT_EQ(series[1].fit.coeffs.size(), 3u);

  std::ostringstream os;
  ex::print_polyfit_table(os, series);
  EXPECT_NE(os.str().find("R^2"), std::string::npos);
  std::ostringstream curve_os;
  ex::print_curve_table(curve_os, series);
  EXPECT_NE(curve_os.str().find("FPDL"), std::string::npos);
  std::ostringstream speed_os;
  ex::print_speedup_by_n(speed_os, series, c::Method::kDl, c::Method::kFpdl);
  EXPECT_NE(speed_os.str().find("speedup"), std::string::npos);
}

TEST(Curves, MissingMethodHandledGracefully) {
  std::ostringstream os;
  ex::print_speedup_by_n(os, {}, c::Method::kDl, c::Method::kFpdl);
  EXPECT_NE(os.str().find("not in sweep"), std::string::npos);
}

}  // namespace
