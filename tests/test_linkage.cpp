#include <gtest/gtest.h>

#include "linkage/comparator.hpp"
#include "linkage/engine.hpp"
#include "linkage/incremental.hpp"
#include "linkage/person_gen.hpp"
#include "linkage/record.hpp"
#include "util/rng.hpp"

namespace {

namespace lk = fbf::linkage;
using fbf::util::Rng;

lk::PersonRecord sample_person() {
  lk::PersonRecord p;
  p.id = 1;
  p.first_name = "MARY";
  p.last_name = "JOHNSON";
  p.address = "1801 N BROAD ST";
  p.phone = "2155551234";
  p.gender = "F";
  p.ssn = "123121234";
  p.birth_date = "02251980";
  return p;
}

TEST(Record, FieldAccessorRoundTrip) {
  lk::PersonRecord p = sample_person();
  for (const lk::RecordField f : lk::all_record_fields()) {
    p.field(f) = "X";
    EXPECT_EQ(p.field(f), "X") << lk::record_field_name(f);
  }
}

TEST(Record, AllFieldsEnumerated) {
  EXPECT_EQ(lk::all_record_fields().size(), lk::kRecordFieldCount);
}

TEST(PersonGen, GeneratesCompleteRecords) {
  Rng rng(1);
  const auto people = lk::generate_people(200, rng);
  ASSERT_EQ(people.size(), 200u);
  for (std::size_t i = 0; i < people.size(); ++i) {
    EXPECT_EQ(people[i].id, i);
    for (const lk::RecordField f : lk::all_record_fields()) {
      EXPECT_FALSE(people[i].field(f).empty())
          << lk::record_field_name(f);
    }
  }
}

TEST(PersonGen, ErrorCopyPreservesIds) {
  Rng rng(2);
  const auto clean = lk::generate_people(150, rng);
  const auto error = lk::make_error_records(clean, {}, rng);
  ASSERT_EQ(error.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(error[i].id, clean[i].id);
  }
}

TEST(PersonGen, SsnMissingRateApproximatelyModel) {
  Rng rng(3);
  const auto clean = lk::generate_people(2000, rng);
  lk::RecordErrorModel model;
  model.ssn_missing_rate = 0.4;  // paper: >40% missing
  const auto error = lk::make_error_records(clean, model, rng);
  int missing = 0;
  for (const auto& r : error) {
    if (r.ssn.empty()) {
      ++missing;
    }
  }
  EXPECT_NEAR(static_cast<double>(missing) / 2000.0, 0.4, 0.05);
}

TEST(PersonGen, EveryErrorRecordDiffersFromClean) {
  Rng rng(4);
  const auto clean = lk::generate_people(300, rng);
  lk::RecordErrorModel model;
  model.min_typo_fields = 1;
  const auto error = lk::make_error_records(clean, model, rng);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    bool differs = false;
    for (const lk::RecordField f : lk::all_record_fields()) {
      if (clean[i].field(f) != error[i].field(f)) {
        differs = true;
      }
    }
    EXPECT_TRUE(differs) << "record " << i;
  }
}

TEST(Comparator, DefaultConfigShape) {
  const auto config =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  EXPECT_EQ(config.rules.size(), lk::kRecordFieldCount);
  double total = 0.0;
  for (const auto& rule : config.rules) {
    total += rule.weight;
    if (rule.field == lk::RecordField::kGender) {
      EXPECT_EQ(rule.strategy, lk::FieldStrategy::kExact);
    } else {
      EXPECT_EQ(rule.strategy, lk::FieldStrategy::kFpdl);
    }
  }
  EXPECT_DOUBLE_EQ(total, 9.0);
  EXPECT_TRUE(lk::config_uses_fbf(config));
  EXPECT_FALSE(lk::config_uses_fbf(
      lk::make_point_threshold_config(lk::FieldStrategy::kDl)));
}

TEST(Comparator, IdenticalRecordsScoreFullPoints) {
  const auto config = lk::make_point_threshold_config(lk::FieldStrategy::kDl);
  const lk::PersonRecord p = sample_person();
  lk::CompareCounters counters;
  EXPECT_DOUBLE_EQ(lk::score_pair(p, p, nullptr, nullptr, config, counters),
                   9.0);
  EXPECT_EQ(counters.field_comparisons, 7u);
}

TEST(Comparator, MissingFieldsScoreZeroPoints) {
  const auto config = lk::make_point_threshold_config(lk::FieldStrategy::kDl);
  lk::PersonRecord a = sample_person();
  lk::PersonRecord b = sample_person();
  b.ssn.clear();
  lk::CompareCounters counters;
  EXPECT_DOUBLE_EQ(lk::score_pair(a, b, nullptr, nullptr, config, counters),
                   9.0 - 2.5);
}

TEST(Comparator, SingleTypoStillMatchesViaDl) {
  const auto config = lk::make_point_threshold_config(lk::FieldStrategy::kDl);
  lk::PersonRecord a = sample_person();
  lk::PersonRecord b = sample_person();
  b.last_name = "JOHNSTON";  // one insertion
  lk::CompareCounters counters;
  EXPECT_DOUBLE_EQ(lk::score_pair(a, b, nullptr, nullptr, config, counters),
                   9.0);
}

TEST(Comparator, FbfStrategiesMatchDlDecisions) {
  Rng rng(5);
  const auto clean = lk::generate_people(80, rng);
  const auto error = lk::make_error_records(clean, {}, rng);
  const auto dl_cfg = lk::make_point_threshold_config(lk::FieldStrategy::kDl);
  const auto fdl_cfg =
      lk::make_point_threshold_config(lk::FieldStrategy::kFdl);
  const auto fpdl_cfg =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto sa = lk::build_record_signatures(clean[i]);
    for (std::size_t j = 0; j < error.size(); ++j) {
      const auto sb = lk::build_record_signatures(error[j]);
      lk::CompareCounters c1, c2, c3;
      const double dl_score =
          lk::score_pair(clean[i], error[j], nullptr, nullptr, dl_cfg, c1);
      EXPECT_DOUBLE_EQ(
          lk::score_pair(clean[i], error[j], &sa, &sb, fdl_cfg, c2), dl_score);
      EXPECT_DOUBLE_EQ(
          lk::score_pair(clean[i], error[j], &sa, &sb, fpdl_cfg, c3),
          dl_score);
    }
  }
}

TEST(Engine, ExhaustiveLinkFindsTruePairs) {
  Rng rng(6);
  const auto clean = lk::generate_people(120, rng);
  lk::RecordErrorModel model;
  model.field_typo_rate = 0.2;
  const auto error = lk::make_error_records(clean, model, rng);
  lk::LinkConfig config;
  config.comparator = lk::make_point_threshold_config(lk::FieldStrategy::kDl);
  const auto stats = lk::link_exhaustive(clean, error, config);
  EXPECT_EQ(stats.candidate_pairs, 120u * 120u);
  // The threshold tolerates the error model: expect high recall.
  EXPECT_GE(stats.true_positives, 110u);
  EXPECT_EQ(stats.matches, stats.true_positives + stats.false_positives);
}

TEST(Engine, FbfStrategiesReproduceDlResults) {
  Rng rng(7);
  const auto clean = lk::generate_people(100, rng);
  const auto error = lk::make_error_records(clean, {}, rng);
  lk::LinkConfig dl_config;
  dl_config.comparator =
      lk::make_point_threshold_config(lk::FieldStrategy::kDl);
  const auto baseline = lk::link_exhaustive(clean, error, dl_config);
  for (const auto strategy :
       {lk::FieldStrategy::kPdl, lk::FieldStrategy::kFdl,
        lk::FieldStrategy::kFpdl}) {
    lk::LinkConfig config;
    config.comparator = lk::make_point_threshold_config(strategy);
    const auto stats = lk::link_exhaustive(clean, error, config);
    EXPECT_EQ(stats.matches, baseline.matches)
        << lk::field_strategy_name(strategy);
    EXPECT_EQ(stats.true_positives, baseline.true_positives);
    EXPECT_EQ(stats.false_positives, baseline.false_positives);
  }
}

TEST(Engine, FbfReducesVerifyCalls) {
  Rng rng(8);
  const auto clean = lk::generate_people(100, rng);
  const auto error = lk::make_error_records(clean, {}, rng);
  lk::LinkConfig dl_config;
  dl_config.comparator =
      lk::make_point_threshold_config(lk::FieldStrategy::kDl);
  lk::LinkConfig fpdl_config;
  fpdl_config.comparator =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  const auto dl_stats = lk::link_exhaustive(clean, error, dl_config);
  const auto fpdl_stats = lk::link_exhaustive(clean, error, fpdl_config);
  EXPECT_LT(fpdl_stats.counters.verify_calls,
            dl_stats.counters.verify_calls / 5)
      << "FBF should prune the vast majority of edit-distance calls";
  EXPECT_GT(fpdl_stats.signature_gen_ms, 0.0);
}

TEST(Engine, ThreadsDoNotChangeResults) {
  Rng rng(9);
  const auto clean = lk::generate_people(80, rng);
  const auto error = lk::make_error_records(clean, {}, rng);
  lk::LinkConfig config;
  config.comparator =
      lk::make_point_threshold_config(lk::FieldStrategy::kFpdl);
  config.exec.threads = 1;
  const auto serial = lk::link_exhaustive(clean, error, config);
  config.exec.threads = 4;
  const auto parallel = lk::link_exhaustive(clean, error, config);
  EXPECT_EQ(parallel.matches, serial.matches);
  EXPECT_EQ(parallel.true_positives, serial.true_positives);
  EXPECT_EQ(parallel.counters.verify_calls, serial.counters.verify_calls);
}

TEST(Engine, CollectMatchesReturnsPairs) {
  Rng rng(10);
  const auto clean = lk::generate_people(50, rng);
  const auto error = lk::make_error_records(clean, {}, rng);
  lk::LinkConfig config;
  config.comparator = lk::make_point_threshold_config(lk::FieldStrategy::kDl);
  config.collect_matches = true;
  const auto stats = lk::link_exhaustive(clean, error, config);
  EXPECT_EQ(stats.match_pairs.size(), stats.matches);
}

TEST(Engine, FalseNegativesAccounting) {
  Rng rng(11);
  const auto clean = lk::generate_people(60, rng);
  const auto error = lk::make_error_records(clean, {}, rng);
  lk::LinkConfig config;
  config.comparator = lk::make_point_threshold_config(lk::FieldStrategy::kDl);
  const auto stats = lk::link_exhaustive(clean, error, config);
  EXPECT_EQ(stats.false_negatives(60), 60 - stats.true_positives);
}

}  // namespace
