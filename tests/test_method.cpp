#include "core/method.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace {

namespace c = fbf::core;

TEST(Method, AllMethodsUniqueNames) {
  std::set<std::string> names;
  for (const c::Method method : c::all_methods()) {
    EXPECT_TRUE(names.insert(c::method_name(method)).second)
        << c::method_name(method);
  }
  EXPECT_EQ(names.size(), 16u);
}

TEST(Method, PaperTableNames) {
  EXPECT_STREQ(c::method_name(c::Method::kDl), "DL");
  EXPECT_STREQ(c::method_name(c::Method::kFpdl), "FPDL");
  EXPECT_STREQ(c::method_name(c::Method::kLengthOnly), "LF");
  EXPECT_STREQ(c::method_name(c::Method::kLfbfOnly), "LFBF");
  EXPECT_STREQ(c::method_name(c::Method::kSoundex), "SDX");
}

TEST(Method, ParseRoundTrip) {
  for (const c::Method method : c::all_methods()) {
    const auto parsed = c::parse_method(c::method_name(method));
    ASSERT_TRUE(parsed.has_value()) << c::method_name(method);
    EXPECT_EQ(*parsed, method);
  }
}

TEST(Method, ParseCaseInsensitive) {
  EXPECT_EQ(c::parse_method("fpdl"), c::Method::kFpdl);
  EXPECT_EQ(c::parse_method("Jaro"), c::Method::kJaro);
  EXPECT_EQ(c::parse_method("lfbf"), c::Method::kLfbfOnly);
}

TEST(Method, ParseRejectsUnknown) {
  EXPECT_FALSE(c::parse_method("").has_value());
  EXPECT_FALSE(c::parse_method("NOPE").has_value());
  EXPECT_FALSE(c::parse_method("very-long-method-name").has_value());
}

TEST(Method, FlagConsistency) {
  // LF* methods use both filters; F* only FBF; L* only length.
  EXPECT_TRUE(c::method_uses_fbf(c::Method::kLfpdl));
  EXPECT_TRUE(c::method_uses_length(c::Method::kLfpdl));
  EXPECT_TRUE(c::method_uses_fbf(c::Method::kFdl));
  EXPECT_FALSE(c::method_uses_length(c::Method::kFdl));
  EXPECT_FALSE(c::method_uses_fbf(c::Method::kLpdl));
  EXPECT_TRUE(c::method_uses_length(c::Method::kLpdl));
  EXPECT_FALSE(c::method_uses_fbf(c::Method::kDl));
  EXPECT_FALSE(c::method_uses_length(c::Method::kJaro));
}

TEST(Method, VerifierAssignment) {
  EXPECT_EQ(c::method_verifier(c::Method::kDl), c::Verifier::kDl);
  EXPECT_EQ(c::method_verifier(c::Method::kLfdl), c::Verifier::kDl);
  EXPECT_EQ(c::method_verifier(c::Method::kFpdl), c::Verifier::kPdl);
  EXPECT_EQ(c::method_verifier(c::Method::kFbfOnly), c::Verifier::kNone);
  EXPECT_EQ(c::method_verifier(c::Method::kLengthOnly), c::Verifier::kNone);
  EXPECT_EQ(c::method_verifier(c::Method::kJaro), c::Verifier::kNone);
}

TEST(Method, SimilarityFlag) {
  EXPECT_TRUE(c::method_is_similarity(c::Method::kJaro));
  EXPECT_TRUE(c::method_is_similarity(c::Method::kWink));
  EXPECT_FALSE(c::method_is_similarity(c::Method::kDl));
  EXPECT_FALSE(c::method_is_similarity(c::Method::kFbfOnly));
}

}  // namespace
