#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace {

using fbf::util::Rng;
using fbf::util::SplitMix64;

TEST(SplitMix, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                    (1ull << 32), (1ull << 62)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  // Each bucket expects 10,000 +- a few hundred; allow generous 5% slack.
  for (const int count : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.05);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeDegenerate) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.range(5, 5), 5);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(23);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, PickWeightedZeroWeightNeverChosen) {
  Rng rng(31);
  const double weights[] = {1.0, 0.0, 2.0};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(rng.pick_weighted(weights), 1u);
  }
}

TEST(Rng, PickWeightedProportions) {
  Rng rng(37);
  const double weights[] = {1.0, 3.0};
  int count1 = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.pick_weighted(weights) == 1) {
      ++count1;
    }
  }
  EXPECT_NEAR(static_cast<double>(count1) / kDraws, 0.75, 0.02);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(41);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = items;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, items);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  // The child stream should not replay the parent's output.
  Rng parent_replica(43);
  (void)parent_replica.next();  // consumed by split()
  EXPECT_NE(child.next(), parent_replica.next());
}

TEST(Fnv1a, StableKnownValue) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(fbf::util::fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_NE(fbf::util::fnv1a64("LN"), fbf::util::fnv1a64("FN"));
  static_assert(fbf::util::fnv1a64("a") != fbf::util::fnv1a64("b"));
}

}  // namespace
