#include "datagen/dataset.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/dates.hpp"
#include "datagen/phone.hpp"
#include "datagen/ssn.hpp"
#include "metrics/damerau.hpp"

namespace {

namespace dg = fbf::datagen;

TEST(FieldKind, NamesAndClasses) {
  EXPECT_STREQ(dg::field_kind_name(dg::FieldKind::kSsn), "SSN");
  EXPECT_STREQ(dg::field_kind_name(dg::FieldKind::kLastName), "LN");
  EXPECT_EQ(dg::field_class_of(dg::FieldKind::kSsn),
            fbf::core::FieldClass::kNumeric);
  EXPECT_EQ(dg::field_class_of(dg::FieldKind::kFirstName),
            fbf::core::FieldClass::kAlpha);
  EXPECT_EQ(dg::field_class_of(dg::FieldKind::kAddress),
            fbf::core::FieldClass::kAlphanumeric);
}

TEST(FieldKind, FixedLengthFlags) {
  EXPECT_TRUE(dg::field_is_fixed_length(dg::FieldKind::kSsn));
  EXPECT_TRUE(dg::field_is_fixed_length(dg::FieldKind::kPhone));
  EXPECT_TRUE(dg::field_is_fixed_length(dg::FieldKind::kBirthDate));
  EXPECT_FALSE(dg::field_is_fixed_length(dg::FieldKind::kLastName));
  EXPECT_FALSE(dg::field_is_fixed_length(dg::FieldKind::kAddress));
}

TEST(FieldKind, AllKindsTable5Order) {
  const auto all = dg::all_field_kinds();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all.front(), dg::FieldKind::kFirstName);
  EXPECT_EQ(all.back(), dg::FieldKind::kAddress);
}

class DatasetPerField : public ::testing::TestWithParam<dg::FieldKind> {};

TEST_P(DatasetPerField, PairedByIndexWithOneEdit) {
  const auto dataset = dg::build_paired_dataset(GetParam(), 300, 12345).value();
  ASSERT_EQ(dataset.clean.size(), 300u);
  ASSERT_EQ(dataset.error.size(), 300u);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(fbf::metrics::dl_distance(dataset.clean[i], dataset.error[i]),
              1)
        << dataset.clean[i] << " / " << dataset.error[i];
  }
}

TEST_P(DatasetPerField, DeterministicForSeed) {
  const auto a = dg::build_paired_dataset(GetParam(), 100, 777).value();
  const auto b = dg::build_paired_dataset(GetParam(), 100, 777).value();
  EXPECT_EQ(a.clean, b.clean);
  EXPECT_EQ(a.error, b.error);
}

TEST_P(DatasetPerField, DifferentSeedsDifferentData) {
  const auto a = dg::build_paired_dataset(GetParam(), 100, 1).value();
  const auto b = dg::build_paired_dataset(GetParam(), 100, 2).value();
  EXPECT_NE(a.clean, b.clean);
}

TEST_P(DatasetPerField, CleanEntriesUnique) {
  const auto dataset = dg::build_paired_dataset(GetParam(), 500, 31).value();
  const std::unordered_set<std::string> unique(dataset.clean.begin(),
                                               dataset.clean.end());
  EXPECT_EQ(unique.size(), dataset.clean.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, DatasetPerField,
    ::testing::Values(dg::FieldKind::kFirstName, dg::FieldKind::kLastName,
                      dg::FieldKind::kAddress, dg::FieldKind::kPhone,
                      dg::FieldKind::kBirthDate, dg::FieldKind::kSsn),
    [](const auto& param_info) {
      return std::string(dg::field_kind_name(param_info.param));
    });

TEST(Dataset, InvalidShapesComeBackAsStatusNotThrow) {
  const auto empty = dg::build_paired_dataset(dg::FieldKind::kLastName, 0, 1);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), fbf::util::StatusCode::kInvalidArgument);
  const auto no_edits =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 10, 1, /*edits=*/0);
  ASSERT_FALSE(no_edits.ok());
  EXPECT_EQ(no_edits.status().code(),
            fbf::util::StatusCode::kInvalidArgument);
}

TEST(Dataset, MultiEditExtension) {
  // true DL is a metric, so stacking 3 single edits keeps true_dl <= 3
  // (OSA "DL" can exceed the edit count — triangle inequality violation).
  const auto dataset =
      dg::build_paired_dataset(dg::FieldKind::kLastName, 200, 5, /*edits=*/3).value();
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_LE(
        fbf::metrics::true_dl_distance(dataset.clean[i], dataset.error[i]),
        3);
  }
}

TEST(Dataset, CleanFieldValuesAreDomainValid) {
  const auto ssn = dg::build_paired_dataset(dg::FieldKind::kSsn, 200, 8).value();
  for (const auto& s : ssn.clean) {
    EXPECT_TRUE(dg::is_valid_ssn(s)) << s;
  }
  const auto ph = dg::build_paired_dataset(dg::FieldKind::kPhone, 200, 8).value();
  for (const auto& s : ph.clean) {
    EXPECT_TRUE(dg::is_valid_nanp(s)) << s;
  }
  const auto bi = dg::build_paired_dataset(dg::FieldKind::kBirthDate, 200, 8).value();
  for (const auto& s : bi.clean) {
    EXPECT_TRUE(dg::is_valid_birthdate(s)) << s;
  }
}

}  // namespace
