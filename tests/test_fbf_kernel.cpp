// Equivalence fuzz for the batched filter kernels: every kernel variant
// must reproduce the u32 per-pair FindDiffBits path bit for bit — same
// survivor bitmaps, same survivor counts — across layouts, thresholds,
// tile widths, bitmap word boundaries, query block sizes (filter_block)
// and pruning settings.
#include "core/fbf_kernel.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/find_diff_bits.hpp"
#include "core/packed_signature_store.hpp"
#include "core/signature.hpp"
#include "datagen/dataset.hpp"
#include "util/rng.hpp"

namespace {

using fbf::core::all_kernel_kinds;
using fbf::core::best_kernel;
using fbf::core::FieldClass;
using fbf::core::filter_block;
using fbf::core::filter_tile;
using fbf::core::kernel_from_name;
using fbf::core::kernel_name;
using fbf::core::kernel_supported;
using fbf::core::KernelKind;
using fbf::core::kMaxBlockQueries;
using fbf::core::make_signature;
using fbf::core::max_tail_popcount;
using fbf::core::PackedSignatureStore;
using fbf::core::Signature;
using fbf::core::tile_kernel_label;

namespace dg = fbf::datagen;

/// Every kind the running CPU can execute (scalar64 always qualifies).
std::vector<KernelKind> kernels_under_test() {
  std::vector<KernelKind> kinds;
  for (const KernelKind kind : all_kernel_kinds()) {
    if (kernel_supported(kind)) {
      kinds.push_back(kind);
    }
  }
  return kinds;
}

/// Reference: per-candidate u32 FindDiffBits over classic signatures.
std::vector<bool> reference_pass(const std::vector<std::string>& query,
                                 std::size_t qi,
                                 const std::vector<std::string>& cands,
                                 FieldClass cls, int alpha_words,
                                 int threshold) {
  const Signature q = make_signature(query[qi], cls, alpha_words);
  std::vector<bool> pass(cands.size());
  for (std::size_t j = 0; j < cands.size(); ++j) {
    const Signature c = make_signature(cands[j], cls, alpha_words);
    pass[j] = fbf::core::find_diff_bits(q, c) <= threshold;
  }
  return pass;
}

void check_layout(dg::FieldKind kind, FieldClass cls, int alpha_words,
                  std::size_t count, int threshold) {
  const auto dataset =
      dg::build_paired_dataset(kind, std::max<std::size_t>(count, 2), 911).value();
  std::vector<std::string> cands(dataset.error.begin(),
                                 dataset.error.begin() +
                                     static_cast<std::ptrdiff_t>(count));
  const PackedSignatureStore queries(dataset.clean, cls, alpha_words);
  const PackedSignatureStore packed(cands, cls, alpha_words);
  const bool two = packed.words() == 2;
  std::vector<std::uint64_t> bitmap((count + 63) / 64 + 1);
  for (const KernelKind kernel : kernels_under_test()) {
    for (const std::size_t qi : {std::size_t{0}, count / 2, count - 1}) {
      const auto expected =
          reference_pass(dataset.clean, qi, cands, cls, alpha_words,
                         threshold);
      bitmap.assign(bitmap.size(), ~0ull);  // detect missing overwrites
      const std::size_t survivors = filter_tile(
          queries.word(0, qi), packed.plane(0),
          two ? queries.word(1, qi) : 0, two ? packed.plane(1) : nullptr,
          count, threshold, bitmap.data(), kernel);
      std::size_t expected_survivors = 0;
      for (std::size_t j = 0; j < count; ++j) {
        const bool bit = (bitmap[j / 64] >> (j % 64)) & 1u;
        ASSERT_EQ(bit, expected[j])
            << kernel_name(kernel) << " "
            << fbf::core::field_class_name(cls) << " l=" << alpha_words
            << " count=" << count << " thr=" << threshold << " j=" << j;
        expected_survivors += expected[j] ? 1u : 0u;
      }
      EXPECT_EQ(survivors, expected_survivors);
      // Tail bits beyond count in the last bitmap word must be cleared.
      if (count % 64 != 0) {
        const std::uint64_t tail = bitmap[(count - 1) / 64];
        EXPECT_EQ(tail >> (count % 64), 0u);
      }
    }
  }
}

/// filter_block fuzz: every query's bitmap must equal the per-pair
/// reference for any Q (including the > kMaxBlockQueries chunked case),
/// ragged tail tiles, both prune settings and every supported kind.
void check_block(dg::FieldKind kind, FieldClass cls, int alpha_words,
                 std::size_t count, int k) {
  const int threshold = 2 * k;
  const std::size_t pool =
      std::max<std::size_t>(count, 16);  // enough rows for 13 queries
  const auto dataset = dg::build_paired_dataset(kind, pool, 1337).value();
  std::vector<std::string> cands(dataset.error.begin(),
                                 dataset.error.begin() +
                                     static_cast<std::ptrdiff_t>(count));
  const PackedSignatureStore queries(dataset.clean, cls, alpha_words);
  const PackedSignatureStore packed(cands, cls, alpha_words);
  const bool two = packed.words() == 2;
  const int tail_bound = max_tail_popcount(cls, alpha_words);
  const std::size_t words = (count + 63) / 64;
  const std::size_t stride = words + 1;  // probe stride handling too
  for (const std::size_t n_queries :
       {std::size_t{1}, std::size_t{3}, std::size_t{4}, std::size_t{8},
        std::size_t{13}}) {
    std::vector<std::uint64_t> q0(n_queries);
    std::vector<std::uint64_t> q1(n_queries);
    for (std::size_t i = 0; i < n_queries; ++i) {
      q0[i] = queries.word(0, i);
      q1[i] = two ? queries.word(1, i) : 0;
    }
    std::vector<std::uint64_t> bitmaps(n_queries * stride);
    for (const KernelKind kernel : kernels_under_test()) {
      for (const bool prune : {false, true}) {
        bitmaps.assign(bitmaps.size(), ~0ull);
        const std::size_t survivors = filter_block(
            q0.data(), two ? q1.data() : nullptr, n_queries, packed.plane(0),
            two ? packed.plane(1) : nullptr, count, threshold, tail_bound,
            prune, bitmaps.data(), stride, kernel);
        std::size_t expected_total = 0;
        for (std::size_t i = 0; i < n_queries; ++i) {
          const auto expected = reference_pass(dataset.clean, i, cands, cls,
                                               alpha_words, threshold);
          const std::uint64_t* bitmap = bitmaps.data() + i * stride;
          for (std::size_t j = 0; j < count; ++j) {
            const bool bit = (bitmap[j / 64] >> (j % 64)) & 1u;
            ASSERT_EQ(bit, expected[j])
                << kernel_name(kernel) << " "
                << fbf::core::field_class_name(cls) << " l=" << alpha_words
                << " count=" << count << " k=" << k << " Q=" << n_queries
                << " prune=" << prune << " query=" << i << " j=" << j;
            expected_total += expected[j] ? 1u : 0u;
          }
          if (count % 64 != 0) {
            EXPECT_EQ(bitmap[(count - 1) / 64] >> (count % 64), 0u);
          }
        }
        EXPECT_EQ(survivors, expected_total);
      }
    }
  }
}

TEST(FbfKernel, MatchesPerPairScanAlphaL2) {
  for (const std::size_t count : {1u, 3u, 63u, 64u, 65u, 127u, 200u, 256u}) {
    check_layout(dg::FieldKind::kLastName, FieldClass::kAlpha, 2, count, 2);
  }
}

TEST(FbfKernel, MatchesPerPairScanAlphaL1) {
  check_layout(dg::FieldKind::kLastName, FieldClass::kAlpha, 1, 150, 2);
}

TEST(FbfKernel, MatchesPerPairScanNumeric) {
  for (const int threshold : {0, 2, 4, 6}) {
    check_layout(dg::FieldKind::kSsn, FieldClass::kNumeric, 2, 200,
                 threshold);
  }
}

TEST(FbfKernel, MatchesPerPairScanAlphanumericTwoPlanes) {
  for (const std::size_t count : {5u, 64u, 130u, 256u}) {
    check_layout(dg::FieldKind::kAddress, FieldClass::kAlphanumeric, 2,
                 count, 2);
  }
}

TEST(FbfKernel, FilterBlockMatchesPerPairAlphaL2) {
  for (const std::size_t count : {1u, 5u, 64u, 65u, 200u, 256u}) {
    for (const int k : {1, 2}) {
      check_block(dg::FieldKind::kLastName, FieldClass::kAlpha, 2, count, k);
    }
  }
}

TEST(FbfKernel, FilterBlockMatchesPerPairAlphaL1) {
  for (const int k : {1, 2}) {
    check_block(dg::FieldKind::kLastName, FieldClass::kAlpha, 1, 131, k);
  }
}

TEST(FbfKernel, FilterBlockMatchesPerPairNumeric) {
  for (const std::size_t count : {3u, 64u, 193u, 256u}) {
    for (const int k : {1, 2}) {
      check_block(dg::FieldKind::kSsn, FieldClass::kNumeric, 2, count, k);
    }
  }
}

TEST(FbfKernel, FilterBlockMatchesPerPairAlphanumericTwoPlanes) {
  for (const std::size_t count : {7u, 64u, 150u, 256u}) {
    for (const int k : {1, 2}) {
      check_block(dg::FieldKind::kAddress, FieldClass::kAlphanumeric, 2,
                  count, k);
    }
  }
}

/// Random u64 planes (not derived from strings): all kinds must agree on
/// arbitrary bit patterns, with pruning on or off, for single-plane and
/// two-plane inputs, against the scalar64 baseline.
TEST(FbfKernel, AllKindsAgreeOnRandomPlanes) {
  fbf::util::Rng rng(4242);
  constexpr std::size_t kCount = 333;
  constexpr std::size_t kWords = (kCount + 63) / 64;
  fbf::core::AlignedPlane p0(kCount);
  fbf::core::AlignedPlane p1(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    p0.data()[i] = rng.next();
    p1.data()[i] = rng.next();
  }
  const auto kinds = kernels_under_test();
  fbf::core::AlignedPlane p1_masked(kCount);
  std::vector<std::uint64_t> queries0(kMaxBlockQueries);
  std::vector<std::uint64_t> queries1(kMaxBlockQueries);
  std::vector<std::uint64_t> baseline(kMaxBlockQueries * kWords);
  std::vector<std::uint64_t> other(kMaxBlockQueries * kWords);
  for (int trial = 0; trial < 40; ++trial) {
    const int threshold = static_cast<int>(rng.next() % 70);
    // A tail bound is only sound when it dominates every plane-1 diff;
    // confine plane-1 bits to the low tail_bound positions so the random
    // bound genuinely does (mirrors max_tail_popcount <= used bits).
    const int tail_bound = static_cast<int>(rng.next() % 65);
    const std::uint64_t tail_mask =
        tail_bound == 64 ? ~0ull : (1ull << tail_bound) - 1;
    for (std::size_t i = 0; i < kMaxBlockQueries; ++i) {
      queries0[i] = rng.next();
      queries1[i] = rng.next() & tail_mask;
    }
    for (std::size_t i = 0; i < p1.size(); ++i) {
      p1_masked.data()[i] = p1.data()[i] & tail_mask;
    }
    const bool two = (trial % 2) == 0;
    const std::size_t n_queries =
        1 + static_cast<std::size_t>(trial) % kMaxBlockQueries;
    const std::size_t s = filter_block(
        queries0.data(), two ? queries1.data() : nullptr, n_queries,
        p0.data(), two ? p1_masked.data() : nullptr, kCount, threshold,
        tail_bound, /*prune=*/false, baseline.data(), kWords,
        KernelKind::kScalar64);
    for (const KernelKind kernel : kinds) {
      for (const bool prune : {false, true}) {
        const std::size_t o = filter_block(
            queries0.data(), two ? queries1.data() : nullptr, n_queries,
            p0.data(), two ? p1_masked.data() : nullptr, kCount, threshold,
            tail_bound, prune, other.data(), kWords, kernel);
        EXPECT_EQ(s, o) << "trial " << trial << " " << kernel_name(kernel)
                        << " prune=" << prune;
        for (std::size_t w = 0; w < n_queries * kWords; ++w) {
          ASSERT_EQ(baseline[w], other[w])
              << "trial " << trial << " " << kernel_name(kernel)
              << " prune=" << prune << " word " << w;
        }
      }
    }
  }
}

/// filter_tile is exactly filter_block with one query.
TEST(FbfKernel, FilterTileEqualsSingleQueryBlock) {
  fbf::util::Rng rng(99);
  constexpr std::size_t kCount = 201;
  constexpr std::size_t kWords = (kCount + 63) / 64;
  fbf::core::AlignedPlane p0(kCount);
  fbf::core::AlignedPlane p1(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    p0.data()[i] = rng.next();
    p1.data()[i] = rng.next();
  }
  for (const KernelKind kernel : kernels_under_test()) {
    for (int trial = 0; trial < 10; ++trial) {
      const std::uint64_t q0 = rng.next();
      const std::uint64_t q1 = rng.next();
      const int threshold = static_cast<int>(rng.next() % 70);
      const bool two = (trial % 2) == 0;
      std::uint64_t tile_bm[kWords];
      std::uint64_t block_bm[kWords];
      const std::size_t st =
          filter_tile(q0, p0.data(), q1, two ? p1.data() : nullptr, kCount,
                      threshold, tile_bm, kernel);
      const std::size_t sb = filter_block(
          &q0, two ? &q1 : nullptr, 1, p0.data(), two ? p1.data() : nullptr,
          kCount, threshold, /*tail_bound=*/64, /*prune=*/true, block_bm,
          kWords, kernel);
      EXPECT_EQ(st, sb);
      for (std::size_t w = 0; w < kWords; ++w) {
        ASSERT_EQ(tile_bm[w], block_bm[w]) << kernel_name(kernel);
      }
    }
  }
}

TEST(FbfKernel, ZeroCountIsEmpty) {
  std::uint64_t bitmap[1] = {~0ull};
  const std::size_t survivors =
      filter_tile(0, nullptr, 0, nullptr, 0, 2, bitmap, KernelKind::kScalar64);
  EXPECT_EQ(survivors, 0u);
  const std::uint64_t q0 = 0;
  EXPECT_EQ(filter_block(&q0, nullptr, 0, nullptr, nullptr, 64, 2, 0, true,
                         bitmap, 1, KernelKind::kScalar64),
            0u);
}

TEST(FbfKernel, KernelNameTableRoundTrips) {
  for (const KernelKind kind : all_kernel_kinds()) {
    const auto parsed = kernel_from_name(kernel_name(kind));
    ASSERT_TRUE(parsed.has_value()) << kernel_name(kind);
    EXPECT_EQ(*parsed, kind);
    // The pipeline-facing label is the short name with a "tile-" prefix.
    EXPECT_EQ(std::string(tile_kernel_label(kind)),
              std::string("tile-") + kernel_name(kind));
  }
  EXPECT_FALSE(kernel_from_name("no-such-kernel").has_value());
  EXPECT_FALSE(kernel_from_name("").has_value());
  EXPECT_STREQ(kernel_name(KernelKind::kScalar64), "scalar64");
  EXPECT_STREQ(kernel_name(KernelKind::kAvx2), "avx2");
  EXPECT_STREQ(kernel_name(KernelKind::kAvx512), "avx512");
  EXPECT_STREQ(kernel_name(KernelKind::kNeon), "neon");
  EXPECT_TRUE(kernel_supported(KernelKind::kScalar64));
}

/// FBF_FORCE_KERNEL overrides dispatch per call; unsupported or unknown
/// values fall back to the detected best.  The original environment is
/// restored so this test composes with a CI leg that exports the
/// variable for the whole suite.
TEST(FbfKernel, ForceKernelEnvOverride) {
  const char* original = std::getenv("FBF_FORCE_KERNEL");
  const std::string saved = original != nullptr ? original : "";
  ::unsetenv("FBF_FORCE_KERNEL");
  const KernelKind detected = best_kernel();
  EXPECT_EQ(detected, best_kernel());  // cached detection is stable

  for (const KernelKind kind : kernels_under_test()) {
    ::setenv("FBF_FORCE_KERNEL", kernel_name(kind), 1);
    EXPECT_EQ(best_kernel(), kind) << kernel_name(kind);
  }
  // Unknown and unsupported names fall back to the detected best.
  ::setenv("FBF_FORCE_KERNEL", "no-such-kernel", 1);
  EXPECT_EQ(best_kernel(), detected);
  for (const KernelKind kind : all_kernel_kinds()) {
    if (!kernel_supported(kind)) {
      ::setenv("FBF_FORCE_KERNEL", kernel_name(kind), 1);
      EXPECT_EQ(best_kernel(), detected) << kernel_name(kind);
    }
  }

  if (original != nullptr) {
    ::setenv("FBF_FORCE_KERNEL", saved.c_str(), 1);
  } else {
    ::unsetenv("FBF_FORCE_KERNEL");
  }
}

}  // namespace
