// Equivalence fuzz for the batched filter kernel: every kernel variant
// must reproduce the u32 per-pair FindDiffBits path bit for bit — same
// survivor bitmaps, same survivor counts — across layouts, thresholds,
// tile widths and bitmap word boundaries.
#include "core/fbf_kernel.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/find_diff_bits.hpp"
#include "core/packed_signature_store.hpp"
#include "core/signature.hpp"
#include "datagen/dataset.hpp"
#include "util/rng.hpp"

namespace {

using fbf::core::best_kernel;
using fbf::core::FieldClass;
using fbf::core::filter_tile;
using fbf::core::KernelKind;
using fbf::core::make_signature;
using fbf::core::PackedSignatureStore;
using fbf::core::Signature;

namespace dg = fbf::datagen;

std::vector<KernelKind> kernels_under_test() {
  std::vector<KernelKind> kinds = {KernelKind::kScalar64};
  if (best_kernel() == KernelKind::kAvx2) {
    kinds.push_back(KernelKind::kAvx2);
  }
  return kinds;
}

/// Reference: per-candidate u32 FindDiffBits over classic signatures.
std::vector<bool> reference_pass(const std::vector<std::string>& query,
                                 std::size_t qi,
                                 const std::vector<std::string>& cands,
                                 FieldClass cls, int alpha_words,
                                 int threshold) {
  const Signature q = make_signature(query[qi], cls, alpha_words);
  std::vector<bool> pass(cands.size());
  for (std::size_t j = 0; j < cands.size(); ++j) {
    const Signature c = make_signature(cands[j], cls, alpha_words);
    pass[j] = fbf::core::find_diff_bits(q, c) <= threshold;
  }
  return pass;
}

void check_layout(dg::FieldKind kind, FieldClass cls, int alpha_words,
                  std::size_t count, int threshold) {
  const auto dataset =
      dg::build_paired_dataset(kind, std::max<std::size_t>(count, 2), 911).value();
  std::vector<std::string> cands(dataset.error.begin(),
                                 dataset.error.begin() +
                                     static_cast<std::ptrdiff_t>(count));
  const PackedSignatureStore queries(dataset.clean, cls, alpha_words);
  const PackedSignatureStore packed(cands, cls, alpha_words);
  const bool two = packed.words() == 2;
  std::vector<std::uint64_t> bitmap((count + 63) / 64 + 1);
  for (const KernelKind kernel : kernels_under_test()) {
    for (const std::size_t qi : {std::size_t{0}, count / 2, count - 1}) {
      const auto expected =
          reference_pass(dataset.clean, qi, cands, cls, alpha_words,
                         threshold);
      bitmap.assign(bitmap.size(), ~0ull);  // detect missing overwrites
      const std::size_t survivors = filter_tile(
          queries.word(0, qi), packed.plane(0),
          two ? queries.word(1, qi) : 0, two ? packed.plane(1) : nullptr,
          count, threshold, bitmap.data(), kernel);
      std::size_t expected_survivors = 0;
      for (std::size_t j = 0; j < count; ++j) {
        const bool bit = (bitmap[j / 64] >> (j % 64)) & 1u;
        ASSERT_EQ(bit, expected[j])
            << fbf::core::kernel_name(kernel) << " "
            << fbf::core::field_class_name(cls) << " l=" << alpha_words
            << " count=" << count << " thr=" << threshold << " j=" << j;
        expected_survivors += expected[j] ? 1u : 0u;
      }
      EXPECT_EQ(survivors, expected_survivors);
      // Tail bits beyond count in the last bitmap word must be cleared.
      if (count % 64 != 0) {
        const std::uint64_t tail = bitmap[(count - 1) / 64];
        EXPECT_EQ(tail >> (count % 64), 0u);
      }
    }
  }
}

TEST(FbfKernel, MatchesPerPairScanAlphaL2) {
  for (const std::size_t count : {1u, 3u, 63u, 64u, 65u, 127u, 200u, 256u}) {
    check_layout(dg::FieldKind::kLastName, FieldClass::kAlpha, 2, count, 2);
  }
}

TEST(FbfKernel, MatchesPerPairScanAlphaL1) {
  check_layout(dg::FieldKind::kLastName, FieldClass::kAlpha, 1, 150, 2);
}

TEST(FbfKernel, MatchesPerPairScanNumeric) {
  for (const int threshold : {0, 2, 4, 6}) {
    check_layout(dg::FieldKind::kSsn, FieldClass::kNumeric, 2, 200,
                 threshold);
  }
}

TEST(FbfKernel, MatchesPerPairScanAlphanumericTwoPlanes) {
  for (const std::size_t count : {5u, 64u, 130u, 256u}) {
    check_layout(dg::FieldKind::kAddress, FieldClass::kAlphanumeric, 2,
                 count, 2);
  }
}

TEST(FbfKernel, ScalarAndAvx2Agree) {
  if (best_kernel() != KernelKind::kAvx2) {
    GTEST_SKIP() << "AVX2 not available on this CPU";
  }
  // Random u64 planes (not derived from strings): the kernels must agree
  // on arbitrary bit patterns, not just reachable signatures.
  fbf::util::Rng rng(4242);
  constexpr std::size_t kCount = 333;
  fbf::core::AlignedPlane p0(kCount);
  fbf::core::AlignedPlane p1(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    p0.data()[i] = rng.next();
    p1.data()[i] = rng.next();
  }
  std::vector<std::uint64_t> bm_scalar((kCount + 63) / 64);
  std::vector<std::uint64_t> bm_avx2((kCount + 63) / 64);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t q0 = rng.next();
    const std::uint64_t q1 = rng.next();
    const int threshold = static_cast<int>(rng.next() % 70);
    const bool two = (trial % 2) == 0;
    const std::size_t s = filter_tile(q0, p0.data(), q1,
                                      two ? p1.data() : nullptr, kCount,
                                      threshold, bm_scalar.data(),
                                      KernelKind::kScalar64);
    const std::size_t a = filter_tile(q0, p0.data(), q1,
                                      two ? p1.data() : nullptr, kCount,
                                      threshold, bm_avx2.data(),
                                      KernelKind::kAvx2);
    EXPECT_EQ(s, a) << "trial " << trial;
    EXPECT_EQ(bm_scalar, bm_avx2) << "trial " << trial;
  }
}

TEST(FbfKernel, ZeroCountIsEmpty) {
  std::uint64_t bitmap[1] = {~0ull};
  const std::size_t survivors =
      filter_tile(0, nullptr, 0, nullptr, 0, 2, bitmap, KernelKind::kScalar64);
  EXPECT_EQ(survivors, 0u);
}

TEST(FbfKernel, KernelNames) {
  EXPECT_STREQ(fbf::core::kernel_name(KernelKind::kScalar64), "scalar64");
  EXPECT_STREQ(fbf::core::kernel_name(KernelKind::kAvx2), "avx2");
  // best_kernel is stable across calls (cached dispatch).
  EXPECT_EQ(best_kernel(), best_kernel());
}

}  // namespace
