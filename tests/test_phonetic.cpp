#include "metrics/phonetic.hpp"

#include <gtest/gtest.h>

#include "datagen/names.hpp"
#include "metrics/soundex.hpp"
#include "util/ascii.hpp"
#include "util/rng.hpp"

namespace {

using fbf::metrics::nysiis;
using fbf::metrics::nysiis_match;
using fbf::metrics::refined_soundex;
using fbf::metrics::refined_soundex_match;

TEST(Nysiis, CanonicalVector) {
  // The most widely cited NYSIIS reference value.
  EXPECT_EQ(nysiis("SMITH"), "SNAT");
}

TEST(Nysiis, StructureInvariants) {
  fbf::util::Rng rng(1);
  const auto pool = fbf::datagen::build_last_name_pool(2000, rng);
  for (const auto& name : pool) {
    const std::string code = nysiis(name);
    ASSERT_FALSE(code.empty()) << name;
    EXPECT_LE(code.size(), 6u) << name;
    // Key characters are upper-case letters only.
    for (const char ch : code) {
      EXPECT_TRUE(fbf::util::is_ascii_upper(ch)) << name << " -> " << code;
    }
    // The key never ends in S or (unless length-1) A.
    if (code.size() > 1) {
      EXPECT_NE(code.back(), 'S') << name << " -> " << code;
      EXPECT_NE(code.back(), 'A') << name << " -> " << code;
    }
    // Determinism + case-insensitivity.
    EXPECT_EQ(code, nysiis(fbf::util::to_upper_copy(name)));
  }
}

TEST(Nysiis, InitialClusterEquivalences) {
  // PH/PF fold to FF; KN folds to NN; K to C — so these pairs share keys.
  EXPECT_EQ(nysiis("PHILIP"), nysiis("PFILIP"));
  EXPECT_EQ(nysiis("KNIGHT"), nysiis("NNIGHT"));
  EXPECT_EQ(nysiis("KARL"), nysiis("CARL"));
  EXPECT_EQ(nysiis("SCHMIDT"), nysiis("SSSMIDT"));
}

TEST(Nysiis, VowelCollapsing) {
  // All vowels (A, E, I, O, U — NOT Y) recode to A, so vowel-substitution
  // variants share keys...
  EXPECT_EQ(nysiis("PETERSON"), nysiis("PETERSEN"));
  EXPECT_EQ(nysiis("JOHNSON"), nysiis("JOHNSAN"));
  // ...but a Y substitution survives: NYSIIS separates SMITH from SMYTH
  // (unlike Soundex, which lumps them together).
  EXPECT_NE(nysiis("SMITH"), nysiis("SMYTH"));
  EXPECT_EQ(nysiis("SMYTH"), "SNYT");
}

TEST(Nysiis, EmptyAndNonAlpha) {
  EXPECT_EQ(nysiis(""), "");
  EXPECT_EQ(nysiis("123"), "");
  EXPECT_EQ(nysiis("O'BRIEN"), nysiis("OBRIEN"));
}

TEST(Nysiis, MatchPredicate) {
  EXPECT_TRUE(nysiis_match("PETERSON", "PETERSEN"));
  EXPECT_FALSE(nysiis_match("SMITH", "JONES"));
  EXPECT_FALSE(nysiis_match("", ""));
}

TEST(RefinedSoundex, Structure) {
  const std::string code = refined_soundex("SMITH");
  // Leading letter, then digit classes starting with the first letter's
  // own class.
  ASSERT_GE(code.size(), 2u);
  EXPECT_EQ(code[0], 'S');
  for (std::size_t i = 1; i < code.size(); ++i) {
    EXPECT_TRUE(code[i] >= '0' && code[i] <= '9') << code;
  }
}

TEST(RefinedSoundex, KnownCodes) {
  // S=3, M=8, I=0, T=6, H=0 -> "S" + 3 8 0 6 0 = "S38060".
  EXPECT_EQ(refined_soundex("SMITH"), "S38060");
  // B=1, R=9, A=0, Z=5 -> "B1905".
  EXPECT_EQ(refined_soundex("BRAZ"), "B1905");
}

TEST(RefinedSoundex, FinerThanClassicSoundex) {
  // Classic soundex lumps C/G/K/S/Z into one class; refined separates
  // S/C/K (3) from G/J (4) and Z/Q/X (5): ROGERS vs ROKERS differ under
  // refined but collide under classic.
  EXPECT_EQ(fbf::metrics::soundex("ROGERS"), fbf::metrics::soundex("ROKERS"));
  EXPECT_NE(refined_soundex("ROGERS"), refined_soundex("ROKERS"));
}

TEST(RefinedSoundex, DuplicateCollapsing) {
  EXPECT_EQ(refined_soundex("GAUSS"), refined_soundex("GAUS"));
  EXPECT_EQ(refined_soundex("LLOYD"), refined_soundex("LOYD"));
}

TEST(RefinedSoundex, VowelsSeparateConsonants) {
  // Unlike classic soundex, vowels appear as 0s, so "ROBERT" and
  // "RBRT" differ (vowel positions carry signal).
  EXPECT_NE(refined_soundex("ROBERT"), refined_soundex("RBRT"));
}

TEST(RefinedSoundex, MatchPredicate) {
  EXPECT_TRUE(refined_soundex_match("SMITH", "SMYTH"));
  EXPECT_FALSE(refined_soundex_match("", "X"));
}

TEST(PhoneticFamily, TypoSensitivityOrdering) {
  // Under single leading-consonant typos, every phonetic code fails
  // (they all key heavily on the first letter) — the shared weakness the
  // paper exploits in Tables 7-8.
  EXPECT_FALSE(fbf::metrics::soundex_match("SMITH", "XMITH"));
  EXPECT_FALSE(nysiis_match("SMITH", "XMITH"));
  EXPECT_FALSE(refined_soundex_match("SMITH", "XMITH"));
}

}  // namespace
