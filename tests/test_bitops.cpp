#include "util/bitops.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace {

using fbf::util::PopcountKind;
using fbf::util::popcount;
using fbf::util::popcount_hw;
using fbf::util::popcount_lut;
using fbf::util::popcount_wegner;
using fbf::util::xor_diff_bits;

TEST(Bitops, WegnerKnownValues) {
  EXPECT_EQ(popcount_wegner(0u), 0);
  EXPECT_EQ(popcount_wegner(1u), 1);
  EXPECT_EQ(popcount_wegner(0b1011u), 3);
  EXPECT_EQ(popcount_wegner(0x80000000u), 1);
  EXPECT_EQ(popcount_wegner(0xFFFFFFFFu), 32);
  EXPECT_EQ(popcount_wegner(0xAAAAAAAAu), 16);
}

TEST(Bitops, ConstexprUsable) {
  static_assert(popcount_wegner(0xF0F0F0F0u) == 16);
  static_assert(popcount_lut(0xF0F0F0F0u) == 16);
  static_assert(popcount_hw(0xF0F0F0F0u) == 16);
}

class PopcountAgreement : public ::testing::TestWithParam<PopcountKind> {};

TEST_P(PopcountAgreement, MatchesHardwareOnRandomWords) {
  const PopcountKind kind = GetParam();
  fbf::util::Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    const auto word = static_cast<std::uint32_t>(rng.next());
    EXPECT_EQ(popcount(word, kind), popcount_hw(word)) << "word=" << word;
  }
}

TEST_P(PopcountAgreement, MatchesOnBoundaryWords) {
  const PopcountKind kind = GetParam();
  const std::uint32_t cases[] = {0u,
                                 1u,
                                 2u,
                                 3u,
                                 0x7FFFFFFFu,
                                 0x80000000u,
                                 0x80000001u,
                                 0xFFFFFFFEu,
                                 0xFFFFFFFFu,
                                 0x55555555u,
                                 0xAAAAAAAAu};
  for (const std::uint32_t word : cases) {
    EXPECT_EQ(popcount(word, kind), popcount_hw(word)) << "word=" << word;
  }
}

TEST_P(PopcountAgreement, SingleBitWords) {
  const PopcountKind kind = GetParam();
  for (int bit = 0; bit < 32; ++bit) {
    EXPECT_EQ(popcount(1u << bit, kind), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PopcountAgreement,
                         ::testing::Values(PopcountKind::kWegner,
                                           PopcountKind::kHardware,
                                           PopcountKind::kLut,
                                           PopcountKind::kBatched),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case PopcountKind::kWegner: return "Wegner";
                             case PopcountKind::kHardware: return "Hardware";
                             case PopcountKind::kLut: return "Lut";
                             case PopcountKind::kBatched: return "Batched";
                           }
                           return "Unknown";
                         });

TEST(Bitops, PopcountKindNames) {
  EXPECT_STREQ(fbf::util::popcount_kind_name(PopcountKind::kWegner), "wegner");
  EXPECT_STREQ(fbf::util::popcount_kind_name(PopcountKind::kHardware),
               "hardware");
  EXPECT_STREQ(fbf::util::popcount_kind_name(PopcountKind::kLut), "lut");
  EXPECT_STREQ(fbf::util::popcount_kind_name(PopcountKind::kBatched),
               "batched");
}

TEST(Bitops, Popcount64Variants) {
  fbf::util::Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t word = rng.next();
    const int expected = std::popcount(word);
    EXPECT_EQ(fbf::util::popcount_hw64(word), expected);
    EXPECT_EQ(fbf::util::popcount_wegner64(word), expected);
    EXPECT_EQ(fbf::util::popcount_lut64(word), expected);
  }
  static_assert(fbf::util::popcount_wegner64(0xFFFFFFFFFFFFFFFFull) == 64);
  static_assert(fbf::util::popcount_lut64(0x8000000000000001ull) == 2);
}

TEST(XorDiffBits, EmptySpansAreZero) {
  EXPECT_EQ(xor_diff_bits({}, {}), 0);
}

TEST(XorDiffBits, SingleWord) {
  const std::uint32_t m[] = {0b1100};
  const std::uint32_t n[] = {0b1010};
  EXPECT_EQ(xor_diff_bits(m, n), 2);
}

TEST(XorDiffBits, IdenticalVectorsAreZero) {
  const std::uint32_t m[] = {0xDEADBEEF, 0x12345678, 0};
  EXPECT_EQ(xor_diff_bits(m, m), 0);
}

TEST(XorDiffBits, SumsAcrossWords) {
  const std::uint32_t m[] = {0b1, 0b11, 0b111};
  const std::uint32_t n[] = {0b0, 0b00, 0b000};
  EXPECT_EQ(xor_diff_bits(m, n), 6);
}

TEST(XorDiffBits, SymmetricInArguments) {
  fbf::util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t m[] = {static_cast<std::uint32_t>(rng.next()),
                               static_cast<std::uint32_t>(rng.next())};
    const std::uint32_t n[] = {static_cast<std::uint32_t>(rng.next()),
                               static_cast<std::uint32_t>(rng.next())};
    EXPECT_EQ(xor_diff_bits(m, n), xor_diff_bits(n, m));
  }
}

TEST(XorDiffBits, AllStrategiesAgreeOnVectors) {
  fbf::util::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::uint32_t> m(3);
    std::vector<std::uint32_t> n(3);
    for (auto& w : m) w = static_cast<std::uint32_t>(rng.next());
    for (auto& w : n) w = static_cast<std::uint32_t>(rng.next());
    const int hw = xor_diff_bits(m, n, PopcountKind::kHardware);
    EXPECT_EQ(xor_diff_bits(m, n, PopcountKind::kWegner), hw);
    EXPECT_EQ(xor_diff_bits(m, n, PopcountKind::kLut), hw);
  }
}

}  // namespace
