// Consistent-hash ring properties: set-determinism (placement is a pure
// function of the membership set, never insertion history), the key-
// movement bound under membership change (the whole point of consistent
// hashing), replica-group distinctness, and durable partition ids.
#include "cluster/ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace {

namespace cl = fbf::cluster;

cl::HashRing make_ring(std::vector<cl::NodeId> nodes,
                       std::uint64_t seed = 42,
                       std::size_t vnodes = 64) {
  cl::HashRing ring({seed, vnodes});
  for (const cl::NodeId n : nodes) {
    EXPECT_TRUE(ring.add_node(n).ok());
  }
  return ring;
}

std::vector<std::uint64_t> sample_keys(std::size_t n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::uint64_t k = 0; k < n; ++k) {
    keys.push_back(cl::HashRing::key_hash(k, /*seed=*/42));
  }
  return keys;
}

TEST(HashRing, MembershipBookkeeping) {
  cl::HashRing ring({7, 16});
  EXPECT_EQ(ring.node_count(), 0u);
  EXPECT_TRUE(ring.add_node(3).ok());
  EXPECT_TRUE(ring.add_node(1).ok());
  EXPECT_FALSE(ring.add_node(3).ok()) << "duplicate add must be rejected";
  EXPECT_EQ(ring.node_count(), 2u);
  EXPECT_EQ(ring.point_count(), 32u);
  EXPECT_TRUE(ring.contains(1));
  EXPECT_FALSE(ring.contains(2));
  EXPECT_EQ(ring.nodes(), (std::vector<cl::NodeId>{1, 3}));
  EXPECT_TRUE(ring.remove_node(3).ok());
  EXPECT_FALSE(ring.remove_node(3).ok()) << "double remove must be rejected";
  EXPECT_EQ(ring.node_count(), 1u);
  EXPECT_EQ(ring.point_count(), 16u);
}

TEST(HashRing, EmptyRingDegradesQuietly) {
  const cl::HashRing ring({1, 8});
  EXPECT_EQ(ring.partition_of(123), 0u);
  EXPECT_TRUE(ring.replicas(123, 3).empty());
  EXPECT_EQ(ring.owner(123), 0u);
}

TEST(HashRing, PlacementIgnoresInsertionOrder) {
  // Same membership set, three different construction histories — every
  // placement decision must agree (this is what lets a driver, a server
  // and a test each build the ring independently).
  const auto a = make_ring({0, 1, 2, 3, 4});
  const auto b = make_ring({4, 2, 0, 3, 1});
  auto c = make_ring({0, 1, 2, 3, 4, 5});
  ASSERT_TRUE(c.remove_node(5).ok());
  for (const std::uint64_t key : sample_keys(2000)) {
    const auto owner = a.owner(key);
    EXPECT_EQ(b.owner(key), owner);
    EXPECT_EQ(c.owner(key), owner);
    EXPECT_EQ(a.partition_of(key), b.partition_of(key));
    EXPECT_EQ(a.replicas(key, 3), b.replicas(key, 3));
    EXPECT_EQ(a.replicas(key, 3), c.replicas(key, 3));
  }
}

TEST(HashRing, KeyHashIsSeededAndPure) {
  const std::uint64_t h1 = cl::HashRing::key_hash(std::uint64_t{99}, 7);
  EXPECT_EQ(h1, cl::HashRing::key_hash(std::uint64_t{99}, 7));
  EXPECT_NE(h1, cl::HashRing::key_hash(std::uint64_t{99}, 8))
      << "seed must matter";
  const std::uint64_t s1 = cl::HashRing::key_hash("smith", 7);
  EXPECT_EQ(s1, cl::HashRing::key_hash("smith", 7));
  EXPECT_NE(s1, cl::HashRing::key_hash("smyth", 7));
}

TEST(HashRing, AddingANodeMovesOnlyItsShare) {
  // The headline consistent-hashing property.  With N=8 going on 9,
  // the expected share of moved keys is 1/9; vnode granularity leaves
  // variance, so assert a generous multiple — and, crucially, that every
  // moved key moved *to the new node*: nothing reshuffles between
  // incumbents.
  const std::size_t kKeys = 20000;
  const auto keys = sample_keys(kKeys);
  auto ring = make_ring({0, 1, 2, 3, 4, 5, 6, 7});
  std::vector<cl::NodeId> before;
  before.reserve(kKeys);
  for (const std::uint64_t key : keys) {
    before.push_back(ring.owner(key));
  }
  ASSERT_TRUE(ring.add_node(8).ok());
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const cl::NodeId now = ring.owner(keys[i]);
    if (now != before[i]) {
      ++moved;
      EXPECT_EQ(now, 8u) << "a key moved between incumbent nodes";
    }
  }
  EXPECT_GT(moved, 0u);
  const double frac = static_cast<double>(moved) / static_cast<double>(kKeys);
  EXPECT_LT(frac, 2.5 / 9.0) << "moved " << moved << " of " << kKeys;
}

TEST(HashRing, RemovingANodeMovesOnlyItsKeys) {
  const std::size_t kKeys = 20000;
  const auto keys = sample_keys(kKeys);
  auto ring = make_ring({0, 1, 2, 3, 4, 5, 6, 7});
  std::vector<cl::NodeId> before;
  before.reserve(kKeys);
  for (const std::uint64_t key : keys) {
    before.push_back(ring.owner(key));
  }
  ASSERT_TRUE(ring.remove_node(3).ok());
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const cl::NodeId now = ring.owner(keys[i]);
    if (now != before[i]) {
      ++moved;
      EXPECT_EQ(before[i], 3u) << "a key not owned by the removed node moved";
      EXPECT_NE(now, 3u);
    }
  }
  EXPECT_GT(moved, 0u);
  const double frac = static_cast<double>(moved) / static_cast<double>(kKeys);
  EXPECT_LT(frac, 2.5 / 8.0);
}

TEST(HashRing, ReplicaGroupsAreDistinctAndPrimaryFirst) {
  const auto ring = make_ring({0, 1, 2, 3, 4});
  for (const std::uint64_t key : sample_keys(2000)) {
    const auto group = ring.replicas(key, 3);
    ASSERT_EQ(group.size(), 3u);
    EXPECT_EQ(group[0], ring.owner(key));
    auto sorted = group;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
        << "replica group repeated a node";
  }
}

TEST(HashRing, ReplicaCountClampsToMembership) {
  const auto ring = make_ring({0, 1});
  const auto group = ring.replicas(12345, 5);
  ASSERT_EQ(group.size(), 2u);
  EXPECT_NE(group[0], group[1]);
}

TEST(HashRing, PartitionIdsAreDurableRingPositions) {
  // partition_of returns the covering vnode point.  The point is a plain
  // ring position: resolving it back through replicas() starts at the
  // same node, and after a membership change the same pid re-resolves
  // under the new ring — state keyed by pid survives any churn.
  auto ring = make_ring({0, 1, 2, 3});
  const auto keys = sample_keys(500);
  for (const std::uint64_t key : keys) {
    const std::uint64_t pid = ring.partition_of(key);
    EXPECT_EQ(ring.replicas(pid, 1)[0], ring.owner(key));
  }
  // Keys whose owner survives an add keep their pid (their covering
  // point did not change hands).
  std::map<std::uint64_t, std::uint64_t> pid_before;
  for (const std::uint64_t key : keys) {
    pid_before[key] = ring.partition_of(key);
  }
  std::map<std::uint64_t, cl::NodeId> owner_before;
  for (const std::uint64_t key : keys) {
    owner_before[key] = ring.owner(key);
  }
  ASSERT_TRUE(ring.add_node(4).ok());
  for (const std::uint64_t key : keys) {
    if (ring.owner(key) == owner_before[key]) {
      EXPECT_EQ(ring.partition_of(key), pid_before[key]);
    }
  }
}

TEST(HashRing, VnodesSpreadLoad) {
  // 64 vnodes per node keep the deterministic seed's spread sane: no
  // node owns more than ~3x its fair share of 20k keys.
  const auto ring = make_ring({0, 1, 2, 3, 4, 5, 6, 7});
  std::map<cl::NodeId, std::size_t> owned;
  const auto keys = sample_keys(20000);
  for (const std::uint64_t key : keys) {
    ++owned[ring.owner(key)];
  }
  const double fair =
      static_cast<double>(keys.size()) / static_cast<double>(ring.node_count());
  for (const auto& [node, count] : owned) {
    EXPECT_LT(static_cast<double>(count), 3.0 * fair) << "node " << node;
  }
}

}  // namespace
