
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ascii.cpp" "tests/CMakeFiles/fbf_tests.dir/test_ascii.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_ascii.cpp.o.d"
  "/root/repo/tests/test_bitops.cpp" "tests/CMakeFiles/fbf_tests.dir/test_bitops.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_bitops.cpp.o.d"
  "/root/repo/tests/test_blocking.cpp" "tests/CMakeFiles/fbf_tests.dir/test_blocking.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_blocking.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/fbf_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_clustering.cpp" "tests/CMakeFiles/fbf_tests.dir/test_clustering.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_clustering.cpp.o.d"
  "/root/repo/tests/test_comparators.cpp" "tests/CMakeFiles/fbf_tests.dir/test_comparators.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_comparators.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/fbf_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_damerau.cpp" "tests/CMakeFiles/fbf_tests.dir/test_damerau.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_damerau.cpp.o.d"
  "/root/repo/tests/test_datagen.cpp" "tests/CMakeFiles/fbf_tests.dir/test_datagen.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_datagen.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/fbf_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_experiments.cpp" "tests/CMakeFiles/fbf_tests.dir/test_experiments.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_experiments.cpp.o.d"
  "/root/repo/tests/test_fellegi_sunter.cpp" "tests/CMakeFiles/fbf_tests.dir/test_fellegi_sunter.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_fellegi_sunter.cpp.o.d"
  "/root/repo/tests/test_filter_safety.cpp" "tests/CMakeFiles/fbf_tests.dir/test_filter_safety.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_filter_safety.cpp.o.d"
  "/root/repo/tests/test_hamming.cpp" "tests/CMakeFiles/fbf_tests.dir/test_hamming.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_hamming.cpp.o.d"
  "/root/repo/tests/test_incremental.cpp" "tests/CMakeFiles/fbf_tests.dir/test_incremental.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_incremental.cpp.o.d"
  "/root/repo/tests/test_jaro.cpp" "tests/CMakeFiles/fbf_tests.dir/test_jaro.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_jaro.cpp.o.d"
  "/root/repo/tests/test_join_config.cpp" "tests/CMakeFiles/fbf_tests.dir/test_join_config.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_join_config.cpp.o.d"
  "/root/repo/tests/test_levenshtein.cpp" "tests/CMakeFiles/fbf_tests.dir/test_levenshtein.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_levenshtein.cpp.o.d"
  "/root/repo/tests/test_linkage.cpp" "tests/CMakeFiles/fbf_tests.dir/test_linkage.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_linkage.cpp.o.d"
  "/root/repo/tests/test_match_join.cpp" "tests/CMakeFiles/fbf_tests.dir/test_match_join.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_match_join.cpp.o.d"
  "/root/repo/tests/test_method.cpp" "tests/CMakeFiles/fbf_tests.dir/test_method.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_method.cpp.o.d"
  "/root/repo/tests/test_myers.cpp" "tests/CMakeFiles/fbf_tests.dir/test_myers.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_myers.cpp.o.d"
  "/root/repo/tests/test_pdl.cpp" "tests/CMakeFiles/fbf_tests.dir/test_pdl.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_pdl.cpp.o.d"
  "/root/repo/tests/test_phonetic.cpp" "tests/CMakeFiles/fbf_tests.dir/test_phonetic.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_phonetic.cpp.o.d"
  "/root/repo/tests/test_polyfit.cpp" "tests/CMakeFiles/fbf_tests.dir/test_polyfit.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_polyfit.cpp.o.d"
  "/root/repo/tests/test_qgram.cpp" "tests/CMakeFiles/fbf_tests.dir/test_qgram.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_qgram.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/fbf_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_search.cpp" "tests/CMakeFiles/fbf_tests.dir/test_search.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_search.cpp.o.d"
  "/root/repo/tests/test_sharded.cpp" "tests/CMakeFiles/fbf_tests.dir/test_sharded.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_sharded.cpp.o.d"
  "/root/repo/tests/test_signature.cpp" "tests/CMakeFiles/fbf_tests.dir/test_signature.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_signature.cpp.o.d"
  "/root/repo/tests/test_signature64.cpp" "tests/CMakeFiles/fbf_tests.dir/test_signature64.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_signature64.cpp.o.d"
  "/root/repo/tests/test_signature_index.cpp" "tests/CMakeFiles/fbf_tests.dir/test_signature_index.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_signature_index.cpp.o.d"
  "/root/repo/tests/test_soundex.cpp" "tests/CMakeFiles/fbf_tests.dir/test_soundex.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_soundex.cpp.o.d"
  "/root/repo/tests/test_standardize.cpp" "tests/CMakeFiles/fbf_tests.dir/test_standardize.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_standardize.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/fbf_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/fbf_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/fbf_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/fbf_tests.dir/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/search/CMakeFiles/fbf_search.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/fbf_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/linkage/CMakeFiles/fbf_linkage.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/fbf_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/fbf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
