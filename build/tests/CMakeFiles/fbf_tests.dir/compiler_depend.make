# Empty compiler generated dependencies file for fbf_tests.
# This may be replaced when dependencies are built.
