# Empty dependencies file for csv_pipeline.
# This may be replaced when dependencies are built.
