# Empty compiler generated dependencies file for reproduce_paper.
# This may be replaced when dependencies are built.
