file(REMOVE_RECURSE
  "CMakeFiles/reproduce_paper.dir/reproduce_paper.cpp.o"
  "CMakeFiles/reproduce_paper.dir/reproduce_paper.cpp.o.d"
  "reproduce_paper"
  "reproduce_paper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduce_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
