file(REMOVE_RECURSE
  "CMakeFiles/dedup_names.dir/dedup_names.cpp.o"
  "CMakeFiles/dedup_names.dir/dedup_names.cpp.o.d"
  "dedup_names"
  "dedup_names.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
