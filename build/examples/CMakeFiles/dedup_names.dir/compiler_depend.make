# Empty compiler generated dependencies file for dedup_names.
# This may be replaced when dependencies are built.
