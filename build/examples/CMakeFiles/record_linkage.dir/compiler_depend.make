# Empty compiler generated dependencies file for record_linkage.
# This may be replaced when dependencies are built.
