file(REMOVE_RECURSE
  "CMakeFiles/record_linkage.dir/record_linkage.cpp.o"
  "CMakeFiles/record_linkage.dir/record_linkage.cpp.o.d"
  "record_linkage"
  "record_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
