file(REMOVE_RECURSE
  "CMakeFiles/field_tuner.dir/field_tuner.cpp.o"
  "CMakeFiles/field_tuner.dir/field_tuner.cpp.o.d"
  "field_tuner"
  "field_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
