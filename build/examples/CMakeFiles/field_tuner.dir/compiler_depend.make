# Empty compiler generated dependencies file for field_tuner.
# This may be replaced when dependencies are built.
