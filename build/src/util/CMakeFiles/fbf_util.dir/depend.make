# Empty dependencies file for fbf_util.
# This may be replaced when dependencies are built.
