file(REMOVE_RECURSE
  "libfbf_util.a"
)
