file(REMOVE_RECURSE
  "CMakeFiles/fbf_util.dir/ascii.cpp.o"
  "CMakeFiles/fbf_util.dir/ascii.cpp.o.d"
  "CMakeFiles/fbf_util.dir/bitops.cpp.o"
  "CMakeFiles/fbf_util.dir/bitops.cpp.o.d"
  "CMakeFiles/fbf_util.dir/cli.cpp.o"
  "CMakeFiles/fbf_util.dir/cli.cpp.o.d"
  "CMakeFiles/fbf_util.dir/csv.cpp.o"
  "CMakeFiles/fbf_util.dir/csv.cpp.o.d"
  "CMakeFiles/fbf_util.dir/polyfit.cpp.o"
  "CMakeFiles/fbf_util.dir/polyfit.cpp.o.d"
  "CMakeFiles/fbf_util.dir/rng.cpp.o"
  "CMakeFiles/fbf_util.dir/rng.cpp.o.d"
  "CMakeFiles/fbf_util.dir/stats.cpp.o"
  "CMakeFiles/fbf_util.dir/stats.cpp.o.d"
  "CMakeFiles/fbf_util.dir/table.cpp.o"
  "CMakeFiles/fbf_util.dir/table.cpp.o.d"
  "CMakeFiles/fbf_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fbf_util.dir/thread_pool.cpp.o.d"
  "libfbf_util.a"
  "libfbf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
