# Empty dependencies file for fbf_search.
# This may be replaced when dependencies are built.
