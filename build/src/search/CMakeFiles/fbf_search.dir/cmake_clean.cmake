file(REMOVE_RECURSE
  "CMakeFiles/fbf_search.dir/bk_tree.cpp.o"
  "CMakeFiles/fbf_search.dir/bk_tree.cpp.o.d"
  "CMakeFiles/fbf_search.dir/trie_search.cpp.o"
  "CMakeFiles/fbf_search.dir/trie_search.cpp.o.d"
  "libfbf_search.a"
  "libfbf_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbf_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
