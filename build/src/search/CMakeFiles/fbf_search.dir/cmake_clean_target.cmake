file(REMOVE_RECURSE
  "libfbf_search.a"
)
