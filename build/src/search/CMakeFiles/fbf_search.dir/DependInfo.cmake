
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/bk_tree.cpp" "src/search/CMakeFiles/fbf_search.dir/bk_tree.cpp.o" "gcc" "src/search/CMakeFiles/fbf_search.dir/bk_tree.cpp.o.d"
  "/root/repo/src/search/trie_search.cpp" "src/search/CMakeFiles/fbf_search.dir/trie_search.cpp.o" "gcc" "src/search/CMakeFiles/fbf_search.dir/trie_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/fbf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
