# Empty dependencies file for fbf_linkage.
# This may be replaced when dependencies are built.
