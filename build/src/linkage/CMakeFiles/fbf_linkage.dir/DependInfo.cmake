
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linkage/blocking.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/blocking.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/blocking.cpp.o.d"
  "/root/repo/src/linkage/clustering.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/clustering.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/clustering.cpp.o.d"
  "/root/repo/src/linkage/comparator.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/comparator.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/comparator.cpp.o.d"
  "/root/repo/src/linkage/csv_io.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/csv_io.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/csv_io.cpp.o.d"
  "/root/repo/src/linkage/engine.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/engine.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/engine.cpp.o.d"
  "/root/repo/src/linkage/fellegi_sunter.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/fellegi_sunter.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/fellegi_sunter.cpp.o.d"
  "/root/repo/src/linkage/incremental.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/incremental.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/incremental.cpp.o.d"
  "/root/repo/src/linkage/person_gen.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/person_gen.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/person_gen.cpp.o.d"
  "/root/repo/src/linkage/record.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/record.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/record.cpp.o.d"
  "/root/repo/src/linkage/sharded.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/sharded.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/sharded.cpp.o.d"
  "/root/repo/src/linkage/standardize.cpp" "src/linkage/CMakeFiles/fbf_linkage.dir/standardize.cpp.o" "gcc" "src/linkage/CMakeFiles/fbf_linkage.dir/standardize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/fbf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/fbf_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
