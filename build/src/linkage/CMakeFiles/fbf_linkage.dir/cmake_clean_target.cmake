file(REMOVE_RECURSE
  "libfbf_linkage.a"
)
