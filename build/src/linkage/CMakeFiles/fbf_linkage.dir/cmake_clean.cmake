file(REMOVE_RECURSE
  "CMakeFiles/fbf_linkage.dir/blocking.cpp.o"
  "CMakeFiles/fbf_linkage.dir/blocking.cpp.o.d"
  "CMakeFiles/fbf_linkage.dir/clustering.cpp.o"
  "CMakeFiles/fbf_linkage.dir/clustering.cpp.o.d"
  "CMakeFiles/fbf_linkage.dir/comparator.cpp.o"
  "CMakeFiles/fbf_linkage.dir/comparator.cpp.o.d"
  "CMakeFiles/fbf_linkage.dir/csv_io.cpp.o"
  "CMakeFiles/fbf_linkage.dir/csv_io.cpp.o.d"
  "CMakeFiles/fbf_linkage.dir/engine.cpp.o"
  "CMakeFiles/fbf_linkage.dir/engine.cpp.o.d"
  "CMakeFiles/fbf_linkage.dir/fellegi_sunter.cpp.o"
  "CMakeFiles/fbf_linkage.dir/fellegi_sunter.cpp.o.d"
  "CMakeFiles/fbf_linkage.dir/incremental.cpp.o"
  "CMakeFiles/fbf_linkage.dir/incremental.cpp.o.d"
  "CMakeFiles/fbf_linkage.dir/person_gen.cpp.o"
  "CMakeFiles/fbf_linkage.dir/person_gen.cpp.o.d"
  "CMakeFiles/fbf_linkage.dir/record.cpp.o"
  "CMakeFiles/fbf_linkage.dir/record.cpp.o.d"
  "CMakeFiles/fbf_linkage.dir/sharded.cpp.o"
  "CMakeFiles/fbf_linkage.dir/sharded.cpp.o.d"
  "CMakeFiles/fbf_linkage.dir/standardize.cpp.o"
  "CMakeFiles/fbf_linkage.dir/standardize.cpp.o.d"
  "libfbf_linkage.a"
  "libfbf_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbf_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
