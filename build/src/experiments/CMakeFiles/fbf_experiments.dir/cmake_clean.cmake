file(REMOVE_RECURSE
  "CMakeFiles/fbf_experiments.dir/curves.cpp.o"
  "CMakeFiles/fbf_experiments.dir/curves.cpp.o.d"
  "CMakeFiles/fbf_experiments.dir/ladder.cpp.o"
  "CMakeFiles/fbf_experiments.dir/ladder.cpp.o.d"
  "CMakeFiles/fbf_experiments.dir/protocol.cpp.o"
  "CMakeFiles/fbf_experiments.dir/protocol.cpp.o.d"
  "libfbf_experiments.a"
  "libfbf_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbf_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
