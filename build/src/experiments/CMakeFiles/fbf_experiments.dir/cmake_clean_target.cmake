file(REMOVE_RECURSE
  "libfbf_experiments.a"
)
