# Empty compiler generated dependencies file for fbf_experiments.
# This may be replaced when dependencies are built.
