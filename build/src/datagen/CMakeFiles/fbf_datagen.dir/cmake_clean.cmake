file(REMOVE_RECURSE
  "CMakeFiles/fbf_datagen.dir/address.cpp.o"
  "CMakeFiles/fbf_datagen.dir/address.cpp.o.d"
  "CMakeFiles/fbf_datagen.dir/dataset.cpp.o"
  "CMakeFiles/fbf_datagen.dir/dataset.cpp.o.d"
  "CMakeFiles/fbf_datagen.dir/dates.cpp.o"
  "CMakeFiles/fbf_datagen.dir/dates.cpp.o.d"
  "CMakeFiles/fbf_datagen.dir/errors.cpp.o"
  "CMakeFiles/fbf_datagen.dir/errors.cpp.o.d"
  "CMakeFiles/fbf_datagen.dir/name_pools.cpp.o"
  "CMakeFiles/fbf_datagen.dir/name_pools.cpp.o.d"
  "CMakeFiles/fbf_datagen.dir/names.cpp.o"
  "CMakeFiles/fbf_datagen.dir/names.cpp.o.d"
  "CMakeFiles/fbf_datagen.dir/phone.cpp.o"
  "CMakeFiles/fbf_datagen.dir/phone.cpp.o.d"
  "CMakeFiles/fbf_datagen.dir/ssn.cpp.o"
  "CMakeFiles/fbf_datagen.dir/ssn.cpp.o.d"
  "libfbf_datagen.a"
  "libfbf_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbf_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
