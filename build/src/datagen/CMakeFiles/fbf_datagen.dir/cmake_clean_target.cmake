file(REMOVE_RECURSE
  "libfbf_datagen.a"
)
