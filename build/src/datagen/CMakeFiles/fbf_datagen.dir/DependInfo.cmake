
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/address.cpp" "src/datagen/CMakeFiles/fbf_datagen.dir/address.cpp.o" "gcc" "src/datagen/CMakeFiles/fbf_datagen.dir/address.cpp.o.d"
  "/root/repo/src/datagen/dataset.cpp" "src/datagen/CMakeFiles/fbf_datagen.dir/dataset.cpp.o" "gcc" "src/datagen/CMakeFiles/fbf_datagen.dir/dataset.cpp.o.d"
  "/root/repo/src/datagen/dates.cpp" "src/datagen/CMakeFiles/fbf_datagen.dir/dates.cpp.o" "gcc" "src/datagen/CMakeFiles/fbf_datagen.dir/dates.cpp.o.d"
  "/root/repo/src/datagen/errors.cpp" "src/datagen/CMakeFiles/fbf_datagen.dir/errors.cpp.o" "gcc" "src/datagen/CMakeFiles/fbf_datagen.dir/errors.cpp.o.d"
  "/root/repo/src/datagen/name_pools.cpp" "src/datagen/CMakeFiles/fbf_datagen.dir/name_pools.cpp.o" "gcc" "src/datagen/CMakeFiles/fbf_datagen.dir/name_pools.cpp.o.d"
  "/root/repo/src/datagen/names.cpp" "src/datagen/CMakeFiles/fbf_datagen.dir/names.cpp.o" "gcc" "src/datagen/CMakeFiles/fbf_datagen.dir/names.cpp.o.d"
  "/root/repo/src/datagen/phone.cpp" "src/datagen/CMakeFiles/fbf_datagen.dir/phone.cpp.o" "gcc" "src/datagen/CMakeFiles/fbf_datagen.dir/phone.cpp.o.d"
  "/root/repo/src/datagen/ssn.cpp" "src/datagen/CMakeFiles/fbf_datagen.dir/ssn.cpp.o" "gcc" "src/datagen/CMakeFiles/fbf_datagen.dir/ssn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fbf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/fbf_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
