# Empty dependencies file for fbf_datagen.
# This may be replaced when dependencies are built.
