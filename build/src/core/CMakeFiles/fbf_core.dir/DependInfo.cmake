
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comparators.cpp" "src/core/CMakeFiles/fbf_core.dir/comparators.cpp.o" "gcc" "src/core/CMakeFiles/fbf_core.dir/comparators.cpp.o.d"
  "/root/repo/src/core/match_join.cpp" "src/core/CMakeFiles/fbf_core.dir/match_join.cpp.o" "gcc" "src/core/CMakeFiles/fbf_core.dir/match_join.cpp.o.d"
  "/root/repo/src/core/method.cpp" "src/core/CMakeFiles/fbf_core.dir/method.cpp.o" "gcc" "src/core/CMakeFiles/fbf_core.dir/method.cpp.o.d"
  "/root/repo/src/core/signature.cpp" "src/core/CMakeFiles/fbf_core.dir/signature.cpp.o" "gcc" "src/core/CMakeFiles/fbf_core.dir/signature.cpp.o.d"
  "/root/repo/src/core/signature64.cpp" "src/core/CMakeFiles/fbf_core.dir/signature64.cpp.o" "gcc" "src/core/CMakeFiles/fbf_core.dir/signature64.cpp.o.d"
  "/root/repo/src/core/signature_index.cpp" "src/core/CMakeFiles/fbf_core.dir/signature_index.cpp.o" "gcc" "src/core/CMakeFiles/fbf_core.dir/signature_index.cpp.o.d"
  "/root/repo/src/core/signature_store.cpp" "src/core/CMakeFiles/fbf_core.dir/signature_store.cpp.o" "gcc" "src/core/CMakeFiles/fbf_core.dir/signature_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/fbf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
