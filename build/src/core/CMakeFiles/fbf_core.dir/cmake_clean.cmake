file(REMOVE_RECURSE
  "CMakeFiles/fbf_core.dir/comparators.cpp.o"
  "CMakeFiles/fbf_core.dir/comparators.cpp.o.d"
  "CMakeFiles/fbf_core.dir/match_join.cpp.o"
  "CMakeFiles/fbf_core.dir/match_join.cpp.o.d"
  "CMakeFiles/fbf_core.dir/method.cpp.o"
  "CMakeFiles/fbf_core.dir/method.cpp.o.d"
  "CMakeFiles/fbf_core.dir/signature.cpp.o"
  "CMakeFiles/fbf_core.dir/signature.cpp.o.d"
  "CMakeFiles/fbf_core.dir/signature64.cpp.o"
  "CMakeFiles/fbf_core.dir/signature64.cpp.o.d"
  "CMakeFiles/fbf_core.dir/signature_index.cpp.o"
  "CMakeFiles/fbf_core.dir/signature_index.cpp.o.d"
  "CMakeFiles/fbf_core.dir/signature_store.cpp.o"
  "CMakeFiles/fbf_core.dir/signature_store.cpp.o.d"
  "libfbf_core.a"
  "libfbf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
