# Empty dependencies file for fbf_core.
# This may be replaced when dependencies are built.
