file(REMOVE_RECURSE
  "libfbf_core.a"
)
