# Empty compiler generated dependencies file for fbf_metrics.
# This may be replaced when dependencies are built.
