file(REMOVE_RECURSE
  "libfbf_metrics.a"
)
