file(REMOVE_RECURSE
  "CMakeFiles/fbf_metrics.dir/damerau.cpp.o"
  "CMakeFiles/fbf_metrics.dir/damerau.cpp.o.d"
  "CMakeFiles/fbf_metrics.dir/hamming.cpp.o"
  "CMakeFiles/fbf_metrics.dir/hamming.cpp.o.d"
  "CMakeFiles/fbf_metrics.dir/jaro.cpp.o"
  "CMakeFiles/fbf_metrics.dir/jaro.cpp.o.d"
  "CMakeFiles/fbf_metrics.dir/levenshtein.cpp.o"
  "CMakeFiles/fbf_metrics.dir/levenshtein.cpp.o.d"
  "CMakeFiles/fbf_metrics.dir/myers.cpp.o"
  "CMakeFiles/fbf_metrics.dir/myers.cpp.o.d"
  "CMakeFiles/fbf_metrics.dir/pdl.cpp.o"
  "CMakeFiles/fbf_metrics.dir/pdl.cpp.o.d"
  "CMakeFiles/fbf_metrics.dir/phonetic.cpp.o"
  "CMakeFiles/fbf_metrics.dir/phonetic.cpp.o.d"
  "CMakeFiles/fbf_metrics.dir/qgram.cpp.o"
  "CMakeFiles/fbf_metrics.dir/qgram.cpp.o.d"
  "CMakeFiles/fbf_metrics.dir/soundex.cpp.o"
  "CMakeFiles/fbf_metrics.dir/soundex.cpp.o.d"
  "libfbf_metrics.a"
  "libfbf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
