
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/damerau.cpp" "src/metrics/CMakeFiles/fbf_metrics.dir/damerau.cpp.o" "gcc" "src/metrics/CMakeFiles/fbf_metrics.dir/damerau.cpp.o.d"
  "/root/repo/src/metrics/hamming.cpp" "src/metrics/CMakeFiles/fbf_metrics.dir/hamming.cpp.o" "gcc" "src/metrics/CMakeFiles/fbf_metrics.dir/hamming.cpp.o.d"
  "/root/repo/src/metrics/jaro.cpp" "src/metrics/CMakeFiles/fbf_metrics.dir/jaro.cpp.o" "gcc" "src/metrics/CMakeFiles/fbf_metrics.dir/jaro.cpp.o.d"
  "/root/repo/src/metrics/levenshtein.cpp" "src/metrics/CMakeFiles/fbf_metrics.dir/levenshtein.cpp.o" "gcc" "src/metrics/CMakeFiles/fbf_metrics.dir/levenshtein.cpp.o.d"
  "/root/repo/src/metrics/myers.cpp" "src/metrics/CMakeFiles/fbf_metrics.dir/myers.cpp.o" "gcc" "src/metrics/CMakeFiles/fbf_metrics.dir/myers.cpp.o.d"
  "/root/repo/src/metrics/pdl.cpp" "src/metrics/CMakeFiles/fbf_metrics.dir/pdl.cpp.o" "gcc" "src/metrics/CMakeFiles/fbf_metrics.dir/pdl.cpp.o.d"
  "/root/repo/src/metrics/phonetic.cpp" "src/metrics/CMakeFiles/fbf_metrics.dir/phonetic.cpp.o" "gcc" "src/metrics/CMakeFiles/fbf_metrics.dir/phonetic.cpp.o.d"
  "/root/repo/src/metrics/qgram.cpp" "src/metrics/CMakeFiles/fbf_metrics.dir/qgram.cpp.o" "gcc" "src/metrics/CMakeFiles/fbf_metrics.dir/qgram.cpp.o.d"
  "/root/repo/src/metrics/soundex.cpp" "src/metrics/CMakeFiles/fbf_metrics.dir/soundex.cpp.o" "gcc" "src/metrics/CMakeFiles/fbf_metrics.dir/soundex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
