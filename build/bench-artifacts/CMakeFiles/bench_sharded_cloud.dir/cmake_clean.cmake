file(REMOVE_RECURSE
  "../bench/bench_sharded_cloud"
  "../bench/bench_sharded_cloud.pdb"
  "CMakeFiles/bench_sharded_cloud.dir/bench_sharded_cloud.cpp.o"
  "CMakeFiles/bench_sharded_cloud.dir/bench_sharded_cloud.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharded_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
