# Empty compiler generated dependencies file for bench_sharded_cloud.
# This may be replaced when dependencies are built.
