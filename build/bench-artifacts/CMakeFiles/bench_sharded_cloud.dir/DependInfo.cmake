
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sharded_cloud.cpp" "bench-artifacts/CMakeFiles/bench_sharded_cloud.dir/bench_sharded_cloud.cpp.o" "gcc" "bench-artifacts/CMakeFiles/bench_sharded_cloud.dir/bench_sharded_cloud.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/fbf_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/linkage/CMakeFiles/fbf_linkage.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/fbf_search.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/fbf_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/fbf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
