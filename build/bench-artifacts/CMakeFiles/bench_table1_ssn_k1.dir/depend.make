# Empty dependencies file for bench_table1_ssn_k1.
# This may be replaced when dependencies are built.
