# Empty dependencies file for bench_fig7_curves.
# This may be replaced when dependencies are built.
