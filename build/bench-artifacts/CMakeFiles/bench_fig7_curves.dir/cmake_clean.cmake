file(REMOVE_RECURSE
  "../bench/bench_fig7_curves"
  "../bench/bench_fig7_curves.pdb"
  "CMakeFiles/bench_fig7_curves.dir/bench_fig7_curves.cpp.o"
  "CMakeFiles/bench_fig7_curves.dir/bench_fig7_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
