file(REMOVE_RECURSE
  "../bench/bench_fs_linkage"
  "../bench/bench_fs_linkage.pdb"
  "CMakeFiles/bench_fs_linkage.dir/bench_fs_linkage.cpp.o"
  "CMakeFiles/bench_fs_linkage.dir/bench_fs_linkage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fs_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
