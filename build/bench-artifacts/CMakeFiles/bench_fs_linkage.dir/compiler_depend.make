# Empty compiler generated dependencies file for bench_fs_linkage.
# This may be replaced when dependencies are built.
