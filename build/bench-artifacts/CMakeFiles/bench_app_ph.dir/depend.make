# Empty dependencies file for bench_app_ph.
# This may be replaced when dependencies are built.
