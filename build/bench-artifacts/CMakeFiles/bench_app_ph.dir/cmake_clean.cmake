file(REMOVE_RECURSE
  "../bench/bench_app_ph"
  "../bench/bench_app_ph.pdb"
  "CMakeFiles/bench_app_ph.dir/bench_app_ph.cpp.o"
  "CMakeFiles/bench_app_ph.dir/bench_app_ph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_ph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
