file(REMOVE_RECURSE
  "../bench/bench_table3_ln"
  "../bench/bench_table3_ln.pdb"
  "CMakeFiles/bench_table3_ln.dir/bench_table3_ln.cpp.o"
  "CMakeFiles/bench_table3_ln.dir/bench_table3_ln.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ln.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
