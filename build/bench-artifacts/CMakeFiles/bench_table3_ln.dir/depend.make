# Empty dependencies file for bench_table3_ln.
# This may be replaced when dependencies are built.
