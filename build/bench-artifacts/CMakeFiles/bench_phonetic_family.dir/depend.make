# Empty dependencies file for bench_phonetic_family.
# This may be replaced when dependencies are built.
