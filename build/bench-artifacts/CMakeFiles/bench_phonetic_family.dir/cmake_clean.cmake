file(REMOVE_RECURSE
  "../bench/bench_phonetic_family"
  "../bench/bench_phonetic_family.pdb"
  "CMakeFiles/bench_phonetic_family.dir/bench_phonetic_family.cpp.o"
  "CMakeFiles/bench_phonetic_family.dir/bench_phonetic_family.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phonetic_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
