# Empty compiler generated dependencies file for bench_nightly_update.
# This may be replaced when dependencies are built.
