file(REMOVE_RECURSE
  "../bench/bench_nightly_update"
  "../bench/bench_nightly_update.pdb"
  "CMakeFiles/bench_nightly_update.dir/bench_nightly_update.cpp.o"
  "CMakeFiles/bench_nightly_update.dir/bench_nightly_update.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nightly_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
