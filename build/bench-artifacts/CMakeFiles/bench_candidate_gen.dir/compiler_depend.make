# Empty compiler generated dependencies file for bench_candidate_gen.
# This may be replaced when dependencies are built.
