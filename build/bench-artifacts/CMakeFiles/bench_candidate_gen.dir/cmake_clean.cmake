file(REMOVE_RECURSE
  "../bench/bench_candidate_gen"
  "../bench/bench_candidate_gen.pdb"
  "CMakeFiles/bench_candidate_gen.dir/bench_candidate_gen.cpp.o"
  "CMakeFiles/bench_candidate_gen.dir/bench_candidate_gen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_candidate_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
