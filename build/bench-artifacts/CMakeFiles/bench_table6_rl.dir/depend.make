# Empty dependencies file for bench_table6_rl.
# This may be replaced when dependencies are built.
