file(REMOVE_RECURSE
  "../bench/bench_table6_rl"
  "../bench/bench_table6_rl.pdb"
  "CMakeFiles/bench_table6_rl.dir/bench_table6_rl.cpp.o"
  "CMakeFiles/bench_table6_rl.dir/bench_table6_rl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
