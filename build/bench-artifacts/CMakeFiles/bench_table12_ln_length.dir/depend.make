# Empty dependencies file for bench_table12_ln_length.
# This may be replaced when dependencies are built.
