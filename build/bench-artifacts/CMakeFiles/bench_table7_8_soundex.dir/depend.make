# Empty dependencies file for bench_table7_8_soundex.
# This may be replaced when dependencies are built.
