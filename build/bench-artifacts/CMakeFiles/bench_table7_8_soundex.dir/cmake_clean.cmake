file(REMOVE_RECURSE
  "../bench/bench_table7_8_soundex"
  "../bench/bench_table7_8_soundex.pdb"
  "CMakeFiles/bench_table7_8_soundex.dir/bench_table7_8_soundex.cpp.o"
  "CMakeFiles/bench_table7_8_soundex.dir/bench_table7_8_soundex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_8_soundex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
