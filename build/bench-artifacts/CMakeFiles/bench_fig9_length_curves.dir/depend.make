# Empty dependencies file for bench_fig9_length_curves.
# This may be replaced when dependencies are built.
