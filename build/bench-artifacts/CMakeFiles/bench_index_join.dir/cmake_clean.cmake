file(REMOVE_RECURSE
  "../bench/bench_index_join"
  "../bench/bench_index_join.pdb"
  "CMakeFiles/bench_index_join.dir/bench_index_join.cpp.o"
  "CMakeFiles/bench_index_join.dir/bench_index_join.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
