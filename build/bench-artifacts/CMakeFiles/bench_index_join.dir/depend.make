# Empty dependencies file for bench_index_join.
# This may be replaced when dependencies are built.
