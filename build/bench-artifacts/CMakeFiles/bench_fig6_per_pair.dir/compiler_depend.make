# Empty compiler generated dependencies file for bench_fig6_per_pair.
# This may be replaced when dependencies are built.
