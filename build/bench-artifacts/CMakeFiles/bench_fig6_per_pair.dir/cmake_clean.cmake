file(REMOVE_RECURSE
  "../bench/bench_fig6_per_pair"
  "../bench/bench_fig6_per_pair.pdb"
  "CMakeFiles/bench_fig6_per_pair.dir/bench_fig6_per_pair.cpp.o"
  "CMakeFiles/bench_fig6_per_pair.dir/bench_fig6_per_pair.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_per_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
