file(REMOVE_RECURSE
  "../bench/bench_table4_addr"
  "../bench/bench_table4_addr.pdb"
  "CMakeFiles/bench_table4_addr.dir/bench_table4_addr.cpp.o"
  "CMakeFiles/bench_table4_addr.dir/bench_table4_addr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_addr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
