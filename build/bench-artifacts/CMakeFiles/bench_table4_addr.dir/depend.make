# Empty dependencies file for bench_table4_addr.
# This may be replaced when dependencies are built.
