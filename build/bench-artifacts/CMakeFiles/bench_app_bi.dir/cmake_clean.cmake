file(REMOVE_RECURSE
  "../bench/bench_app_bi"
  "../bench/bench_app_bi.pdb"
  "CMakeFiles/bench_app_bi.dir/bench_app_bi.cpp.o"
  "CMakeFiles/bench_app_bi.dir/bench_app_bi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_bi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
