# Empty dependencies file for bench_app_bi.
# This may be replaced when dependencies are built.
