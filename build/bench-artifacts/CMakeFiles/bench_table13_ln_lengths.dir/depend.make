# Empty dependencies file for bench_table13_ln_lengths.
# This may be replaced when dependencies are built.
