file(REMOVE_RECURSE
  "../bench/bench_table13_ln_lengths"
  "../bench/bench_table13_ln_lengths.pdb"
  "CMakeFiles/bench_table13_ln_lengths.dir/bench_table13_ln_lengths.cpp.o"
  "CMakeFiles/bench_table13_ln_lengths.dir/bench_table13_ln_lengths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_ln_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
