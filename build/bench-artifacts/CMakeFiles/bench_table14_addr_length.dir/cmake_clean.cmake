file(REMOVE_RECURSE
  "../bench/bench_table14_addr_length"
  "../bench/bench_table14_addr_length.pdb"
  "CMakeFiles/bench_table14_addr_length.dir/bench_table14_addr_length.cpp.o"
  "CMakeFiles/bench_table14_addr_length.dir/bench_table14_addr_length.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_addr_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
