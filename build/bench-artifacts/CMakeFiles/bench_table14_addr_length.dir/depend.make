# Empty dependencies file for bench_table14_addr_length.
# This may be replaced when dependencies are built.
