# Empty compiler generated dependencies file for bench_table5_fpdl_matrix.
# This may be replaced when dependencies are built.
