file(REMOVE_RECURSE
  "../bench/bench_table5_fpdl_matrix"
  "../bench/bench_table5_fpdl_matrix.pdb"
  "CMakeFiles/bench_table5_fpdl_matrix.dir/bench_table5_fpdl_matrix.cpp.o"
  "CMakeFiles/bench_table5_fpdl_matrix.dir/bench_table5_fpdl_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fpdl_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
