file(REMOVE_RECURSE
  "../bench/bench_app_fn"
  "../bench/bench_app_fn.pdb"
  "CMakeFiles/bench_app_fn.dir/bench_app_fn.cpp.o"
  "CMakeFiles/bench_app_fn.dir/bench_app_fn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_fn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
