# Empty dependencies file for bench_app_fn.
# This may be replaced when dependencies are built.
